"""Tests for CSV export of figure data."""

import csv

import pytest

from repro.experiments.export import (
    cdf_table,
    matrix_table,
    method_comparison_table,
    series_table,
    write_csv,
)
from repro.experiments.section4 import fig14_unicast_inconsistency


class TestTables:
    def test_cdf_table(self):
        header, rows = cdf_table([(1.0, 0.5), (2.0, 1.0)], x_name="seconds")
        assert header == ["seconds", "cdf"]
        assert rows == [[1.0, 0.5], [2.0, 1.0]]

    def test_series_table_sorted(self):
        header, rows = series_table({30.0: 2.0, 10.0: 1.0}, "ttl", "cost")
        assert header == ["ttl", "cost"]
        assert [row[0] for row in rows] == [10.0, 30.0]

    def test_matrix_table_fills_missing(self):
        matrix = {"a": {1.0: 10.0, 2.0: 20.0}, "b": {1.0: 5.0}}
        header, rows = matrix_table(matrix, "x")
        assert header == ["x", "a", "b"]
        assert rows == [[1.0, 10.0, 5.0], [2.0, 20.0, ""]]

    def test_matrix_table_explicit_columns(self):
        matrix = {"a": {1.0: 10.0}, "b": {1.0: 5.0}}
        header, _ = matrix_table(matrix, "x", columns=("b", "a"))
        assert header == ["x", "b", "a"]


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "out.csv")
        written = write_csv(path, (["x", "y"], [[1, 2], [3, 4]]))
        with open(written) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["x", "y"], ["1", "2"], ["3", "4"]]

    def test_mismatched_row_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(str(tmp_path / "bad.csv"), (["x"], [[1, 2]]))


class TestFigureIntegration:
    def test_fig14_export(self, smoke_config, tmp_path):
        comparison = fig14_unicast_inconsistency(smoke_config)
        header, rows = method_comparison_table(comparison)
        assert header == ["server_rank", "invalidation", "push", "ttl"]
        assert len(rows) == smoke_config.n_servers
        # curves are sorted ascending
        push_curve = [row[header.index("push")] for row in rows]
        assert push_curve == sorted(push_curve)
        path = write_csv(str(tmp_path / "fig14.csv"), (header, rows))
        with open(path) as handle:
            assert len(list(csv.reader(handle))) == smoke_config.n_servers + 1
