"""Tests for the repro.lint determinism & purity static-analysis pass.

Layout: each ``tests/fixtures/lint/<case>/`` directory is a miniature
``repro`` tree exercising one rule (positive + negative fixtures), so a
scan of one case directory isolates one rule's behaviour.  The meta
tests at the bottom pin the live contract: the committed tree is clean
against the committed baseline, and an injected impurity in
``repro/obs/`` is caught.
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
import textwrap
import unittest
from pathlib import Path

from repro.lint import Baseline, lint_paths
from repro.lint.cli import build_parser, run
from repro.sim.simtime import TIME_EPS_S, is_zero_duration, times_close, times_equal

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"


def scan(case: str, codes=None):
    """Lint one fixture case directory with no baseline."""
    report = lint_paths([FIXTURES / case], codes=codes)
    return report


def codes_by_file(report):
    """{file stem: sorted list of new finding codes}."""
    result = {}
    for finding in report.new:
        stem = Path(finding.path).stem
        result.setdefault(stem, []).append(finding.code)
    return {stem: sorted(codes) for stem, codes in result.items()}


class TestRep001SeededRngOnly(unittest.TestCase):
    def test_flags_module_level_rng_and_from_imports(self):
        found = codes_by_file(scan("rep001"))
        # bad_rng: `from random import choice` + random.random + random.randint
        self.assertEqual(found.get("bad_rng"), ["REP001", "REP001", "REP001"])

    def test_allows_seeded_random_instances(self):
        self.assertNotIn("good_rng", codes_by_file(scan("rep001")))

    def test_scope_excludes_non_simulation_packages(self):
        self.assertNotIn("out_of_scope", codes_by_file(scan("rep001")))


class TestRep002NoWallClock(unittest.TestCase):
    def test_flags_time_and_datetime_reads(self):
        found = codes_by_file(scan("rep002"))
        # time.time, perf_counter (from-import), datetime.datetime.now
        self.assertEqual(found.get("bad_clock"), ["REP002", "REP002", "REP002"])

    def test_runner_and_benchmarks_are_exempt(self):
        found = codes_by_file(scan("rep002"))
        self.assertNotIn("exempt_clock", found)
        self.assertNotIn("exempt_bench", found)
        self.assertNotIn("good_clock", found)


class TestRep003ObserverPurity(unittest.TestCase):
    def test_flags_scheduling_and_rng_in_obs(self):
        report = scan("rep003")
        messages = [f.message for f in report.new if Path(f.path).stem == "bad_observer"]
        self.assertEqual(len(messages), 3)  # schedule, timeout, random draw
        self.assertTrue(any("schedule" in message for message in messages))
        self.assertTrue(any("RNG draw" in message for message in messages))

    def test_pure_observer_is_clean(self):
        self.assertNotIn("good_observer", codes_by_file(scan("rep003")))

    def test_reachability_crosses_package_boundaries(self):
        found = codes_by_file(scan("rep003_reach"))
        # leaky_helper is imported from repro.obs -> checked and flagged;
        # unreachable_helper schedules too but nothing in obs imports it.
        self.assertEqual(found.get("leaky_helper"), ["REP003"])
        self.assertNotIn("unreachable_helper", found)


class TestRep004NoFloatTimeEquality(unittest.TestCase):
    def test_flags_equality_on_time_like_operands(self):
        found = codes_by_file(scan("rep004"))
        # env.now == deadline, total_time != 0, env.now != 3.0
        self.assertEqual(found.get("bad_times"), ["REP004", "REP004", "REP004"])

    def test_tolerance_helpers_and_ordering_are_clean(self):
        self.assertNotIn("good_times", codes_by_file(scan("rep004")))


class TestRep005SlotsManifest(unittest.TestCase):
    def test_flags_manifest_class_without_slots(self):
        found = codes_by_file(scan("rep005"))
        self.assertEqual(found.get("message"), ["REP005"])

    def test_slotted_dataclass_satisfies_the_manifest(self):
        self.assertEqual(codes_by_file(scan("rep005_ok")), {})

    def test_manifest_drift_is_flagged(self):
        report = scan("rep005_drift")
        self.assertEqual([f.code for f in report.new], ["REP005"])
        self.assertIn("no longer exists", report.new[0].message)


class TestRep006KwOnlyConfigs(unittest.TestCase):
    def test_flags_positional_config_dataclasses(self):
        found = codes_by_file(scan("rep006"))
        self.assertEqual(found.get("bad_config"), ["REP006", "REP006"])

    def test_kw_only_and_non_config_dataclasses_are_clean(self):
        self.assertNotIn("good_config", codes_by_file(scan("rep006")))


class TestNoqaSuppression(unittest.TestCase):
    def test_matching_bare_and_list_directives_suppress(self):
        report = scan("noqa")
        # Four violations in the file; only the wrong-code line survives.
        self.assertEqual(len(report.new), 1)
        self.assertEqual(report.new[0].code, "REP001")
        self.assertIn("REP002", report.new[0].text)  # the mismatched directive

    def test_suppressed_findings_are_still_reported_separately(self):
        report = scan("noqa")
        self.assertEqual(len(report.suppressed), 3)


class TestBaseline(unittest.TestCase):
    def test_round_trip_consumes_grandfathered_findings(self):
        dirty = scan("rep004")
        self.assertEqual(len(dirty.new), 3)

        with _tempdir() as tmp:
            baseline_path = Path(tmp) / "baseline.json"
            Baseline.empty().write(baseline_path, findings=dirty.new)
            baseline = Baseline.load(baseline_path)
        self.assertEqual(len(baseline), 3)

        clean = lint_paths([FIXTURES / "rep004"], baseline=baseline)
        self.assertTrue(clean.ok)
        self.assertEqual(len(clean.baselined), 3)
        self.assertEqual(clean.stale_baseline, [])

    def test_baseline_matching_ignores_line_numbers(self):
        dirty = scan("rep004")
        with _tempdir() as tmp:
            baseline_path = Path(tmp) / "baseline.json"
            Baseline.empty().write(baseline_path, findings=dirty.new)
            payload = json.loads(baseline_path.read_text())
            for entry in payload["entries"]:
                entry["line"] = entry.get("line", 1) + 500  # a human aid only
            baseline_path.write_text(json.dumps(payload))
            baseline = Baseline.load(baseline_path)
        clean = lint_paths([FIXTURES / "rep004"], baseline=baseline)
        self.assertTrue(clean.ok)

    def test_new_violation_is_not_masked_by_baseline(self):
        dirty = scan("rep004")
        baseline = Baseline.from_findings(dirty.new[:2])  # grandfather only two
        partial = lint_paths([FIXTURES / "rep004"], baseline=baseline)
        self.assertFalse(partial.ok)
        self.assertEqual(len(partial.new), 1)
        self.assertEqual(len(partial.baselined), 2)

    def test_stale_entries_are_surfaced(self):
        baseline = Baseline({("REP004", "repro/sim/gone.py", "x == y"): 1})
        report = lint_paths([FIXTURES / "rep004" ], baseline=baseline)
        self.assertEqual(
            report.stale_baseline, [("REP004", "repro/sim/gone.py", "x == y")]
        )


class TestCli(unittest.TestCase):
    def run_cli(self, *argv):
        out, err = io.StringIO(), io.StringIO()
        args = build_parser().parse_args(list(argv))
        status = run(args, out, err)
        return status, out.getvalue(), err.getvalue()

    def test_exit_codes(self):
        status, _, _ = self.run_cli(str(FIXTURES / "rep004"), "--no-baseline")
        self.assertEqual(status, 1)
        status, _, _ = self.run_cli(str(FIXTURES / "rep005_ok"), "--no-baseline")
        self.assertEqual(status, 0)

    def test_json_format_is_parseable(self):
        status, out, _ = self.run_cli(
            str(FIXTURES / "rep004"), "--no-baseline", "--format", "json"
        )
        payload = json.loads(out)
        self.assertEqual(status, 1)
        self.assertFalse(payload["ok"])
        self.assertEqual(len(payload["new"]), 3)
        self.assertEqual({f["code"] for f in payload["new"]}, {"REP004"})

    def test_select_restricts_rules(self):
        status, out, _ = self.run_cli(
            str(FIXTURES / "noqa"), "--no-baseline", "--select", "REP004"
        )
        # The only REP004 violation in the noqa fixture is suppressed.
        self.assertEqual(status, 0)
        self.assertEqual(out, "")

    def test_unknown_select_code_is_a_usage_error(self):
        status, _, err = self.run_cli(
            str(FIXTURES / "rep004"), "--no-baseline", "--select", "REP999"
        )
        self.assertEqual(status, 2)
        self.assertIn("REP999", err)

    def test_write_baseline_then_clean(self):
        with _tempdir() as tmp:
            baseline_path = Path(tmp) / "baseline.json"
            status, _, _ = self.run_cli(
                str(FIXTURES / "rep004"), "--baseline", str(baseline_path),
                "--write-baseline",
            )
            self.assertEqual(status, 0)
            status, _, _ = self.run_cli(
                str(FIXTURES / "rep004"), "--baseline", str(baseline_path)
            )
            self.assertEqual(status, 0)

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(FIXTURES / "rep005_ok"),
             "--no-baseline"],
            capture_output=True, text=True,
            env=_env_with_src(), cwd=str(REPO_ROOT),
        )
        self.assertEqual(proc.returncode, 0, proc.stderr)


class TestLiveTree(unittest.TestCase):
    """The contract this PR ships: the committed tree is clean."""

    def test_src_is_clean_against_committed_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        report = lint_paths([REPO_ROOT / "src"], baseline=baseline)
        self.assertEqual(
            [f.format() for f in report.new], [],
            "new lint findings in src/ -- fix them or (for true false "
            "positives only) add a justified baseline entry",
        )
        self.assertEqual(report.stale_baseline, [])

    def test_injected_schedule_in_obs_is_flagged(self):
        """Acceptance: REP003 provably catches an Environment.schedule
        call injected into repro/obs/."""
        with _tempdir() as tmp:
            obs = Path(tmp) / "repro" / "obs"
            obs.mkdir(parents=True)
            (obs / "evil.py").write_text(
                textwrap.dedent(
                    '''
                    """An observer that cheats."""


                    class CheatingTracer:
                        enabled = True

                        def emit(self, env, kind, node, **detail):
                            env.schedule(env.event())
                    '''
                )
            )
            report = lint_paths([Path(tmp)])
            self.assertEqual([f.code for f in report.new], ["REP003"])
            self.assertIn("schedule", report.new[0].message)

    def test_injected_wall_clock_in_sim_is_flagged(self):
        with _tempdir() as tmp:
            sim = Path(tmp) / "repro" / "sim"
            sim.mkdir(parents=True)
            (sim / "drift.py").write_text(
                "import time\n\n\ndef now():\n    return time.time()\n"
            )
            report = lint_paths([Path(tmp)])
            self.assertEqual([f.code for f in report.new], ["REP002"])


class TestRep002ExemptionManifest(unittest.TestCase):
    """Satellite of PR 5: the REP002 carve-outs live in one manifest
    (repro.lint.exemptions) scoped to repro/obs/telemetry*, and the
    rule provably still fires everywhere else in repro/obs/."""

    _CLOCK_READ = "import time\n\n\ndef stamp():\n    return time.perf_counter()\n"

    def test_telemetry_module_is_exempt(self):
        with _tempdir() as tmp:
            obs = Path(tmp) / "repro" / "obs"
            obs.mkdir(parents=True)
            (obs / "telemetry.py").write_text(self._CLOCK_READ)
            report = lint_paths([Path(tmp)], codes=["REP002"])
            self.assertEqual([f.format() for f in report.new], [])

    def test_rule_still_fires_elsewhere_in_obs(self):
        with _tempdir() as tmp:
            obs = Path(tmp) / "repro" / "obs"
            obs.mkdir(parents=True)
            (obs / "telemetry.py").write_text(self._CLOCK_READ)
            (obs / "tracer_extra.py").write_text(self._CLOCK_READ)
            report = lint_paths([Path(tmp)], codes=["REP002"])
            self.assertEqual([f.code for f in report.new], ["REP002"])
            self.assertTrue(report.new[0].path.endswith("tracer_extra.py"))

    def test_manifest_entries_have_reasons(self):
        from repro.lint.exemptions import EXEMPTIONS

        self.assertIn("REP002", EXEMPTIONS)
        self.assertIn("repro/obs/telemetry", EXEMPTIONS["REP002"])
        for prefixes in EXEMPTIONS.values():
            for prefix, reason in prefixes.items():
                self.assertTrue(reason.strip(), "empty reason for %s" % prefix)


class TestRep007IterationOrder(unittest.TestCase):
    def test_flags_set_and_sink_feeding_dict_view_iteration(self):
        report = scan("rep007")
        findings = [f for f in report.new if Path(f.path).stem == "bad_order"]
        # set loop; dict-view loop with a schedule sink; dict-view
        # comprehension with an RNG sink.
        self.assertEqual([f.code for f in findings], ["REP007"] * 3)

    def test_sorted_sink_free_and_set_to_set_are_clean(self):
        self.assertNotIn("good_order", codes_by_file(scan("rep007")))

    def test_scope_excludes_unordered_areas(self):
        self.assertNotIn("out_of_scope", codes_by_file(scan("rep007")))


class TestRep008HeapKeyTotality(unittest.TestCase):
    def test_flags_missing_tiebreak_and_id_keys(self):
        found = codes_by_file(scan("rep008"))
        self.assertEqual(found.get("bad_heap"), ["REP008", "REP008"])

    def test_sequence_and_nested_tiebreaks_are_clean(self):
        self.assertNotIn("good_heap", codes_by_file(scan("rep008")))


class TestRep009LaneReentrancy(unittest.TestCase):
    def test_flags_direct_and_transitive_lane_mutation(self):
        report = scan("rep009")
        findings = [f for f in report.new if Path(f.path).stem == "bad_callback"]
        self.assertEqual([f.code for f in findings], ["REP009", "REP009"])
        # One direct array mutation, one reached through a helper method.
        lines = sorted(f.line for f in findings)
        self.assertLess(lines[0], lines[1])

    def test_push_and_reads_inside_callbacks_are_clean(self):
        self.assertNotIn("good_callback", codes_by_file(scan("rep009")))


class TestRep010CrossShardState(unittest.TestCase):
    def test_flags_runtime_mutation_of_reachable_module_state(self):
        report = scan("rep010")
        findings = [f for f in report.new if Path(f.path).stem == "shared_cache"]
        # The subscript write in lookup() and the `global` rebind in
        # bump(); the import-time _TABLE fill stays clean.
        self.assertEqual([f.code for f in findings], ["REP010", "REP010"])

    def test_unreachable_module_is_clean(self):
        self.assertNotIn("unreached", codes_by_file(scan("rep010")))

    def test_manifest_exemption_applies_but_rule_fires_outside_it(self):
        # memo.py mutates module state and IS reachable from the seed,
        # but sits under the manifest's repro/runner/ carve-out --
        # while the same shape outside the manifest (shared_cache)
        # still fires in the same scan.
        found = codes_by_file(scan("rep010"))
        self.assertNotIn("memo", found)
        self.assertIn("shared_cache", found)

    def test_live_manifest_entries_have_reasons(self):
        from repro.lint.exemptions import EXEMPTIONS

        self.assertIn("repro/runner/", EXEMPTIONS["REP010"])
        self.assertIn("repro/scenarios/registry", EXEMPTIONS["REP010"])
        for prefix, reason in EXEMPTIONS["REP010"].items():
            self.assertTrue(reason.strip(), "empty reason for %s" % prefix)


class TestNewRulesExemptionManifest(unittest.TestCase):
    """REP007-REP009 consult the manifest too: an injected carve-out is
    honored, and the rule provably still fires outside it."""

    def _scan_with_exemption(self, code, prefix, case):
        from repro.lint.exemptions import EXEMPTIONS

        added = code not in EXEMPTIONS
        EXEMPTIONS.setdefault(code, {})[prefix] = "test carve-out"
        try:
            return scan(case, codes=[code])
        finally:
            if added:
                del EXEMPTIONS[code]
            else:
                del EXEMPTIONS[code][prefix]

    def test_rep007_honors_manifest_but_fires_outside(self):
        report = self._scan_with_exemption(
            "REP007", "repro/sim/bad_order", "rep007"
        )
        self.assertEqual([f.format() for f in report.new], [])
        # Without the carve-out the same scan fires (proved by
        # TestRep007IterationOrder); here prove a non-matching prefix
        # does not silence it.
        report = self._scan_with_exemption(
            "REP007", "repro/cdn/elsewhere", "rep007"
        )
        self.assertEqual(len(report.new), 3)

    def test_rep008_honors_manifest_but_fires_outside(self):
        report = self._scan_with_exemption(
            "REP008", "repro/sim/bad_heap", "rep008"
        )
        self.assertEqual([f.format() for f in report.new], [])
        report = self._scan_with_exemption(
            "REP008", "repro/cdn/elsewhere", "rep008"
        )
        self.assertEqual(len(report.new), 2)

    def test_rep009_honors_manifest_but_fires_outside(self):
        report = self._scan_with_exemption(
            "REP009", "repro/cdn/bad_callback", "rep009"
        )
        self.assertEqual([f.format() for f in report.new], [])
        report = self._scan_with_exemption(
            "REP009", "repro/sim/elsewhere", "rep009"
        )
        self.assertEqual(len(report.new), 2)


class TestRep003LazyAndNestedReachability(unittest.TestCase):
    """Satellite: the REP003 import graph follows function-local (lazy)
    imports and ancestor packages of nested imports."""

    def test_lazy_import_target_is_checked(self):
        found = codes_by_file(scan("rep003_lazy"))
        self.assertEqual(found.get("lazy_helper"), ["REP003"])

    def test_ancestor_package_of_nested_import_is_checked(self):
        report = scan("rep003_nested")
        paths = [Path(f.path) for f in report.new]
        self.assertEqual([f.code for f in report.new], ["REP003"])
        self.assertEqual(paths[0].name, "__init__.py")
        self.assertEqual(paths[0].parent.name, "inner_pkg")

    def test_pure_leaf_of_nested_import_is_clean(self):
        self.assertNotIn("leaf", codes_by_file(scan("rep003_nested")))


class TestNoqaOnNewRules(unittest.TestCase):
    def test_matching_directives_suppress_every_new_rule(self):
        report = scan("noqa_new")
        suppressed = sorted(f.code for f in report.suppressed)
        self.assertEqual(
            suppressed,
            ["REP001", "REP007", "REP007", "REP008", "REP009", "REP010"],
        )

    def test_wrong_code_directive_still_flags(self):
        report = scan("noqa_new")
        self.assertEqual([f.code for f in report.new], ["REP007"])
        self.assertIn("REP002", report.new[0].text)

    def test_multi_code_line_suppresses_both_rules(self):
        report = scan("noqa_new")
        by_line = {}
        for finding in report.suppressed:
            if Path(finding.path).stem == "ordered":
                by_line.setdefault(finding.line, []).append(finding.code)
        # The comprehension line carries REP001 (unseeded RNG) and
        # REP007 (dict-view feeding an RNG sink) on one directive.
        multi = [codes for codes in by_line.values() if len(codes) > 1]
        self.assertEqual(len(multi), 1)
        self.assertEqual(sorted(multi[0]), ["REP001", "REP007"])


class TestUpdateBaseline(unittest.TestCase):
    def run_cli(self, *argv):
        out, err = io.StringIO(), io.StringIO()
        args = build_parser().parse_args(list(argv))
        status = run(args, out, err)
        return status, out.getvalue(), err.getvalue()

    def test_update_preserves_reasons_and_drops_stale(self):
        with _tempdir() as tmp:
            baseline_path = Path(tmp) / "baseline.json"
            status, _, _ = self.run_cli(
                str(FIXTURES / "rep004"), "--baseline", str(baseline_path),
                "--write-baseline",
            )
            self.assertEqual(status, 0)

            # A human justifies one entry and a stale entry sneaks in.
            payload = json.loads(baseline_path.read_text())
            payload["entries"][0]["reason"] = "accepted: fixture tolerance"
            payload["entries"].append(
                {
                    "code": "REP004",
                    "path": "repro/sim/gone.py",
                    "text": "x == y",
                    "reason": "was removed long ago",
                }
            )
            baseline_path.write_text(json.dumps(payload))

            status, _, err = self.run_cli(
                str(FIXTURES / "rep004"), "--baseline", str(baseline_path),
                "--update-baseline",
            )
            self.assertEqual(status, 0)
            self.assertIn("wrote 3 entries", err)

            rewritten = json.loads(baseline_path.read_text())
            reasons = {e["path"] + e["text"]: e["reason"] for e in rewritten["entries"]}
            self.assertEqual(len(rewritten["entries"]), 3)
            self.assertIn("accepted: fixture tolerance", reasons.values())
            self.assertNotIn("repro/sim/gone.pyx == y", reasons)

            # Round-trip: the rewritten file loads and still cleans the scan.
            baseline = Baseline.load(baseline_path)
            self.assertEqual(len(baseline), 3)
            clean = lint_paths([FIXTURES / "rep004"], baseline=baseline)
            self.assertTrue(clean.ok)
            self.assertEqual(clean.stale_baseline, [])


class TestSimtimeHelpers(unittest.TestCase):
    def test_times_equal_within_eps(self):
        self.assertTrue(times_equal(1.0, 1.0 + TIME_EPS_S / 2))
        self.assertFalse(times_equal(1.0, 1.0 + 3 * TIME_EPS_S))

    def test_times_close_scales_with_magnitude(self):
        horizon = 8760.0
        self.assertTrue(times_close(horizon, horizon * (1 + 1e-12)))
        self.assertFalse(times_close(horizon, horizon + 1.0))

    def test_is_zero_duration(self):
        self.assertTrue(is_zero_duration(0.0))
        self.assertTrue(is_zero_duration(-TIME_EPS_S / 10))
        self.assertFalse(is_zero_duration(0.004))


def _tempdir():
    import tempfile

    return tempfile.TemporaryDirectory()


def _env_with_src():
    import os

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


if __name__ == "__main__":
    unittest.main()
