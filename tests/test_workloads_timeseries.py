"""Tests for the extended workloads and the staleness time series."""

import numpy as np
import pytest

from repro.cdn.content import LiveContent
from repro.metrics.timeseries import StalenessSeries, fleet_staleness_series, staleness_series
from repro.sim import StreamRegistry
from repro.trace.workload import AuctionWorkload, FlashSaleWorkload


def stream(seed=71):
    return StreamRegistry(seed).stream("w")


class TestFlashSale:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlashSaleWorkload(duration_s=0)
        with pytest.raises(ValueError):
            FlashSaleWorkload(sale_start_s=10_000.0)
        with pytest.raises(ValueError):
            FlashSaleWorkload(sale_rate_multiplier=0.5)

    def test_rate_profile(self):
        workload = FlashSaleWorkload()
        assert workload.rate_at(0.0) == workload.base_rate_per_s
        assert workload.rate_at(workload.sale_start_s + 1.0) == pytest.approx(
            workload.base_rate_per_s * workload.sale_rate_multiplier
        )
        after = workload.sale_start_s + workload.sale_duration_s + 1.0
        assert workload.rate_at(after) == workload.base_rate_per_s

    def test_sale_window_dominates_updates(self):
        workload = FlashSaleWorkload()
        times = np.asarray(workload.generate(stream()))
        assert times.size > 20
        assert np.all(np.diff(times) > 0)
        in_sale = np.sum(
            (times >= workload.sale_start_s)
            & (times < workload.sale_start_s + workload.sale_duration_s)
        )
        assert in_sale > 0.5 * times.size  # the sale carries most updates

    def test_deterministic(self):
        workload = FlashSaleWorkload()
        assert workload.generate(stream(1)) == workload.generate(stream(1))


class TestAuction:
    def test_validation(self):
        with pytest.raises(ValueError):
            AuctionWorkload(duration_s=0)
        with pytest.raises(ValueError):
            AuctionWorkload(base_rate_per_s=0.6, closing_rate_per_s=0.5)

    def test_rate_grows_toward_close(self):
        workload = AuctionWorkload()
        assert workload.rate_at(0.0) == pytest.approx(workload.base_rate_per_s)
        assert workload.rate_at(workload.duration_s) == pytest.approx(
            workload.closing_rate_per_s
        )
        assert workload.rate_at(1800.0) > workload.rate_at(60.0)

    def test_sniping_pattern(self):
        workload = AuctionWorkload()
        times = np.asarray(workload.generate(stream()))
        assert times.size > 10
        last_tenth = np.sum(times > 0.9 * workload.duration_s)
        first_tenth = np.sum(times < 0.1 * workload.duration_s)
        assert last_tenth > 3 * max(1, first_tenth)


class TestStalenessSeries:
    def make_content(self):
        return LiveContent("c", update_times=[100.0, 200.0])

    def test_fresh_replica_never_stale(self):
        content = self.make_content()
        log = [(0.0, 0), (100.5, 1), (200.5, 2)]
        series = staleness_series(content, log, horizon_s=300.0, step_s=10.0)
        assert series.max() <= 0.5 + 1e-9

    def test_lagging_replica_staleness_ramps(self):
        content = self.make_content()
        log = [(0.0, 0), (160.0, 1)]  # v1 applied 60 s late; v2 never
        series = staleness_series(content, log, horizon_s=300.0, step_s=10.0)
        values = dict(zip(series.times, series.values))
        assert values[150.0] == pytest.approx(50.0)   # stale since t=100
        assert values[170.0] == pytest.approx(0.0)    # recovered
        assert values[290.0] == pytest.approx(90.0)   # stale since t=200
        assert series.over(40.0) > 0.0

    def test_empty_log_counts_from_version_zero(self):
        content = self.make_content()
        series = staleness_series(content, [], horizon_s=151.0, step_s=50.0)
        # grid instant t=150: version 0 has been superseded since t=100
        assert series.values[-1] == pytest.approx(50.0)

    def test_fleet_mean(self):
        content = self.make_content()
        fresh = [(0.0, 0), (100.0, 1), (200.0, 2)]
        lagging = [(0.0, 0)]
        fleet = fleet_staleness_series(content, [fresh, lagging], horizon_s=300.0)
        solo = staleness_series(content, lagging, horizon_s=300.0)
        assert fleet.mean() == pytest.approx(solo.mean() / 2.0, rel=0.01)

    def test_vectorised_grid_matches_scalar_staleness(self):
        # The numpy staleness_grid path must be bit-identical to the
        # scalar LiveContent.staleness loop it replaced.
        contents = [
            self.make_content(),
            LiveContent("empty"),
            LiveContent("dense", update_times=[float(t) for t in range(0, 300, 7)]),
        ]
        logs = [
            [],
            [(0.0, 0)],
            [(0.0, 0), (100.5, 1), (200.5, 2)],
            [(0.0, 0), (160.0, 1)],
            [(5.0, 2)],  # replica ahead of schedule
        ]
        for content in contents:
            for log in logs:
                if log and content.n_updates < max(v for _, v in log):
                    continue
                series = staleness_series(content, log, horizon_s=301.0, step_s=9.5)
                scalar = [
                    content.staleness(self._held_version(log, t), t)
                    for t in series.times
                ]
                assert list(series.values) == scalar

    @staticmethod
    def _held_version(log, t):
        held = 0
        for when, version in log or [(0.0, 0)]:
            if when <= t:
                held = max(held, version)
        return held

    def test_over_uses_cached_array(self):
        series = staleness_series(
            self.make_content(), [(0.0, 0)], horizon_s=300.0, step_s=10.0
        )
        arr = series._values_arr
        assert tuple(arr) == series.values
        assert series.over(0.0) == float(np.mean(arr > 0.0))
        assert series._values_arr is arr  # constructed once, not per call

    def test_validation(self):
        content = self.make_content()
        with pytest.raises(ValueError):
            staleness_series(content, [], horizon_s=0.0)
        with pytest.raises(ValueError):
            staleness_series(content, [], horizon_s=10.0, step_s=0.0)
        with pytest.raises(ValueError):
            fleet_staleness_series(content, [], horizon_s=10.0)
        with pytest.raises(ValueError):
            StalenessSeries(times=(0.0,), values=())

    def test_integration_with_deployment(self, smoke_config):
        from repro.experiments import build_deployment

        deployment = build_deployment(smoke_config, "ttl", "unicast")
        deployment.run()
        logs = [server.apply_log() for server in deployment.servers]
        fleet = fleet_staleness_series(
            deployment.content, logs, horizon_s=smoke_config.run_horizon_s
        )
        # TTL staleness is bounded by ~TTL plus delays
        assert 0.0 < fleet.max() < 3.0 * smoke_config.server_ttl_s
