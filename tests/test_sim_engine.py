"""Tests for the discrete-event engine core (repro.sim.engine)."""

import pytest

from repro.sim import EmptySchedule, Environment


class TestEvent:
    def test_untriggered_event_has_no_value(self):
        env = Environment()
        event = env.event()
        assert not event.triggered
        with pytest.raises(AttributeError):
            _ = event.value
        with pytest.raises(AttributeError):
            _ = event.ok

    def test_succeed_sets_value_and_ok(self):
        env = Environment()
        event = env.event()
        event.succeed(41)
        assert event.triggered
        assert event.ok
        assert event.value == 41

    def test_double_succeed_raises(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        event = env.event()
        with pytest.raises(ValueError):
            event.fail("not an exception")

    def test_failed_event_propagates_from_run(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_defused_failure_does_not_propagate(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("boom"))
        event.defused = True
        env.run()  # no raise


class TestTimeout:
    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_carries_value(self):
        env = Environment()

        def proc(env):
            value = yield env.timeout(3, "payload")
            return value

        process = env.process(proc(env))
        assert env.run(until=process) == "payload"
        assert env.now == 3

    def test_zero_delay_fires_immediately(self):
        env = Environment()
        log = []

        def proc(env):
            yield env.timeout(0)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [0]


class TestEnvironment:
    def test_now_starts_at_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(10.0).now == 10.0

    def test_step_on_empty_schedule_raises(self):
        with pytest.raises(EmptySchedule):
            Environment().step()

    def test_peek_returns_next_event_time(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(7)
        assert env.peek() == 7

    def test_run_until_time_stops_exactly(self):
        env = Environment()

        def ticker(env):
            while True:
                yield env.timeout(1)

        env.process(ticker(env))
        env.run(until=5)
        assert env.now == 5

    def test_run_until_past_time_rejected(self):
        env = Environment(100.0)
        with pytest.raises(ValueError):
            env.run(until=50)

    def test_run_until_event_returns_its_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2)
            return "done"

        process = env.process(proc(env))
        assert env.run(until=process) == "done"

    def test_run_drains_queue_without_until(self):
        env = Environment()
        env.timeout(1)
        env.timeout(5)
        env.run()
        assert env.now == 5

    def test_run_until_untriggerable_event_raises(self):
        env = Environment()
        orphan = env.event()
        env.timeout(1)
        with pytest.raises(RuntimeError, match="until"):
            env.run(until=orphan)

    def test_fifo_order_for_simultaneous_events(self):
        env = Environment()
        order = []

        def proc(env, name):
            yield env.timeout(5)
            order.append(name)

        for name in ("a", "b", "c"):
            env.process(proc(env, name))
        env.run()
        assert order == ["a", "b", "c"]

    def test_determinism_across_runs(self):
        def build_and_run():
            env = Environment()
            order = []

            def proc(env, name, delay):
                yield env.timeout(delay)
                order.append((env.now, name))

            for name, delay in [("x", 3), ("y", 1), ("z", 3)]:
                env.process(proc(env, name, delay))
            env.run()
            return order

        assert build_and_run() == build_and_run()


class TestPooledTimeout:
    def test_behaves_like_timeout(self):
        env = Environment()
        seen = []

        def proc(env):
            value = yield env.pooled_timeout(2.5, value="tick")
            seen.append((env.now, value))
            yield env.pooled_timeout(1.0)
            seen.append((env.now, None))

        env.process(proc(env))
        env.run()
        assert seen == [(2.5, "tick"), (3.5, None)]

    def test_recycles_fired_timeouts(self):
        env = Environment()
        instances = []

        def proc(env):
            for _ in range(4):
                timeout = env.pooled_timeout(1.0)
                instances.append(id(timeout))
                yield timeout

        env.process(proc(env))
        env.run()
        # A fired timeout is recycled after its callbacks finish, so the
        # process's next sleep allocates one more object and the two then
        # alternate forever: 4 sleeps touch only 2 distinct objects.
        assert len(set(instances)) == 2
        assert instances[0] == instances[2]
        assert instances[1] == instances[3]

    def test_negative_delay_rejected(self):
        env = Environment()

        def proc(env):
            # Fresh allocation (empty pool) and the recycled path must
            # both reject a negative delay.
            with pytest.raises(ValueError):
                env.pooled_timeout(-1.0)
            yield env.pooled_timeout(1.0)  # fires, then lands in the pool
            with pytest.raises(ValueError):
                env.pooled_timeout(-1.0)

        env.process(proc(env))
        env.run()
