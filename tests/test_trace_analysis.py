"""Tests for the alpha/beta trace estimators on hand-crafted series."""

import numpy as np
import pytest

from repro.network.geo import GeoPoint
from repro.trace.analysis import (
    all_inconsistencies,
    alpha_times,
    consistency_ratio,
    day_inconsistencies,
    episode_lengths,
    inconsistent_server_fraction,
    server_max_inconsistency,
    server_mean_inconsistencies,
)
from repro.trace.records import CdnTrace, DayTrace, PollSeries, ServerInfo


def make_day():
    """Two servers, two updates; hand-computable alphas and episodes.

    Ground truth updates at 15 and 45.  Server A refreshes fast (sees v1
    at t=20, v2 at t=50); server B lags (sees v1 at t=40, v2 at t=80).
    """
    day = DayTrace(
        day_index=0,
        session_length_s=100.0,
        update_times=np.array([15.0, 45.0]),
    )
    day.polls = {
        "A": PollSeries(
            times=np.arange(0.0, 100.0, 10.0),
            versions=np.array([0, 0, 1, 1, 1, 2, 2, 2, 2, 2]),
        ),
        "B": PollSeries(
            times=np.arange(0.0, 100.0, 10.0),
            versions=np.array([0, 0, 0, 0, 1, 1, 1, 1, 2, 2]),
        ),
    }
    return day


def make_trace(day):
    servers = {
        "A": ServerInfo("A", GeoPoint(40.0, -75.0), "isp-a", "NYC", 1000.0),
        "B": ServerInfo("B", GeoPoint(41.0, -75.0), "isp-b", "NYC", 1200.0),
    }
    return CdnTrace(servers=servers, days=[day], poll_interval_s=10.0, ttl_s=60.0)


class TestAlphaTimes:
    def test_first_appearances(self):
        day = make_day()
        alpha = alpha_times(day)
        # v1 first shown by A at t=20; v2 first shown by A at t=50
        assert alpha[1] == 20.0
        assert alpha[2] == 50.0

    def test_alpha_restricted_to_subset(self):
        day = make_day()
        alpha_b = alpha_times(day, ["B"])
        assert alpha_b[1] == 40.0
        assert alpha_b[2] == 80.0

    def test_alpha_monotone(self, tiny_trace):
        for day in tiny_trace.days:
            alpha = alpha_times(day)
            finite = alpha[np.isfinite(alpha)]
            assert np.all(np.diff(finite) >= 0)


class TestEpisodeLengths:
    def test_hand_computed_episodes(self):
        day = make_day()
        alpha = alpha_times(day)
        # Server A: shows v0 until t=10, v1 until t=40, v2 has no successor.
        #   v0 episode: beta=10, alpha(v1)=20 -> clamp(10-20)=0
        #   v1 episode: beta=40, alpha(v2)=50 -> clamp(40-50)=0
        assert episode_lengths(day.polls["A"], alpha).tolist() == [0.0, 0.0]
        # Server B: v0 beta=30 vs alpha(v1)=20 -> 10; v1 beta=70 vs alpha(v2)=50 -> 20
        assert episode_lengths(day.polls["B"], alpha).tolist() == [10.0, 20.0]

    def test_empty_series(self):
        day = make_day()
        alpha = alpha_times(day)
        empty = PollSeries(times=np.array([]), versions=np.array([], dtype=np.int64))
        assert episode_lengths(empty, alpha).size == 0

    def test_day_inconsistencies_matches_per_server(self):
        day = make_day()
        per_server = day_inconsistencies(day)
        assert per_server["B"].tolist() == [10.0, 20.0]

    def test_all_inconsistencies_concatenates(self):
        trace = make_trace(make_day())
        lengths = all_inconsistencies(trace)
        assert sorted(lengths.tolist()) == [0.0, 0.0, 10.0, 20.0]


class TestDerivedMetrics:
    def test_consistency_ratio(self):
        trace = make_trace(make_day())
        # B: total inconsistency 30 over 100 s of trace.
        assert consistency_ratio(trace, "B") == pytest.approx(0.7)
        assert consistency_ratio(trace, "A") == pytest.approx(1.0)
        with pytest.raises(KeyError):
            consistency_ratio(trace, "missing")

    def test_server_mean_inconsistencies(self):
        trace = make_trace(make_day())
        means = server_mean_inconsistencies(trace)
        assert means["A"] == [0.0]
        assert means["B"] == [15.0]

    def test_server_max_inconsistency_excludes_absent(self):
        day = make_day()
        day.polls["B"].absences.append((50.0, 20.0))
        maxima = server_max_inconsistency(day, exclude_absent=True)
        assert "B" not in maxima
        assert maxima["A"] == 0.0
        maxima_all = server_max_inconsistency(day, exclude_absent=False)
        assert maxima_all["B"] == 20.0

    def test_inconsistent_server_fraction(self):
        day = make_day()
        fraction = inconsistent_server_fraction(day)
        # B is stale from alpha(v1)=20 to 40 and alpha(v2)=50 to 80 -- about
        # half of the 80 s of defined freshness. A is never stale.
        assert 0.15 < fraction < 0.40


class TestOnSyntheticTrace:
    def test_mean_inconsistency_near_planted_ttl_half(self, tiny_trace):
        lengths = all_inconsistencies(tiny_trace)
        # planted TTL 60 -> TTL-only component mean 30; noise adds a few s
        assert 25.0 < lengths.mean() < 45.0

    def test_provider_polls_are_fresher_than_servers(self, tiny_trace):
        from repro.trace.analysis import provider_inconsistencies

        provider = provider_inconsistencies(tiny_trace)
        servers = all_inconsistencies(tiny_trace)
        assert provider.mean() < servers.mean() / 3.0
