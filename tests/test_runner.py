"""Tests for the parallel experiment runner and the run registry."""

import json
import os

import pytest

from repro.experiments.section4 import fig14_unicast_inconsistency
from repro.runner import (
    REGISTRY_ENV,
    Runner,
    RunRegistry,
    RunSpec,
    WORKERS_ENV,
    code_version,
    resolve_workers,
    run_specs,
)


@pytest.fixture
def grid_specs(smoke_config):
    """8 independent deployments: 2 methods x 2 infras x 2 TTLs."""
    return [
        RunSpec(
            config=smoke_config.with_overrides(server_ttl_s=ttl),
            method=method,
            infrastructure=infrastructure,
        )
        for method in ("push", "ttl")
        for infrastructure in ("unicast", "multicast")
        for ttl in (10.0, 20.0)
    ]


class TestRunSpec:
    def test_key_is_stable_and_content_addressed(self, smoke_config):
        a = RunSpec(config=smoke_config, method="ttl")
        b = RunSpec(config=smoke_config.with_overrides(), method="ttl")
        assert a.key() == b.key()
        assert a == b and hash(a) == hash(b)
        changed = RunSpec(
            config=smoke_config.with_overrides(seed=1), method="ttl"
        )
        assert changed.key() != a.key()

    def test_roundtrips_through_dict(self, smoke_config):
        spec = RunSpec(
            config=smoke_config, method="push", infrastructure="multicast"
        )
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.key() == spec.key()

    def test_rejects_unknown_kind(self, smoke_config):
        with pytest.raises(ValueError):
            RunSpec(config=smoke_config, method="ttl", kind="daydream")

    def test_labels(self, smoke_config):
        assert (
            RunSpec(config=smoke_config, method="ttl").label
            == "ttl/unicast seed=0"
        )
        assert (
            RunSpec(config=smoke_config, method="hat", kind="system").label
            == "system:hat seed=0"
        )


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3
        assert resolve_workers(2) == 2  # explicit beats env

    def test_auto_uses_cpu_count(self, monkeypatch):
        import multiprocessing

        assert resolve_workers("auto") == multiprocessing.cpu_count()
        assert resolve_workers(0) == multiprocessing.cpu_count()


class TestRunnerDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self, grid_specs):
        serial = Runner(workers=1, registry=False).run(grid_specs)
        parallel = Runner(workers=4, registry=False).run(grid_specs)
        assert serial.stats.executed == parallel.stats.executed == 8
        for left, right in zip(serial.metrics, parallel.metrics):
            assert left.to_dict() == right.to_dict()

    def test_metrics_come_back_in_spec_order(self, grid_specs):
        outcome = Runner(workers=4, registry=False).run(grid_specs)
        for spec, metrics in outcome.pairs():
            assert metrics.name.startswith(spec.method)

    def test_stats_counters(self, grid_specs):
        outcome = Runner(workers=1, registry=False).run(grid_specs[:2])
        stats = outcome.stats
        assert stats.n_specs == 2 and stats.executed == 2
        assert stats.cache_hits == 0
        assert stats.events_processed > 0
        assert stats.busy_time_s > 0 and stats.wall_time_s > 0
        assert 0.0 < stats.worker_utilization <= 1.0
        assert "2 deployment(s)" in stats.summary()


class TestRunRegistry:
    def test_second_run_rebuilds_nothing(self, grid_specs, tmp_path):
        path = str(tmp_path / "runs.json")
        first = Runner(workers=1, registry=path).run(grid_specs)
        assert first.stats.executed == 8 and first.stats.cache_hits == 0
        second = Runner(workers=1, registry=path).run(grid_specs)
        assert second.stats.executed == 0 and second.stats.cache_hits == 8
        for fresh, cached in zip(first.metrics, second.metrics):
            assert fresh.to_dict() == cached.to_dict()

    def test_code_version_invalidates(self, smoke_config, tmp_path):
        path = str(tmp_path / "runs.json")
        spec = RunSpec(config=smoke_config, method="push")
        Runner(workers=1, registry=RunRegistry(path)).run([spec])
        stale = RunRegistry(path, version="something-else")
        assert stale.get(spec) is None
        outcome = Runner(workers=1, registry=stale).run([spec])
        assert outcome.stats.executed == 1

    def test_corrupt_registry_file_is_ignored(self, smoke_config, tmp_path):
        path = str(tmp_path / "runs.json")
        with open(path, "w") as handle:
            handle.write("{ not json")
        spec = RunSpec(config=smoke_config, method="push")
        outcome = Runner(workers=1, registry=path).run([spec])
        assert outcome.stats.executed == 1
        # and the save() repaired the file
        with open(path) as handle:
            data = json.load(handle)
        assert data["format"] == 1 and len(data["runs"]) == 1

    def test_registry_env_var(self, smoke_config, tmp_path, monkeypatch):
        path = str(tmp_path / "env_runs.json")
        monkeypatch.setenv(REGISTRY_ENV, path)
        spec = RunSpec(config=smoke_config, method="push")
        Runner(workers=1).run([spec])
        assert os.path.exists(path)
        outcome = Runner(workers=1).run([spec])
        assert outcome.stats.cache_hits == 1
        monkeypatch.delenv(REGISTRY_ENV)
        no_registry = Runner(workers=1)
        assert no_registry.registry is None

    def test_registry_false_disables(self, smoke_config, tmp_path, monkeypatch):
        monkeypatch.setenv(REGISTRY_ENV, str(tmp_path / "ignored.json"))
        runner = Runner(workers=1, registry=False)
        assert runner.registry is None

    def test_code_version_is_cached_and_hexish(self):
        version = code_version()
        assert version == code_version()
        assert len(version) == 16
        int(version, 16)  # raises if not hex


class TestDriverIntegration:
    def test_driver_level_cache_hits(self, smoke_config, tmp_path):
        runner = Runner(workers=1, registry=str(tmp_path / "runs.json"))
        first = fig14_unicast_inconsistency(smoke_config, runner=runner)
        assert first.stats.executed == 3
        second = fig14_unicast_inconsistency(smoke_config, runner=runner)
        assert second.stats.executed == 0 and second.stats.cache_hits == 3
        assert first.to_dict()["series"] == second.to_dict()["series"]

    def test_run_specs_default_runner(self, smoke_config, monkeypatch):
        monkeypatch.delenv(REGISTRY_ENV, raising=False)
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        outcome = run_specs([RunSpec(config=smoke_config, method="push")])
        assert len(outcome) == 1
        assert outcome.stats.workers == 1
