"""Detailed unit tests for the cause analyses on hand-crafted traces."""

import numpy as np

from repro.metrics.stats import PercentileSummary
from repro.network.geo import GeoPoint
from repro.trace.causes import (
    absence_impact,
    inconsistency_around_absences,
    observed_absence_lengths,
)
from repro.trace.records import CdnTrace, DayTrace, PollSeries, ServerInfo
from repro.trace.user_view import inconsistency_vs_poll_interval
from repro.trace.synthesize import UserDaySeries, UserTrace


def make_trace_with_absence():
    """One server with a 60 s absence: polls at 10 s granularity with a
    gap from t=100 to t=160, held stale through it."""
    updates = np.arange(20.0, 300.0, 40.0)  # v1..v7
    day = DayTrace(day_index=0, session_length_s=320.0, update_times=updates)

    # fast server defines alpha: applies each update within ~2 s
    fast_times = np.arange(0.0, 320.0, 10.0)
    fast_versions = np.searchsorted(updates + 2.0, fast_times, side="right")
    day.polls["fast"] = PollSeries(times=fast_times, versions=fast_versions)

    # absent server: normal 10 s behind, but absent in [100, 160)
    slow_times = np.arange(0.0, 320.0, 10.0)
    keep = ~((slow_times >= 100.0) & (slow_times < 160.0))
    slow_times = slow_times[keep]
    apply_times = updates + 10.0
    # during the absence it also misses refreshes: updates arriving in
    # [100, 160) are applied only at 165
    apply_times = np.where(
        (apply_times >= 100.0) & (apply_times < 160.0), 165.0, apply_times
    )
    slow_versions = np.searchsorted(np.minimum.accumulate(apply_times[::-1])[::-1],
                                    slow_times, side="right")
    day.polls["slow"] = PollSeries(
        times=slow_times, versions=slow_versions, absences=[(100.0, 60.0)]
    )

    servers = {
        "fast": ServerInfo("fast", GeoPoint(40.0, -75.0), "isp-a", "NYC", 500.0),
        "slow": ServerInfo("slow", GeoPoint(41.0, -75.0), "isp-b", "NYC", 600.0),
    }
    return CdnTrace(servers=servers, days=[day], poll_interval_s=10.0, ttl_s=60.0)


class TestAbsenceEstimators:
    def test_observed_absence_length_from_gap(self):
        trace = make_trace_with_absence()
        lengths = observed_absence_lengths(trace)
        # gap between responses at 90 and 160 => absence of 70 - 10 = 60 s
        assert lengths.tolist() == [60.0]

    def test_absence_impact_has_baseline_and_affected_bin(self):
        trace = make_trace_with_absence()
        impact = absence_impact(trace)
        assert 0.0 in impact           # the absence-free server's baseline
        affected = [v for k, v in impact.items() if k > 0]
        assert len(affected) == 1
        # the post-absence episode is much staler than the baseline
        assert affected[0] > impact[0.0]

    def test_around_absence_closer_is_worse(self):
        trace = make_trace_with_absence()
        around = inconsistency_around_absences(
            trace, offsets_s=(20.0, 60.0), group_width_s=100.0
        )
        assert around  # the absence produced measurements
        for (group, offset), value in around.items():
            assert group == 100.0
            assert value >= 0.0
        # narrower window concentrates on the stale episode
        narrow = around[(100.0, 20.0)]
        wide = around[(100.0, 60.0)]
        assert narrow >= wide


class TestPollIntervalSweep:
    def test_uses_callable_per_interval(self):
        calls = []

        def make_user_trace(interval):
            calls.append(interval)
            # one user, one day: alternating consistent/inconsistent runs
            times = np.arange(0.0, 200.0, interval)
            versions = np.zeros(times.size, dtype=np.int64)
            versions[0 :: 4] = 2        # high
            versions[1 :: 4] = 1        # regression => inconsistent
            versions = np.abs(versions)
            series = UserDaySeries(times=times, versions=versions,
                                   server_ids=["s"] * times.size)
            return UserTrace(users={"u": [series]}, poll_interval_s=interval)

        result = inconsistency_vs_poll_interval(make_user_trace, intervals=(10.0, 20.0))
        assert calls == [10.0, 20.0]
        assert set(result) == {10.0, 20.0}
        for summary in result.values():
            assert isinstance(summary, PercentileSummary)
        # durations scale with the polling interval in this synthetic
        assert result[20.0].median >= result[10.0].median

    def test_no_inconsistency_yields_zero_summary(self):
        def make_user_trace(interval):
            times = np.arange(0.0, 100.0, interval)
            versions = np.arange(times.size, dtype=np.int64)  # monotone
            series = UserDaySeries(times=times, versions=versions,
                                   server_ids=["s"] * times.size)
            return UserTrace(users={"u": [series]}, poll_interval_s=interval)

        result = inconsistency_vs_poll_interval(make_user_trace, intervals=(10.0,))
        assert result[10.0].count == 0
        assert result[10.0].p95 == 0.0
