"""Smoke tests: every example script must run and print its key output.

These execute the real scripts as subprocesses (reduced scales where the
script accepts arguments), so documentation and code cannot drift apart.
"""

import os
import subprocess
import sys


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=300):
    path = os.path.join(EXAMPLES_DIR, name)
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        for system in ("push", "invalidation", "ttl", "self", "hybrid", "hat"):
            assert system in out
        assert "provider" in out

    def test_live_game_measurement(self, tmp_path):
        save = str(tmp_path / "trace.json")
        out = run_example(
            "live_game_measurement.py", "--servers", "50", "--days", "2",
            "--save", save,
        )
        assert "inferred TTL" in out
        assert "contradicts a multicast tree" in out
        assert os.path.exists(save)

    def test_method_comparison(self):
        out = run_example(
            "method_comparison.py", "--servers", "12", "--users-per-server", "2",
            "--updates", "30", "--duration", "900",
        )
        assert "unicast" in out and "multicast" in out
        assert "km*KB" in out

    def test_osn_workload(self):
        out = run_example("osn_workload.py")
        assert "self-adaptive" in out
        assert "fewer poll/update responses than plain TTL" in out

    def test_hat_failure_injection(self):
        out = run_example("hat_failure_injection.py")
        assert "push tree, no repair" in out
        assert "with repair" in out

    def test_adaptive_consistency(self):
        out = run_example("adaptive_consistency.py")
        assert "recommendation" in out or "MethodAdvisor" in out
        assert "'push': 12" in out or "push" in out
        assert "converged" in out

    def test_staleness_timeline(self):
        out = run_example("staleness_timeline.py")
        assert "fleet mean staleness" in out
        assert "ttl" in out and "hat" in out and "push" in out

    def test_export_figures(self, tmp_path):
        out = run_example(
            "export_figures.py", "--out", str(tmp_path / "csv"), "--scale", "micro"
        )
        assert "wrote" in out and "CSV" in out
        import glob
        assert len(glob.glob(str(tmp_path / "csv" / "*.csv"))) >= 9
