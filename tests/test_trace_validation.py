"""Tests for estimator validation against ground truth."""

import pytest

from repro.trace import SynthesisConfig, TraceSynthesizer
from repro.trace.validation import (
    absence_detection,
    alpha_bias,
    ttl_recovery_error,
)


@pytest.fixture(scope="module")
def validation_trace():
    config = SynthesisConfig(n_servers=120, n_days=4, absence_prob_per_day=0.25)
    return TraceSynthesizer(config, master_seed=19).synthesize()


class TestAlphaBias:
    def test_alpha_runs_late_but_close(self, validation_trace):
        bias = alpha_bias(validation_trace)
        # nobody observes an update before it exists (modulo the small
        # residual clock-correction error)
        assert bias.p5 > -1.0
        # with ~120 independently phased servers, the earliest observer
        # is far closer than one TTL
        assert bias.median < validation_trace.ttl_s / 2.0
        assert bias.p95 < validation_trace.ttl_s

    def test_bias_shrinks_with_fleet_size(self):
        def median_bias(n_servers):
            config = SynthesisConfig(n_servers=n_servers, n_days=2)
            trace = TraceSynthesizer(config, master_seed=23).synthesize()
            return alpha_bias(trace).median

        assert median_bias(150) < median_bias(15)

    def test_empty_trace_rejected(self):
        config = SynthesisConfig(
            n_servers=5, n_days=1, updates_per_day_low=1, updates_per_day_high=1
        )
        trace = TraceSynthesizer(config, master_seed=1).synthesize()
        trace.days[0].update_times = trace.days[0].update_times[:0]
        with pytest.raises(ValueError):
            alpha_bias(trace)


class TestAbsenceDetection:
    def test_high_recall_and_precision(self, validation_trace):
        report = absence_detection(validation_trace)
        assert report.true_absences > 5
        assert report.recall > 0.9
        assert report.precision > 0.9

    def test_length_errors_bounded_by_poll_interval(self, validation_trace):
        report = absence_detection(validation_trace)
        assert report.length_error is not None
        # gap-based length = true length +/- up to ~two poll intervals
        # (phase of the crawl grid on both sides), plus flaky-window noise
        assert abs(report.length_error.median) < 2.5 * validation_trace.poll_interval_s

    def test_no_absences_perfect_scores(self):
        config = SynthesisConfig(n_servers=20, n_days=1, absence_prob_per_day=0.0)
        trace = TraceSynthesizer(config, master_seed=3).synthesize()
        report = absence_detection(trace)
        assert report.true_absences == 0
        assert report.recall == 1.0


class TestTtlRecovery:
    def test_error_within_one_refinement_step(self, validation_trace):
        assert abs(ttl_recovery_error(validation_trace)) <= 8.0
