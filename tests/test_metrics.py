"""Tests for statistics helpers, traffic ledger and consistency metrics."""

import numpy as np
import pytest

from repro.cdn.client import Observation
from repro.cdn.content import LiveContent
from repro.metrics import (
    Cdf,
    TrafficLedger,
    mean,
    pearson_r,
    percentile,
    rmse_against_uniform,
    summarize,
    uniform_cdf_value,
)
from repro.metrics.consistency import (
    mean_update_lag,
    observation_update_lags,
    stale_observation_fraction,
    update_lags,
)
from repro.network.message import Message, MessageKind


class TestStats:
    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 101)
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_summarize(self):
        summary = summarize(range(1, 101))
        assert summary.median == pytest.approx(50.5)
        assert summary.count == 100
        assert summary.p5 < summary.median < summary.p95
        assert set(summary.as_dict()) == {"p5", "median", "p95", "mean", "count"}

    def test_cdf_basics(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(2.0) == 0.5
        assert cdf.fraction_below(2.0) == 0.25
        assert cdf.fraction_above(3.0) == 0.25
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 4.0
        assert len(cdf) == 4

    def test_cdf_points_monotone(self):
        cdf = Cdf(np.random.RandomState(0).rand(500))
        points = cdf.points(100)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_cdf_empty_raises(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_uniform_cdf_value(self):
        assert uniform_cdf_value(-1, 0, 10) == 0.0
        assert uniform_cdf_value(5, 0, 10) == 0.5
        assert uniform_cdf_value(20, 0, 10) == 1.0
        with pytest.raises(ValueError):
            uniform_cdf_value(0, 5, 5)

    def test_rmse_against_uniform_for_uniform_sample(self):
        rng = np.random.RandomState(1)
        sample = rng.uniform(0, 60, 20000)
        assert rmse_against_uniform(sample, 60.0) < 0.02

    def test_rmse_against_uniform_detects_mismatch(self):
        rng = np.random.RandomState(2)
        shifted = rng.uniform(30, 60, 20000)
        assert rmse_against_uniform(shifted, 60.0) > 0.2

    def test_pearson_r(self):
        xs = list(range(100))
        assert pearson_r(xs, xs) == pytest.approx(1.0)
        assert pearson_r(xs, [-x for x in xs]) == pytest.approx(-1.0)
        assert abs(pearson_r(xs, [1.0] * 100)) == 0.0
        with pytest.raises(ValueError):
            pearson_r([1, 2], [1])


def _msg(kind, size=1.0, src="a", dst="b"):
    return Message(kind, src, dst, size)


class TestTrafficLedger:
    def test_record_and_totals(self):
        ledger = TrafficLedger()
        ledger.record(_msg(MessageKind.PUSH_UPDATE, size=2.0), distance_km=100.0)
        ledger.record(_msg(MessageKind.POLL), distance_km=50.0)
        totals = ledger.totals()
        assert totals.count == 2
        assert totals.km_kb == pytest.approx(250.0)
        assert totals.km == pytest.approx(150.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            TrafficLedger().record(_msg(MessageKind.POLL), distance_km=-1.0)

    def test_update_vs_light_split(self):
        ledger = TrafficLedger()
        ledger.record(_msg(MessageKind.PUSH_UPDATE), 10.0)
        ledger.record(_msg(MessageKind.POLL_RESPONSE), 10.0)
        ledger.record(_msg(MessageKind.POLL), 10.0)
        ledger.record(_msg(MessageKind.INVALIDATE), 10.0)
        assert ledger.update_message_count() == 2
        assert ledger.light_message_count() == 2
        assert ledger.update_load_km() == pytest.approx(20.0)
        assert ledger.light_load_km() == pytest.approx(20.0)

    def test_response_metric_includes_not_modified(self):
        ledger = TrafficLedger()
        ledger.record(_msg(MessageKind.POLL_RESPONSE), 1.0)
        ledger.record(_msg(MessageKind.POLL_NOT_MODIFIED), 1.0)
        ledger.record(_msg(MessageKind.POLL), 1.0)
        assert ledger.response_message_count() == 2
        assert ledger.response_load_km() == pytest.approx(2.0)
        assert ledger.request_load_km() == pytest.approx(1.0)

    def test_per_sender_accounting(self):
        ledger = TrafficLedger()

        class Node:
            def __init__(self, node_id):
                self.node_id = node_id

        provider = Node("provider")
        ledger.record(Message(MessageKind.PUSH_UPDATE, provider, None, 1.0), 5.0)
        ledger.record(Message(MessageKind.POLL_NOT_MODIFIED, provider, None, 1.0), 5.0)
        ledger.record(Message(MessageKind.POLL, Node("server-1"), None, 1.0), 5.0)
        assert ledger.updates_sent_by("provider") == 1
        assert ledger.responses_sent_by("provider") == 2
        assert ledger.messages_sent_by("provider") == 2
        assert ledger.updates_sent_by("nobody") == 0

    def test_content_traffic_not_in_consistency_cost(self):
        ledger = TrafficLedger()
        ledger.record(_msg(MessageKind.CONTENT_RESPONSE, size=100.0), 1000.0)
        ledger.record(_msg(MessageKind.POLL), 10.0)
        assert ledger.consistency_cost_km_kb() == pytest.approx(10.0)

    def test_snapshot_roundtrip_keys(self):
        ledger = TrafficLedger()
        ledger.record(_msg(MessageKind.POLL), 1.0)
        snapshot = ledger.snapshot()
        assert snapshot["poll"]["count"] == 1


class TestUpdateLags:
    def make_content(self):
        return LiveContent("c", update_times=[10.0, 20.0, 30.0])

    def test_basic_lags(self):
        content = self.make_content()
        log = [(0.0, 0), (12.0, 1), (21.0, 2), (35.0, 3)]
        assert update_lags(content, log) == [2.0, 1.0, 5.0]

    def test_version_skip_realises_older_updates(self):
        content = self.make_content()
        log = [(0.0, 0), (32.0, 3)]  # jumps straight to v3
        assert update_lags(content, log) == [22.0, 12.0, 2.0]

    def test_window_filters_updates(self):
        content = self.make_content()
        log = [(0.0, 0), (12.0, 1), (21.0, 2), (35.0, 3)]
        assert update_lags(content, log, window=(15.0, 25.0)) == [1.0]

    def test_censoring(self):
        content = self.make_content()
        log = [(0.0, 0), (12.0, 1)]  # never sees v2/v3
        assert update_lags(content, log) == [2.0]
        assert update_lags(content, log, censor_at=50.0) == [2.0, 30.0, 20.0]

    def test_mean_update_lag_empty_is_zero(self):
        content = LiveContent("c", update_times=[])
        assert mean_update_lag(content, [(0.0, 0)]) == 0.0

    def test_observation_lags(self):
        content = self.make_content()
        observations = [
            Observation(5.0, 0, "s1"),
            Observation(15.0, 1, "s1"),
            Observation(25.0, 1, "s2"),  # stale server
            Observation(33.0, 3, "s1"),
        ]
        assert observation_update_lags(content, observations) == [5.0, 13.0, 3.0]


class TestStaleFraction:
    def test_no_observations(self):
        assert stale_observation_fraction([]) == 0.0

    def test_monotone_stream_has_no_staleness(self):
        observations = [Observation(float(i), i, "s") for i in range(10)]
        assert stale_observation_fraction(observations) == 0.0

    def test_regression_counts_once_per_stale_visit(self):
        observations = [
            Observation(0.0, 0, "a"),
            Observation(1.0, 2, "a"),
            Observation(2.0, 1, "b"),  # stale!
            Observation(3.0, 1, "b"),  # still below the max seen (2)
            Observation(4.0, 3, "a"),
        ]
        assert stale_observation_fraction(observations) == pytest.approx(2 / 5)
