"""Tests for the experiment configs, testbed builder, and figure drivers
(at smoke scale -- the benchmarks run them at CI/paper scale)."""

import pytest

from repro.experiments import (
    TestbedConfig,
    build_deployment,
    build_system,
    ci_scale,
    fig12_dynamic_tree,
    fig6_ttl_inference,
    paper_scale,
    smoke_scale,
)
from repro.experiments.section4 import fig16_traffic_cost
from repro.experiments.section5 import section5_config


class TestConfig:
    def test_paper_scale_matches_paper(self):
        config = paper_scale()
        assert config.n_servers == 170
        assert config.users_per_server == 5
        assert config.n_updates == 306
        assert config.game_duration_s == pytest.approx(8760.0)
        assert config.update_start_s == 60.0
        assert config.update_size_kb == 1.0
        assert config.hat_clusters == 20
        assert config.hat_arity == 4
        assert config.tree_arity == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TestbedConfig(n_servers=0)
        with pytest.raises(ValueError):
            TestbedConfig(user_selector="roulette")
        with pytest.raises(ValueError):
            TestbedConfig(server_ttl_s=0)

    def test_with_creates_modified_copy(self):
        config = ci_scale()
        changed = config.with_(server_ttl_s=42.0)
        assert changed.server_ttl_s == 42.0
        assert config.server_ttl_s != 42.0
        assert changed.n_servers == config.n_servers

    def test_with_overrides_rejects_unknown_knobs(self):
        config = ci_scale()
        with pytest.raises(ValueError) as excinfo:
            config.with_overrides(server_tll_s=42.0)
        message = str(excinfo.value)
        assert "server_tll_s" in message
        assert "server_ttl_s" in message  # did-you-mean hint

    def test_fields_are_keyword_only(self):
        with pytest.raises(TypeError):
            TestbedConfig(170)  # positional construction is an error

    def test_run_horizon_includes_slack(self):
        config = smoke_scale()
        assert config.run_horizon_s > config.update_start_s + config.game_duration_s
        explicit = config.with_(horizon_s=123.0)
        assert explicit.run_horizon_s == 123.0


class TestTestbed:
    def test_unknown_names_rejected(self, smoke_config):
        with pytest.raises(ValueError):
            build_deployment(smoke_config, "carrier-pigeon")
        with pytest.raises(ValueError):
            build_deployment(smoke_config, "ttl", "smoke-signals")
        with pytest.raises(ValueError):
            build_system(smoke_config, "quantum")

    def test_deployment_runs_once(self, smoke_config):
        deployment = build_deployment(smoke_config, "push", "unicast")
        deployment.run()
        with pytest.raises(RuntimeError):
            deployment.run()

    def test_metrics_shape(self, smoke_config):
        metrics = build_deployment(smoke_config, "ttl", "unicast").run()
        assert len(metrics.server_lags) == smoke_config.n_servers
        assert len(metrics.user_lags) == smoke_config.n_servers  # 1 user each
        assert metrics.cost_km_kb > 0
        assert metrics.update_messages > 0
        assert metrics.mean_server_lag > 0
        p5, median, p95 = metrics.server_lag_percentiles()
        assert p5 <= median <= p95

    def test_methods_ordering_unicast(self, smoke_config):
        # Invalidation's fetch waits for a visit, so it needs the paper's
        # multiple users per server to sit clearly below TTL.
        config = smoke_config.with_(users_per_server=4)
        lags = {
            method: build_deployment(config, method, "unicast").run().mean_server_lag
            for method in ("push", "invalidation", "ttl")
        }
        assert lags["push"] < lags["invalidation"] < lags["ttl"]

    def test_multicast_ttl_depth_amplification(self, smoke_config):
        unicast = build_deployment(smoke_config, "ttl", "unicast").run()
        multicast = build_deployment(smoke_config, "ttl", "multicast").run()
        assert multicast.mean_server_lag > 1.5 * unicast.mean_server_lag

    def test_deterministic_given_seed(self, smoke_config):
        a = build_deployment(smoke_config, "ttl", "unicast").run()
        b = build_deployment(smoke_config, "ttl", "unicast").run()
        assert a.mean_server_lag == b.mean_server_lag
        assert a.cost_km_kb == b.cost_km_kb

    def test_seed_changes_results(self, smoke_config):
        a = build_deployment(smoke_config, "ttl", "unicast").run()
        b = build_deployment(smoke_config.with_(seed=99), "ttl", "unicast").run()
        assert a.mean_server_lag != b.mean_server_lag

    def test_hat_system_builds_and_runs(self, smoke_config):
        metrics = build_system(section5_config(smoke_config), "hat").run()
        assert len(metrics.server_lags) == smoke_config.n_servers
        assert metrics.provider_update_messages > 0

    def test_self_system_is_self_adaptive_unicast(self, smoke_config):
        deployment = build_system(smoke_config, "self")
        assert deployment.name == "self"
        assert deployment.servers[0].policy.method_name == "self-adaptive"

    def test_switch_selector_configuration(self, smoke_config):
        deployment = build_system(
            smoke_config.with_(user_selector="switch"), "ttl"
        )
        metrics = deployment.run()
        # with per-visit switching, at least some staleness is observed
        assert metrics.mean_stale_fraction >= 0.0


class TestSection3Drivers:
    def test_fig6_recovers_planted_ttl(self, tiny_context):
        result = fig6_ttl_inference(tiny_context)
        assert 50.0 <= result.inference.ttl_s <= 70.0
        assert result.rmse_at_60 < result.rmse_at_80

    def test_fig12_majority_below_ttl(self, tiny_context):
        result = fig12_dynamic_tree(tiny_context)
        assert result.daily_below_ttl_fractions
        assert min(result.daily_below_ttl_fractions) > 0.5
        assert not result.evidence.tree_likely

    def test_context_caches_trace(self, tiny_context):
        assert tiny_context.trace is tiny_context.trace
        assert tiny_context.user_trace is tiny_context.user_trace


class TestSection4Drivers:
    def test_fig16_multicast_saves_traffic(self, smoke_config):
        result = fig16_traffic_cost(smoke_config)
        for method in ("push", "invalidation", "ttl"):
            assert result.multicast_saving(method) > 0
        assert result.cost("push", "unicast") < result.cost("ttl", "unicast")
