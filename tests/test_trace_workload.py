"""Tests for the update workload generators."""

import pytest

from repro.sim import StreamRegistry
from repro.trace.workload import (
    BurstSilenceWorkload,
    DEFAULT_GAME_DURATION_S,
    DEFAULT_PLAY_WINDOWS,
    LiveGameWorkload,
    PoissonWorkload,
)


def stream(name="w", seed=6):
    return StreamRegistry(seed).stream(name)


class TestLiveGameWorkload:
    def test_exact_count_and_sorted(self):
        workload = LiveGameWorkload()
        times = workload.generate(stream())
        assert len(times) == 306
        assert times == sorted(times)
        assert all(0 <= t <= DEFAULT_GAME_DURATION_S for t in times)

    def test_updates_only_in_play_windows(self):
        workload = LiveGameWorkload()
        times = workload.generate(stream())
        for t in times:
            assert not workload.is_break(t), "update at %s falls in a break" % t

    def test_breaks_are_silent(self):
        workload = LiveGameWorkload()
        times = workload.generate(stream())
        first_break = (DEFAULT_PLAY_WINDOWS[0][1], DEFAULT_PLAY_WINDOWS[1][0])
        assert not any(first_break[0] <= t < first_break[1] for t in times)

    def test_scaled_duration_scales_windows(self):
        workload = LiveGameWorkload(n_updates=30, duration_s=876.0)
        assert workload.play_windows[0][1] == pytest.approx(306.0)
        times = workload.generate(stream())
        assert len(times) == 30
        assert max(times) <= 876.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LiveGameWorkload(n_updates=0)
        with pytest.raises(ValueError):
            LiveGameWorkload(play_windows=[(10.0, 5.0)])
        with pytest.raises(ValueError):
            LiveGameWorkload(play_windows=[(0.0, 100.0), (50.0, 200.0)])
        with pytest.raises(ValueError):
            LiveGameWorkload(burstiness=2.0)

    def test_determinism(self):
        workload = LiveGameWorkload(n_updates=50)
        assert workload.generate(stream(seed=9)) == workload.generate(stream(seed=9))
        assert workload.generate(stream(seed=9)) != workload.generate(stream(seed=10))

    def test_active_time(self):
        workload = LiveGameWorkload()
        expected = sum(b - a for a, b in DEFAULT_PLAY_WINDOWS)
        assert workload.active_time_s == pytest.approx(expected)


class TestPoissonWorkload:
    def test_count_close_to_expectation(self):
        workload = PoissonWorkload(rate_per_s=0.1, duration_s=10000.0)
        times = workload.generate(stream())
        assert 800 < len(times) < 1200
        assert times == sorted(times)

    def test_respects_bounds(self):
        workload = PoissonWorkload(rate_per_s=1.0, duration_s=50.0, start_s=100.0)
        times = workload.generate(stream())
        assert all(100.0 <= t < 150.0 for t in times)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonWorkload(rate_per_s=0, duration_s=10)


class TestBurstSilenceWorkload:
    def test_total_count(self):
        workload = BurstSilenceWorkload(n_bursts=5, updates_per_burst=7)
        times = workload.generate(stream())
        assert len(times) == 35
        assert times == sorted(times)

    def test_bursts_separated_by_silence(self):
        workload = BurstSilenceWorkload(
            n_bursts=4, updates_per_burst=10, burst_gap_mean_s=1.0, silence_mean_s=1000.0
        )
        times = workload.generate(stream())
        gaps = [b - a for a, b in zip(times, times[1:])]
        large = [g for g in gaps if g > 100.0]
        # at least the inter-burst gaps should be large
        assert len(large) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstSilenceWorkload(n_bursts=0)
        with pytest.raises(ValueError):
            BurstSilenceWorkload(burst_gap_mean_s=0)
