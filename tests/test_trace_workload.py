"""Tests for the update workload generators."""

import pytest

from repro.sim import StreamRegistry
from repro.trace.workload import (
    AuctionWorkload,
    BurstSilenceWorkload,
    DEFAULT_GAME_DURATION_S,
    DEFAULT_PLAY_WINDOWS,
    FlashSaleWorkload,
    LiveGameWorkload,
    PoissonWorkload,
)


def stream(name="w", seed=6):
    return StreamRegistry(seed).stream(name)


class TestLiveGameWorkload:
    def test_exact_count_and_sorted(self):
        workload = LiveGameWorkload()
        times = workload.generate(stream())
        assert len(times) == 306
        assert times == sorted(times)
        assert all(0 <= t <= DEFAULT_GAME_DURATION_S for t in times)

    def test_updates_only_in_play_windows(self):
        workload = LiveGameWorkload()
        times = workload.generate(stream())
        for t in times:
            assert not workload.is_break(t), "update at %s falls in a break" % t

    def test_breaks_are_silent(self):
        workload = LiveGameWorkload()
        times = workload.generate(stream())
        first_break = (DEFAULT_PLAY_WINDOWS[0][1], DEFAULT_PLAY_WINDOWS[1][0])
        assert not any(first_break[0] <= t < first_break[1] for t in times)

    def test_scaled_duration_scales_windows(self):
        workload = LiveGameWorkload(n_updates=30, duration_s=876.0)
        assert workload.play_windows[0][1] == pytest.approx(306.0)
        times = workload.generate(stream())
        assert len(times) == 30
        assert max(times) <= 876.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LiveGameWorkload(n_updates=0)
        with pytest.raises(ValueError):
            LiveGameWorkload(play_windows=[(10.0, 5.0)])
        with pytest.raises(ValueError):
            LiveGameWorkload(play_windows=[(0.0, 100.0), (50.0, 200.0)])
        with pytest.raises(ValueError):
            LiveGameWorkload(burstiness=2.0)

    def test_determinism(self):
        workload = LiveGameWorkload(n_updates=50)
        assert workload.generate(stream(seed=9)) == workload.generate(stream(seed=9))
        assert workload.generate(stream(seed=9)) != workload.generate(stream(seed=10))

    def test_active_time(self):
        workload = LiveGameWorkload()
        expected = sum(b - a for a, b in DEFAULT_PLAY_WINDOWS)
        assert workload.active_time_s == pytest.approx(expected)


class TestPoissonWorkload:
    def test_count_close_to_expectation(self):
        workload = PoissonWorkload(rate_per_s=0.1, duration_s=10000.0)
        times = workload.generate(stream())
        assert 800 < len(times) < 1200
        assert times == sorted(times)

    def test_respects_bounds(self):
        workload = PoissonWorkload(rate_per_s=1.0, duration_s=50.0, start_s=100.0)
        times = workload.generate(stream())
        assert all(100.0 <= t < 150.0 for t in times)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonWorkload(rate_per_s=0, duration_s=10)


class TestBurstSilenceWorkload:
    def test_total_count(self):
        workload = BurstSilenceWorkload(n_bursts=5, updates_per_burst=7)
        times = workload.generate(stream())
        assert len(times) == 35
        assert times == sorted(times)

    def test_bursts_separated_by_silence(self):
        workload = BurstSilenceWorkload(
            n_bursts=4, updates_per_burst=10, burst_gap_mean_s=1.0, silence_mean_s=1000.0
        )
        times = workload.generate(stream())
        gaps = [b - a for a, b in zip(times, times[1:])]
        large = [g for g in gaps if g > 100.0]
        # at least the inter-burst gaps should be large
        assert len(large) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstSilenceWorkload(n_bursts=0)
        with pytest.raises(ValueError):
            BurstSilenceWorkload(burst_gap_mean_s=0)


class TestFlashSaleWorkload:
    def test_sale_window_is_denser(self):
        workload = FlashSaleWorkload(
            duration_s=7200.0,
            sale_start_s=3600.0,
            sale_duration_s=900.0,
            base_rate_per_s=1.0 / 300.0,
            sale_rate_multiplier=60.0,
        )
        times = workload.generate(stream())
        in_sale = [t for t in times if 3600.0 <= t < 4500.0]
        before = [t for t in times if t < 3600.0]
        assert len(in_sale) / 900.0 > 10 * max(1, len(before)) / 3600.0
        assert times == sorted(times)
        assert all(0.0 <= t < 7200.0 for t in times)

    def test_rate_at_piecewise(self):
        workload = FlashSaleWorkload(
            sale_start_s=100.0, sale_duration_s=50.0, duration_s=1000.0,
            base_rate_per_s=0.01, sale_rate_multiplier=10.0,
        )
        assert workload.rate_at(50.0) == pytest.approx(0.01)
        assert workload.rate_at(120.0) == pytest.approx(0.1)
        assert workload.rate_at(150.0) == pytest.approx(0.01)

    def test_rejects_nonpositive_durations(self):
        with pytest.raises(ValueError, match="duration_s must be positive, got 0"):
            FlashSaleWorkload(duration_s=0.0, sale_start_s=0.0)
        with pytest.raises(ValueError, match="duration_s must be positive, got -1"):
            FlashSaleWorkload(duration_s=-1.0, sale_start_s=0.0)
        with pytest.raises(
            ValueError, match="sale_duration_s must be positive"
        ):
            FlashSaleWorkload(sale_duration_s=0.0)

    def test_rejects_sale_outside_horizon(self):
        with pytest.raises(
            ValueError, match=r"sale_start_s must be within \[0, duration_s"
        ):
            FlashSaleWorkload(duration_s=100.0, sale_start_s=200.0)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError, match="base_rate_per_s must be positive"):
            FlashSaleWorkload(base_rate_per_s=0.0)
        with pytest.raises(ValueError, match="sale_rate_multiplier must be >= 1"):
            FlashSaleWorkload(sale_rate_multiplier=0.5)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_nonfinite_duration(self, bad):
        # A non-finite horizon would make generate() loop forever.
        with pytest.raises(ValueError, match="duration_s must be finite"):
            FlashSaleWorkload(duration_s=bad)

    @pytest.mark.parametrize(
        "knob",
        ["sale_start_s", "sale_duration_s", "base_rate_per_s",
         "sale_rate_multiplier"],
    )
    def test_rejects_nonfinite_knobs(self, knob):
        with pytest.raises(ValueError, match="%s must be finite" % knob):
            FlashSaleWorkload(**{knob: float("nan")})

    def test_determinism(self):
        workload = FlashSaleWorkload()
        assert workload.generate(stream(seed=3)) == workload.generate(stream(seed=3))


class TestAuctionWorkload:
    def test_sniping_accelerates(self):
        workload = AuctionWorkload(
            duration_s=3600.0, base_rate_per_s=0.002, closing_rate_per_s=0.5
        )
        times = workload.generate(stream())
        first_half = [t for t in times if t < 1800.0]
        second_half = [t for t in times if t >= 1800.0]
        assert len(second_half) > len(first_half)
        assert times == sorted(times)

    def test_rate_at_ramps_linearly(self):
        workload = AuctionWorkload(
            duration_s=100.0, base_rate_per_s=0.1, closing_rate_per_s=0.3
        )
        assert workload.rate_at(0.0) == pytest.approx(0.1)
        assert workload.rate_at(50.0) == pytest.approx(0.2)
        assert workload.rate_at(100.0) == pytest.approx(0.3)
        assert workload.rate_at(1000.0) == pytest.approx(0.3)  # clamped

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError, match="duration_s must be positive, got 0"):
            AuctionWorkload(duration_s=0.0)
        with pytest.raises(
            ValueError, match="duration_s must be positive, got -5"
        ):
            AuctionWorkload(duration_s=-5.0)

    def test_rejects_bad_rate_ordering(self):
        with pytest.raises(
            ValueError,
            match="need 0 < base_rate_per_s <= closing_rate_per_s, "
            "got base_rate_per_s=0.5",
        ):
            AuctionWorkload(base_rate_per_s=0.5, closing_rate_per_s=0.1)
        with pytest.raises(ValueError, match="base_rate_per_s=0.0,"):
            AuctionWorkload(base_rate_per_s=0.0)

    @pytest.mark.parametrize(
        "knob", ["duration_s", "base_rate_per_s", "closing_rate_per_s"]
    )
    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_nonfinite_knobs(self, knob, bad):
        # NaN/inf knobs previously slipped past validation and made
        # generate() spin forever (t >= nan is never true).
        with pytest.raises(ValueError, match="%s must be finite" % knob):
            AuctionWorkload(**{knob: bad})

    def test_determinism(self):
        workload = AuctionWorkload()
        assert workload.generate(stream(seed=3)) == workload.generate(stream(seed=3))
