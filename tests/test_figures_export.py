"""Smoke + shape tests for the whole-figure CSV exporter and the
EXPERIMENTS.md report generator (at micro scale)."""

import csv
import io
import json
import os

import pytest

from repro.experiments.config import smoke_scale
from repro.experiments.figures import export_all
from repro.experiments.report import ReportScale, generate_report
from repro.experiments.section5 import section5_config
from repro.trace.synthesize import SynthesisConfig


@pytest.fixture(scope="module")
def micro_scale():
    """A report scale small enough for the test suite."""
    return ReportScale(
        section3=SynthesisConfig(
            n_servers=40,
            n_days=2,
            session_length_s=3000.0,
            updates_per_day_low=12,
            updates_per_day_high=50,
        ),
        section4=smoke_scale(users_per_server=3),
        section5=section5_config(smoke_scale()),
        sweep=smoke_scale(n_updates=10, game_duration_s=300.0),
        n_users=16,
        label="micro (test scale)",
    )


class TestExportAll:
    def test_writes_every_figure_csv(self, micro_scale, tmp_path):
        out_dir = str(tmp_path / "figures")
        written = export_all(out_dir, micro_scale)
        names = sorted(os.path.basename(path) for path in written)
        assert "fig03_inconsistency_cdf.csv" in names
        assert "fig14_unicast_server_lags.csv" in names
        assert "fig17_cost_vs_ttl.csv" in names
        assert "fig22a_update_messages.csv" in names
        assert "fig24_stale_observations.csv" in names
        assert "figures.json" in names
        assert len(names) == len(set(names)) >= 10
        for path in written:
            if path.endswith(".json"):
                continue
            with open(path) as handle:
                rows = list(csv.reader(handle))
            assert len(rows) >= 2          # header + data
            assert all(len(r) == len(rows[0]) for r in rows)

    def test_manifest_covers_every_figure(self, micro_scale, tmp_path):
        out_dir = str(tmp_path / "figures")
        written = export_all(out_dir, micro_scale)
        manifest_path = next(p for p in written if p.endswith("figures.json"))
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert set(manifest) == {
            "fig3", "fig5", "fig6", "fig14", "fig15", "fig16", "fig17",
            "fig20", "fig22a", "fig24",
        }
        for name, entry in manifest.items():
            assert entry["name"] == name
            assert "series" in entry and "summary" in entry
        # sweeps carry their run statistics
        assert manifest["fig17"]["stats"]["n_specs"] == 6

    def test_cdf_csv_is_monotone(self, micro_scale, tmp_path):
        out_dir = str(tmp_path / "figures")
        written = export_all(out_dir, micro_scale)
        cdf_path = next(p for p in written if p.endswith("fig03_inconsistency_cdf.csv"))
        with open(cdf_path) as handle:
            rows = list(csv.reader(handle))[1:]
        ys = [float(y) for _, y in rows]
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)


class TestReportGeneration:
    def test_micro_report_contains_every_figure(self, micro_scale):
        log = io.StringIO()
        markdown = generate_report(micro_scale, log=log)
        for figure in (
            "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8",
            "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 14", "Fig. 15",
            "Fig. 16", "Fig. 17", "Fig. 18", "Fig. 19", "Fig. 20",
            "Fig. 22a", "Fig. 22b", "Fig. 23", "Fig. 24",
        ):
            assert figure in markdown, "missing %s" % figure
        assert "micro (test scale)" in markdown
        assert "paper" in markdown
        assert "## Run statistics" in markdown
        # progress lines went to the log, not the report
        assert "[report]" in log.getvalue()
        assert "[report]" not in markdown
