"""Shared fixtures for the test suite."""

import pytest

from repro.experiments.config import smoke_scale
from repro.experiments.section3 import Section3Context
from repro.sim import Environment, StreamRegistry
from repro.trace.synthesize import SynthesisConfig, TraceSynthesizer


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def streams():
    return StreamRegistry(12345)


@pytest.fixture(scope="session")
def tiny_trace():
    """A small synthetic trace shared (read-only!) across tests."""
    config = SynthesisConfig(n_servers=60, n_days=3, session_length_s=3000.0)
    return TraceSynthesizer(config, master_seed=7).synthesize()


@pytest.fixture(scope="session")
def tiny_context():
    """A Section 3 context at CI scale, shared (read-only!) across tests."""
    return Section3Context.small(seed=3)


@pytest.fixture
def smoke_config():
    return smoke_scale()
