"""Tests for heartbeat-driven multicast-tree maintenance."""

import pytest

from repro.cdn import LiveContent, ProviderActor, ServerActor
from repro.consistency import (
    MulticastTreeInfrastructure,
    PushPolicy,
    TreeMaintainer,
)
from repro.network import NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry


def build_tree_world(n_servers=16, updates=None, seed=51):
    env = Environment()
    streams = StreamRegistry(seed)
    topology = TopologyBuilder(env, streams).build(n_servers=n_servers, users_per_server=0)
    fabric = NetworkFabric(env, streams=streams)
    update_times = updates if updates is not None else [30.0 * i for i in range(1, 20)]
    content = LiveContent("game", update_times=list(update_times))
    provider = ProviderActor(env, topology.provider, fabric, content)
    servers = [
        ServerActor(env, node, fabric, content, policy=PushPolicy())
        for node in topology.servers
    ]
    tree = MulticastTreeInfrastructure(fabric, arity=2)
    tree.wire(provider, servers)
    provider.use_push()
    for server in servers:
        server.start()
    return env, fabric, content, provider, servers, tree


class TestValidation:
    def test_bad_heartbeat(self):
        env, fabric, content, provider, servers, tree = build_tree_world()
        with pytest.raises(ValueError):
            TreeMaintainer(env, fabric, tree, servers, heartbeat_s=0)
        with pytest.raises(ValueError):
            TreeMaintainer(env, fabric, tree, servers, heartbeat_s=30, failure_timeout_s=10)


class TestHeartbeats:
    def test_heartbeat_traffic_accounted(self):
        env, fabric, content, provider, servers, tree = build_tree_world()
        maintainer = TreeMaintainer(env, fabric, tree, servers, heartbeat_s=20.0)
        maintainer.start()
        maintainer.start()  # idempotent
        env.run(until=205.0)
        # 10 rounds x one heartbeat per server with a parent
        assert maintainer.heartbeats_sent == 10 * len(servers)
        env.run(until=210.0)
        assert maintainer.maintenance_messages() >= maintainer.heartbeats_sent * 0.9

    def test_overhead_scales_with_heartbeat_rate(self):
        def run(heartbeat):
            env, fabric, content, provider, servers, tree = build_tree_world()
            maintainer = TreeMaintainer(env, fabric, tree, servers, heartbeat_s=heartbeat)
            maintainer.start()
            env.run(until=600.0)
            return maintainer.heartbeats_sent

        fast = run(10.0)
        slow = run(60.0)
        assert fast > 4 * slow


class TestFailureRecovery:
    def test_dead_parent_detected_and_repaired(self):
        env, fabric, content, provider, servers, tree = build_tree_world()
        maintainer = TreeMaintainer(
            env, fabric, tree, servers, heartbeat_s=10.0, failure_timeout_s=25.0
        )
        maintainer.start()
        victim = max(servers, key=lambda s: len(tree.children_of(s)))
        orphans = tree.children_of(victim)
        assert orphans

        def killer(env):
            yield env.timeout(100.0)
            victim.node.is_up = False

        env.process(killer(env))
        env.run(until=600.0)
        assert maintainer.repairs >= 1
        for orphan in orphans:
            assert tree.parent_of(orphan) is not victim
        # survivors converged to the last update despite the failure
        final = content.last_version
        for server in servers:
            if server is victim:
                continue
            assert server.cached_version == final

    def test_faster_heartbeat_recovers_sooner(self):
        def staleness_after_failure(heartbeat):
            env, fabric, content, provider, servers, tree = build_tree_world(
                updates=[20.0 * i for i in range(1, 28)]
            )
            maintainer = TreeMaintainer(
                env, fabric, tree, servers,
                heartbeat_s=heartbeat, failure_timeout_s=2.0 * heartbeat,
            )
            maintainer.start()
            victim = max(servers, key=lambda s: len(tree.children_of(s)))
            orphans = tree.children_of(victim)

            def killer(env):
                yield env.timeout(100.0)
                victim.node.is_up = False

            env.process(killer(env))
            env.run(until=560.0)
            from repro.metrics.consistency import mean_update_lag

            lags = [
                mean_update_lag(
                    content, o.apply_log(), window=(100.0, 540.0), censor_at=560.0
                )
                for o in orphans
            ]
            return sum(lags) / len(lags)

        assert staleness_after_failure(10.0) < staleness_after_failure(80.0)

    def test_no_failures_no_repairs(self):
        env, fabric, content, provider, servers, tree = build_tree_world()
        maintainer = TreeMaintainer(env, fabric, tree, servers, heartbeat_s=15.0)
        maintainer.start()
        env.run(until=400.0)
        assert maintainer.repairs == 0
