"""REP005 drift fixture: the manifest lists FabricCounters here, but the
class was renamed -- the manifest itself must be flagged as stale."""


class RenamedCounters:
    __slots__ = ("messages_sent",)

    def __init__(self):
        self.messages_sent = 0
