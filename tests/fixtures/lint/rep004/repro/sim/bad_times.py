"""REP004 positive fixture: exact equality on simulated-time floats."""


def check(env, deadline, total_time):
    if env.now == deadline:
        return True
    if total_time != 0:
        return False
    return env.now != 3.0
