"""REP004 negative fixture: tolerance helpers and ordering tests."""

from .simtime import is_zero_duration, times_equal


def check(env, deadline, total_time):
    if times_equal(env.now, deadline):
        return True
    if is_zero_duration(total_time):
        return False
    return env.now <= deadline
