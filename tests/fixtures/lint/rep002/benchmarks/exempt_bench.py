"""REP002 exemption fixture: benchmarks exist to read the wall clock."""

import time


def measure(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started
