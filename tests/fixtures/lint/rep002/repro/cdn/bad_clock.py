"""REP002 positive fixture: wall-clock reads inside simulation code."""

import datetime
import time
from time import perf_counter


def stamp():
    started = time.time()
    tick = perf_counter()
    today = datetime.datetime.now()
    return started, tick, today
