"""REP002 negative fixture: simulated time only."""


def stamp(env):
    return env.now
