"""REP002 exemption fixture: the runner measures real wall time."""

import time


def wall_elapsed(started):
    return time.perf_counter() - started
