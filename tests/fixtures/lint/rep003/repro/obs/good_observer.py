"""REP003 negative fixture: a purely observational counter."""


class CountingTracer:
    enabled = True

    def __init__(self):
        self.counts = {}

    def emit(self, time, kind, node, **detail):
        self.counts[kind] = self.counts.get(kind, 0) + 1
