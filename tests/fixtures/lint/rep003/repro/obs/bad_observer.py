"""REP003 positive fixture: an observer that schedules and draws RNG."""


class MeddlingTracer:
    enabled = True

    def emit(self, env, stream, kind, node):
        env.schedule(env.event())
        env.timeout(1.0)
        return stream.random()
