"""NOT imported from repro.obs: scheduling here is fine (REP003 only
polices code reachable from the observability layer)."""


def legitimate_actor(env):
    env.timeout(2.0)
    return env.process(iter(()))
