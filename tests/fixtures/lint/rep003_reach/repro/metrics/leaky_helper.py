"""Imported from repro.obs, so the purity closure must reach it."""


def perturb(env):
    env.timeout(0.5)
    return env.now
