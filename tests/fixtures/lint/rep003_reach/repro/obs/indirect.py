"""REP003 reachability fixture: the impurity hides one import away."""

from ..metrics.leaky_helper import perturb


def snapshot(env):
    return perturb(env)
