"""REP006 negative fixture: kw-only configs and a non-config dataclass."""

from dataclasses import dataclass


@dataclass(kw_only=True)
class GoodConfig:
    n_servers: int = 10


@dataclass
class PlainRecord:
    value: float = 0.0
