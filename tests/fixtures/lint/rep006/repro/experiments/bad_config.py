"""REP006 positive fixture: a positional config dataclass."""

from dataclasses import dataclass


@dataclass
class SweepConfig:
    n_servers: int = 10
    seed: int = 0


@dataclass(frozen=True)
class FrozenButPositionalConfig:
    ttl_s: float = 10.0
