"""The imported leaf itself is pure."""


def read(env):
    return env.now
