"""Ancestor package: runs at import of any submodule -- and schedules."""


def _warm(env):
    env.schedule(env.event())
