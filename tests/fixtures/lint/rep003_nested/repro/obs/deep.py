"""Importing a nested module executes its ancestor packages too."""

from ..metrics.inner_pkg import leaf


def snapshot(env):
    return leaf.read(env)
