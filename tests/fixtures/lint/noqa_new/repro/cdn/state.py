"""noqa on REP010."""

_HITS = {}


def record(key):
    _HITS[key] = True  # repro: noqa REP010 -- fixture: suppressed
    return _HITS[key]
