"""noqa on REP009."""

from repro.sim.timers import CallbackLane


class NoqaCohort:
    def __init__(self, env):
        self.lane = CallbackLane(env, self._expire, self._is_dead)

    def _expire(self, payload):
        self.lane.head = 0  # repro: noqa REP009 -- fixture: suppressed

    def _is_dead(self, payload):
        return payload is None
