"""noqa on REP007, including a line carrying two different codes."""

import random


def fan_out(env, members):
    for member in set(members):  # repro: noqa REP007 -- fixture: suppressed
        env.schedule(member)
    for member in set(members):  # repro: noqa REP002 -- wrong code: still flagged
        env.schedule(member)


def draws(jitter):
    return [random.random() for node in jitter.values()]  # repro: noqa REP001,REP007 -- one line, two codes
