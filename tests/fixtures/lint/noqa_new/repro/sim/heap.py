"""noqa on REP008."""

from heapq import heappush


def arm(queue, deadline, event):
    heappush(queue, (deadline, event))  # repro: noqa REP008 -- fixture: suppressed
