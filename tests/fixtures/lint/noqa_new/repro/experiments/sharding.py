"""Seed module making repro.cdn.state reachable for REP010."""

from ..cdn import state


def shard(key):
    return state.record(key)
