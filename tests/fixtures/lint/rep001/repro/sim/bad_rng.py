"""REP001 positive fixture: module-level RNG inside a sim package."""

import random
from random import choice


def draw_badly():
    jitter = random.random()
    pick = random.randint(0, 10)
    other = choice([1, 2, 3])
    return jitter, pick, other
