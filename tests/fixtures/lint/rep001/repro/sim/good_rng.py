"""REP001 negative fixture: seeded instances and threaded streams only."""

import random


def make_seeded_stream(seed):
    return random.Random(seed)


def draw_properly(stream):
    return stream.uniform(0.0, 1.0)
