"""REP001 scope fixture: module RNG outside sim/cdn/consistency/network
is not this rule's business (REP001 is scoped, not repo-wide)."""

import random


def sample_for_plotting():
    return random.random()
