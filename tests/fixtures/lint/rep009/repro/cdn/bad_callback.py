"""REP009 positives: lane callbacks that corrupt their own lane."""

from repro.sim.timers import CallbackLane


class MutatingCohort:
    def __init__(self, env):
        self.lane = CallbackLane(env, self._expire, self._is_dead)

    def _expire(self, payload):
        self.lane.deadlines.append(0.0)  # mid-sweep push bypassing push()

    def _is_dead(self, payload):
        return payload is None


class TransitiveCohort:
    def __init__(self, env):
        self.lane = CallbackLane(env, self._expire, self._is_dead)

    def _expire(self, payload):
        self._requeue(payload)

    def _requeue(self, payload):
        self.lane.head = 0  # reached through a same-class helper

    def _is_dead(self, payload):
        return payload is None
