"""REP009 negatives: callbacks using the reentrancy-safe lane API."""

from repro.sim.timers import CallbackLane


class PushingCohort:
    def __init__(self, env):
        self.env = env
        self.lane = CallbackLane(env, self._expire, self._is_dead)

    def _expire(self, payload):
        payload.fire()
        # Re-arming through push() is the supported reentrant operation.
        self.lane.push(self.env.now + payload.delay, payload)

    def _is_dead(self, payload):
        return payload.done


class ReadingCohort:
    def __init__(self, env):
        self.lane = CallbackLane(env, self._expire, self._is_dead)

    def _expire(self, payload):
        if self.lane.pending:  # reads are fine
            payload.fire()

    def _is_dead(self, payload):
        return payload.done
