"""REP007 positives: unordered iteration feeding order-sensitive sinks."""


def schedule_members(env, members):
    pending = set(members)
    for member in pending:  # set iteration: always order-dependent
        env.schedule(member)


def drain(env, waiting):
    for node, event in waiting.items():  # dict view + scheduling sink
        env.schedule(event)


def jitter_draws(rng, jitter_by_node):
    return [rng.random() for node in jitter_by_node.values()]  # RNG sink
