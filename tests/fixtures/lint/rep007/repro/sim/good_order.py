"""REP007 negatives: sorted iteration, sink-free view loops, set algebra."""


def schedule_sorted(env, members):
    for member in sorted(members):  # total order restored before the sink
        env.schedule(member)


def tally(counts, items):
    total = 0
    for key in items.keys():  # dict view, but the body has no sink
        total += counts[key]
    return total


def dedupe(values):
    seen = set(values)
    return {value for value in seen}  # set -> set: order cannot leak
