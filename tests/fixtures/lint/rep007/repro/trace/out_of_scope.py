"""REP007 scope check: repro/obs/ is not an ordered-execution area."""


def emit_all(env, members):
    for member in set(members):
        env.schedule(member)
