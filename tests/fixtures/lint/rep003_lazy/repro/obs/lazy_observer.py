"""An observer reaching a scheduling helper through a lazy import."""


class LazyTracer:
    enabled = True

    def emit(self, env, kind, node, **detail):
        from ..metrics import lazy_helper

        lazy_helper.poke(env)
