"""Reachable only through a function-local import -- still checked."""


def poke(env):
    env.schedule(env.event())
