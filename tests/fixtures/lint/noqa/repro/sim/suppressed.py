"""noqa fixture: matching codes suppress, non-matching codes do not."""

import random


def draws(env, deadline):
    a = random.random()  # repro: noqa REP001 -- fixture: suppressed on purpose
    b = random.random()  # repro: noqa REP002 -- wrong code: still flagged
    c = random.random()  # repro: noqa -- bare directive suppresses everything
    if env.now == deadline:  # repro: noqa REP004, REP001 -- list form
        a += 1
    return a, b, c
