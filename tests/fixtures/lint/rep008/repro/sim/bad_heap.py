"""REP008 positives: heap keys without a total-order tiebreak."""

from heapq import heappush


def arm(queue, deadline, event):
    heappush(queue, (deadline, event))  # ties compare the event objects


def arm_by_id(queue, deadline, seq, event):
    heappush(queue, (deadline, id(event), event))  # id() is run-dependent
