"""REP008 negatives: every key ends in a total-order tiebreak."""

from heapq import heappush


def arm(queue, deadline, seq, event):
    heappush(queue, (deadline, seq, event))


def arm_urgent(queue, deadline, env, event):
    heappush(queue, (deadline, 0, env.next_eid(), event))


def arm_perturbed(queue, deadline, rand, seq, event):
    heappush(queue, (deadline, (rand, seq), event))
