"""REP005 positive fixture: manifest-listed hot class without __slots__."""

from dataclasses import dataclass


@dataclass
class Message:
    kind: str
    size_kb: float
