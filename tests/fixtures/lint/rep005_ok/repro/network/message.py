"""REP005 negative fixture: the slotted form the manifest demands."""

from dataclasses import dataclass


@dataclass(slots=True)
class Message:
    kind: str
    size_kb: float
