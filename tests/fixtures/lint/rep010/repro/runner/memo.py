"""Reachable from the seed but exempt: repro/runner/ is manifest-carved."""

_MEMO = {}


def remember(key, value):
    _MEMO[key] = value
    return value
