"""REP010 seed module: the shard planner of this miniature tree."""

from ..cdn import shared_cache
from ..runner import memo


def shard(key):
    memo.remember(key, True)
    return shared_cache.lookup(key)
