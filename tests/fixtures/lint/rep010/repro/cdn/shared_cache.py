"""REP010 positives: module-level mutables mutated at run time."""

_CACHE = {}

_TABLE = {}
_TABLE["init"] = 0  # import-time fill: identical in every process, clean

_SEQ = 0


def lookup(key):
    _CACHE[key] = True  # run-time write: shards would diverge
    return _CACHE[key]


def bump():
    global _SEQ  # run-time rebind of module state
    _SEQ += 1
    return _SEQ
