"""REP010 negative: same shape, but nothing in the seed set imports it."""

_STATE = {}


def poke():
    _STATE["x"] = 1
    return _STATE
