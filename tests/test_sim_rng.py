"""Tests for seeded random streams."""

import pytest

from repro.sim import StreamRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_distinct_masters_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRegistry:
    def test_same_name_returns_same_stream(self):
        registry = StreamRegistry(0)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_are_reproducible_across_registries(self):
        a = StreamRegistry(9).stream("s")
        b = StreamRegistry(9).stream("s")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_adding_stream_does_not_perturb_existing(self):
        registry1 = StreamRegistry(5)
        s1 = registry1.stream("alpha")
        first = s1.random()

        registry2 = StreamRegistry(5)
        registry2.stream("beta")  # extra consumer, created first
        s2 = registry2.stream("alpha")
        assert s2.random() == first

    def test_contains_and_names(self):
        registry = StreamRegistry(0)
        registry.stream("b")
        registry.stream("a")
        assert "a" in registry
        assert "c" not in registry
        assert list(registry.names()) == ["a", "b"]


class TestRandomStream:
    def test_jitter_bounds(self):
        stream = StreamRegistry(1).stream("jitter")
        for _ in range(200):
            value = stream.jitter(100.0, 0.1)
            assert 90.0 <= value <= 110.0

    def test_jitter_rejects_negative_fraction(self):
        stream = StreamRegistry(1).stream("jitter")
        with pytest.raises(ValueError):
            stream.jitter(1.0, -0.1)

    def test_bernoulli_extremes(self):
        stream = StreamRegistry(1).stream("bern")
        assert all(stream.bernoulli(1.0) for _ in range(50))
        assert not any(stream.bernoulli(0.0) for _ in range(50))

    def test_bernoulli_rate_roughly_matches(self):
        stream = StreamRegistry(1).stream("bern2")
        hits = sum(stream.bernoulli(0.3) for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    def test_uniform_within_bounds(self):
        stream = StreamRegistry(2).stream("u")
        for _ in range(100):
            assert 3.0 <= stream.uniform(3.0, 7.0) <= 7.0

    def test_choice_and_sample(self):
        stream = StreamRegistry(3).stream("c")
        population = list(range(10))
        assert stream.choice(population) in population
        sample = stream.sample(population, 4)
        assert len(sample) == 4
        assert len(set(sample)) == 4
