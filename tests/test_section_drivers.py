"""Smoke + shape tests for the figure drivers not covered elsewhere."""

import pytest

from repro.experiments import (
    FigureResult,
    fig3_inconsistency_cdf,
    fig4_user_perspective,
    fig5_inner_cluster,
    fig7_provider_inconsistency,
    fig8_distance,
    fig9_isp,
    fig10_absence,
    fig11_static_tree,
    fig12_dynamic_tree,
)
from repro.experiments.section4 import (
    fig14_unicast_inconsistency,
    fig17_cost_vs_ttl,
    fig18_invalidation_user_ttl,
)
from repro.experiments.section5 import (
    Fig22aResult,
    fig22a_update_messages,
    fig24_inconsistency_observations,
    section5_config,
)


class TestSection3Shapes:
    def test_fig3_cdf_points_monotone(self, tiny_context):
        result = fig3_inconsistency_cdf(tiny_context)
        ys = [y for _, y in result.cdf_points]
        assert ys == sorted(ys)
        assert result.n > 100

    def test_fig4_summaries_consistent(self, tiny_context):
        result = fig4_user_perspective(tiny_context, intervals=(10.0, 30.0))
        summary = result.redirect_fraction_summary
        assert 0.0 <= summary.p5 <= summary.median <= summary.p95 <= 1.0
        assert len(result.daily_inconsistent_server_fractions) == tiny_context.trace.n_days
        assert 0.0 <= result.frac_incons_at_most_2_polls <= 1.0
        assert set(result.per_interval) == {10.0, 30.0}

    def test_fig5_counts(self, tiny_context):
        result = fig5_inner_cluster(tiny_context)
        assert 0.0 <= result.frac_below_10s <= 1.0
        assert result.uniform_rmse_on_ttl >= 0.0

    def test_fig7_provider_fresh(self, tiny_context):
        result = fig7_provider_inconsistency(tiny_context)
        assert result.frac_below_10s > 0.8
        assert result.frac_above_50s < 0.1

    def test_fig8_bands_cover_servers(self, tiny_context):
        result = fig8_distance(tiny_context)
        assert len(result.band_centres_km) >= 2
        assert -1.0 <= result.pearson_r <= 1.0

    def test_fig9_cluster_results_complete(self, tiny_context):
        result = fig9_isp(tiny_context)
        for cluster in result.clusters:
            assert cluster.intra.count > 0
            assert cluster.inter.count > 0
            assert cluster.increment_mean_s == pytest.approx(
                cluster.inter.mean - cluster.intra.mean
            )

    def test_fig10_bins_sorted(self, tiny_context):
        result = fig10_absence(tiny_context)
        assert 0.0 in result.impact_by_absence_bin
        for (group, offset), value in result.around_absence.items():
            assert group > 0 and offset in (20.0, 40.0, 60.0)
            assert value >= 0.0

    def test_fig11_spreads_nonnegative(self, tiny_context):
        result = fig11_static_tree(tiny_context)
        for low, high in result.cluster_spreads.values():
            assert low <= high

    def test_fig12_fraction_bounds(self, tiny_context):
        result = fig12_dynamic_tree(tiny_context)
        assert all(0.0 <= f <= 1.0 for f in result.daily_below_ttl_fractions)


class TestSection4Drivers:
    def test_fig14_sorted_curves(self, smoke_config):
        config = smoke_config.with_(users_per_server=2)
        result = fig14_unicast_inconsistency(config)
        for method in ("push", "invalidation", "ttl"):
            curve = result.sorted_server_lags(method)
            assert curve == sorted(curve)
            assert len(curve) == config.n_servers
            users = result.sorted_user_lags(method)
            assert len(users) == config.n_servers * 2

    def test_fig17_monotone_decreasing(self, smoke_config):
        result = fig17_cost_vs_ttl(smoke_config, ttls_s=(10.0, 40.0))
        for infrastructure in ("unicast", "multicast"):
            assert result[infrastructure][10.0] > result[infrastructure][40.0]

    def test_fig18_point_fields(self, smoke_config):
        result = fig18_invalidation_user_ttl(smoke_config, user_ttls_s=(10.0, 60.0))
        for points in result.values():
            assert [p.user_ttl_s for p in points] == [10.0, 60.0]
            for point in points:
                assert point.cost_km_kb > 0
                assert point.server_lag.p5 <= point.server_lag.p95


class TestSection5Drivers:
    def test_fig22a_ordering_helper(self, smoke_config):
        config = section5_config(smoke_config)
        result = fig22a_update_messages(
            config, user_ttls_s=(20.0,), systems=("push", "ttl", "self")
        )
        assert isinstance(result, FigureResult)
        assert isinstance(result.details, Fig22aResult)
        ordering = result.ordering_at(20.0)
        assert set(ordering) == {"push", "ttl", "self"}
        assert ordering[0] == "push"  # heaviest first

    def test_fig24_switching_users_fractions(self, smoke_config):
        config = section5_config(smoke_config)
        result = fig24_inconsistency_observations(
            config, user_ttls_s=(10.0,), systems=("push", "ttl")
        )
        assert 0.0 <= result["ttl"][10.0] <= 1.0
        assert result["push"][10.0] <= result["ttl"][10.0]


class TestFigureResultUniformity:
    """Every driver returns the one FigureResult shape (satellite 1)."""

    def test_section3_drivers_return_figure_results(self, tiny_context):
        for driver in (fig3_inconsistency_cdf, fig5_inner_cluster, fig8_distance):
            result = driver(tiny_context)
            assert isinstance(result, FigureResult)
            assert result.name.startswith("fig")
            assert result.series and result.summary
            assert result.stats is None  # trace analysis runs no deployments

    def test_section4_driver_reports_run_stats(self, smoke_config):
        result = fig14_unicast_inconsistency(smoke_config)
        assert isinstance(result, FigureResult)
        assert result.stats.n_specs == 3
        assert result.stats.executed + result.stats.cache_hits == 3

    def test_to_dict_is_json_safe(self, smoke_config):
        import json

        result = fig17_cost_vs_ttl(smoke_config, ttls_s=(10.0, 40.0))
        data = result.to_dict()
        round_tripped = json.loads(json.dumps(data))
        assert round_tripped["name"] == "fig17"
        assert set(round_tripped["series"]) == {"unicast", "multicast"}
        assert round_tripped["stats"]["n_specs"] == 4

    def test_attribute_fallthrough_and_mapping(self, tiny_context):
        result = fig3_inconsistency_cdf(tiny_context)
        # mapping protocol reads series; attributes reach the details
        assert "cdf_points" in result
        assert result["cdf_points"] == list(result.details.cdf_points)
        with pytest.raises(AttributeError):
            result.no_such_attribute
