"""Cross-module integration tests.

The most important one cross-validates the two Section 3 paths: the
fast generative trace model and a genuine discrete-event simulation of
the same system (lazy-TTL unicast CDN + periodic crawler) must agree on
the headline statistic (mean inconsistency ~ TTL/2 + delivery noise).
"""

import numpy as np

from repro.cdn import (
    EndUserActor,
    FixedSelector,
    LiveContent,
    ProviderActor,
    ServerActor,
)
from repro.consistency import TTLPolicy, UnicastInfrastructure
from repro.experiments import build_system
from repro.experiments.section5 import section5_config
from repro.metrics.consistency import update_lags
from repro.network import NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry
from repro.trace import SynthesisConfig, TraceSynthesizer, all_inconsistencies
from repro.trace.records import CdnTrace, DayTrace, PollSeries, ServerInfo
from repro.trace.workload import LiveGameWorkload


def run_des_crawl(n_servers=20, ttl=60.0, horizon=3000.0, seed=31):
    """A DES CDN with lazy TTL + a 10 s crawler per server; returns a
    CdnTrace built from what the crawler observed."""
    env = Environment()
    streams = StreamRegistry(seed)
    topology = TopologyBuilder(env, streams).build(n_servers=n_servers, users_per_server=1)
    fabric = NetworkFabric(env, streams=streams)
    workload = LiveGameWorkload(n_updates=40, duration_s=horizon * 0.9)
    content = LiveContent(
        "game", update_times=workload.generate(streams.stream("updates"))
    )
    provider = ProviderActor(env, topology.provider, fabric, content)
    servers = [
        ServerActor(
            env, node, fabric, content,
            policy=TTLPolicy(ttl, stream=streams.stream("phase"), eager=False),
        )
        for node in topology.servers
    ]
    UnicastInfrastructure().wire(provider, servers)
    # Random crawler start offsets desynchronise the servers' lazy-TTL
    # refresh phases, exactly as organic demand does in the real CDN.
    offsets = streams.stream("crawler.offsets")
    crawlers = [
        EndUserActor(
            env, topology.users[i][0], fabric, content,
            FixedSelector(servers[i].node), user_ttl_s=10.0,
            start_offset_s=offsets.uniform(0.0, ttl),
        )
        for i in range(n_servers)
    ]
    for server in servers:
        server.start()
    for crawler in crawlers:
        crawler.start()
    env.run(until=horizon)

    day = DayTrace(
        day_index=0,
        session_length_s=horizon,
        update_times=np.asarray(content.update_times),
    )
    infos = {}
    for server, crawler in zip(servers, crawlers):
        sid = server.node.node_id
        times = np.asarray([obs.time for obs in crawler.observations])
        versions = np.maximum.accumulate(
            np.asarray([obs.version for obs in crawler.observations], dtype=np.int64)
        )
        day.polls[sid] = PollSeries(times=times, versions=versions)
        infos[sid] = ServerInfo(
            sid, server.node.point, server.node.isp.name, server.node.city_name or "?",
            topology.provider.distance_km(server.node),
        )
    return CdnTrace(servers=infos, days=[day], poll_interval_s=10.0, ttl_s=ttl)


class TestDesVsGenerativeModel:
    """The generative trace model and the DES agree on the TTL statistic."""

    def test_des_crawl_mean_matches_ttl_half(self):
        trace = run_des_crawl()
        lengths = all_inconsistencies(trace)
        assert lengths.size > 50
        # TTL/2 = 30 s, minus crawler granularity, plus delivery noise
        assert 18.0 < lengths.mean() < 40.0

    def test_generative_model_same_band(self):
        config = SynthesisConfig(
            n_servers=20,
            n_days=1,
            session_length_s=3000.0,
            updates_per_day_low=40,
            updates_per_day_high=40,
            # disable the extra noise sources so the comparison isolates
            # the TTL mechanism itself
            absence_prob_per_day=0.0,
            congested_isp_prob=0.0,
            clean_isp_severity_low_s=0.0,
            clean_isp_severity_high_s=1e-9,
            provider_staleness_mean_s=1e-9,
        )
        trace = TraceSynthesizer(config, master_seed=31).synthesize()
        lengths = all_inconsistencies(trace)
        assert 18.0 < lengths.mean() < 40.0

    def test_both_paths_recover_the_ttl(self):
        from repro.trace import infer_ttl

        des_trace = run_des_crawl(n_servers=30, horizon=4000.0)
        des_ttl = infer_ttl(all_inconsistencies(des_trace)).ttl_s
        assert 48.0 <= des_ttl <= 72.0


class TestSection5EndToEnd:
    def test_hat_beats_unicast_ttl_on_provider_load(self, smoke_config):
        config = section5_config(smoke_config)
        ttl_metrics = build_system(config, "ttl").run()
        hat_metrics = build_system(config, "hat").run()
        assert (
            hat_metrics.provider_response_messages
            < ttl_metrics.provider_response_messages
        )

    def test_self_adaptive_saves_messages_vs_ttl(self, smoke_config):
        config = section5_config(smoke_config)
        ttl_metrics = build_system(config, "ttl").run()
        self_metrics = build_system(config, "self").run()
        assert self_metrics.response_messages <= ttl_metrics.response_messages

    def test_push_keeps_servers_freshest(self, smoke_config):
        config = section5_config(smoke_config)
        lags = {
            system: build_system(config, system).run().mean_server_lag
            for system in ("push", "ttl", "hat")
        }
        assert lags["push"] < lags["hat"] < lags["ttl"]


class TestUserLagConsistency:
    def test_user_never_sees_version_before_it_exists(self, smoke_config):
        deployment = build_system(smoke_config, "push")
        metrics = deployment.run()
        content = deployment.content
        for user in deployment.users:
            for obs in user.observations:
                assert obs.version <= content.version_at(obs.time)

    def test_server_apply_log_matches_update_lag_metric(self, smoke_config):
        deployment = build_system(smoke_config, "push")
        deployment.run()
        content = deployment.content
        server = deployment.servers[0]
        lags = update_lags(content, server.apply_log())
        # push delivery is sub-second at smoke scale
        assert all(lag < 2.0 for lag in lags)
