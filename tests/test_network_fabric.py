"""Tests for nodes, messages, ISPs and the network fabric."""

import pytest

from repro.network import (
    FabricParams,
    ISPRegistry,
    InterISPModel,
    Message,
    MessageKind,
    NetworkFabric,
    NetworkNode,
    TopologyBuilder,
)
from repro.network.geo import GeoPoint
from repro.sim import Environment, StreamRegistry


def make_nodes(env, streams, n=2):
    topology = TopologyBuilder(env, streams).build(n_servers=n, users_per_server=0)
    return topology.provider, topology.servers


class TestMessageTaxonomy:
    def test_update_kinds_are_consistency(self):
        message = Message(MessageKind.PUSH_UPDATE, None, None, 1.0)
        assert message.is_update
        assert message.is_consistency
        assert not message.is_light

    def test_light_kinds(self):
        message = Message(MessageKind.POLL, None, None, 1.0)
        assert message.is_light and message.is_consistency and not message.is_update

    def test_content_traffic_is_not_consistency(self):
        message = Message(MessageKind.CONTENT_RESPONSE, None, None, 1.0)
        assert not message.is_consistency

    def test_sequence_numbers_unique(self):
        a = Message(MessageKind.POLL, None, None, 1.0)
        b = Message(MessageKind.POLL, None, None, 1.0)
        assert a.seq != b.seq


class TestNode:
    def test_transmission_delay(self):
        env = Environment()
        streams = StreamRegistry(0)
        provider, _ = make_nodes(env, streams)
        assert provider.transmission_delay(provider.uplink_kbps) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            provider.transmission_delay(-1)

    def test_invalid_uplink(self):
        env = Environment()
        streams = StreamRegistry(0)
        provider, _ = make_nodes(env, streams)
        with pytest.raises(ValueError):
            NetworkNode(env, "x", GeoPoint(0, 0), provider.isp, uplink_kbps=0)


class TestInterISP:
    def test_intra_isp_no_penalty(self):
        registry = ISPRegistry()
        stream = StreamRegistry(1).stream("isp")
        isp = registry.assign("us", stream)
        model = InterISPModel()
        assert model.penalty(isp, isp, stream) == 0.0

    def test_inter_isp_positive_penalty(self):
        registry = ISPRegistry()
        stream = StreamRegistry(1).stream("isp")
        a = registry.assign("us", stream)
        b = next(i for i in registry.all_isps() if i.isp_id != a.isp_id)
        model = InterISPModel(base_s=0.03, jitter_s=0.0)
        assert model.penalty(a, b, stream) == pytest.approx(0.03)


class TestFabric:
    def test_delivery_and_ledger(self):
        env = Environment()
        streams = StreamRegistry(11)
        provider, servers = make_nodes(env, streams)
        fabric = NetworkFabric(env, streams=streams)
        message = Message(MessageKind.PUSH_UPDATE, provider, servers[0], 2.0, version=1)
        results = []

        def sender(env):
            delivered = yield fabric.send(message)
            results.append(delivered)

        def receiver(env):
            received = yield servers[0].inbox.get()
            results.append(received.version)

        env.process(sender(env))
        env.process(receiver(env))
        env.run()
        assert True in results and 1 in results
        totals = fabric.ledger.kind_totals(MessageKind.PUSH_UPDATE)
        assert totals.count == 1
        assert totals.kb == pytest.approx(2.0)
        assert totals.km_kb == pytest.approx(2.0 * provider.distance_km(servers[0]))

    def test_latency_increases_with_distance(self):
        env = Environment()
        streams = StreamRegistry(12)
        topology = TopologyBuilder(env, streams).build(n_servers=20, users_per_server=0)
        fabric = NetworkFabric(env, streams=streams)
        provider = topology.provider
        near = min(topology.servers, key=provider.distance_km)
        far = max(topology.servers, key=provider.distance_km)
        assert fabric.min_latency_s(provider, far) > fabric.min_latency_s(provider, near)
        assert fabric.rtt_s(provider, far) == pytest.approx(
            2 * fabric.min_latency_s(provider, far)
        )

    def test_down_receiver_drops(self):
        env = Environment()
        streams = StreamRegistry(13)
        provider, servers = make_nodes(env, streams)
        fabric = NetworkFabric(env, streams=streams)
        servers[0].is_up = False
        outcome = []

        def sender(env):
            delivered = yield fabric.send(
                Message(MessageKind.POLL, provider, servers[0], 1.0)
            )
            outcome.append(delivered)

        env.process(sender(env))
        env.run()
        assert outcome == [False]
        assert fabric.dropped == 1
        assert len(servers[0].inbox) == 0

    def test_down_sender_drops_without_traffic(self):
        env = Environment()
        streams = StreamRegistry(14)
        provider, servers = make_nodes(env, streams)
        fabric = NetworkFabric(env, streams=streams)
        provider.is_up = False

        def sender(env):
            delivered = yield fabric.send(
                Message(MessageKind.POLL, provider, servers[0], 1.0)
            )
            assert delivered is False

        env.process(sender(env))
        env.run()
        assert fabric.ledger.totals().count == 0

    def test_output_port_serialises_transmissions(self):
        env = Environment()
        streams = StreamRegistry(15)
        provider, servers = make_nodes(env, streams, n=5)
        params = FabricParams(latency_jitter_frac=0.0, per_message_overhead_s=0.0)
        fabric = NetworkFabric(env, params=params, streams=streams)
        # Each message takes 1 s of pure transmission time.
        size = provider.uplink_kbps
        arrival_times = []

        def sender(env):
            for server in servers:
                fabric.send(Message(MessageKind.PUSH_UPDATE, provider, server, size))
            return
            yield  # pragma: no cover

        def receiver(env, server):
            yield server.inbox.get()
            arrival_times.append(env.now)

        env.process(sender(env))
        for server in servers:
            env.process(receiver(env, server))
        env.run()
        arrival_times.sort()
        # The k-th message cannot leave before k seconds of transmission.
        for k, arrival in enumerate(arrival_times, start=1):
            assert arrival >= k

    def test_params_validation(self):
        with pytest.raises(ValueError):
            FabricParams(speed_km_per_s=0)
        with pytest.raises(ValueError):
            FabricParams(path_stretch=0.5)
        with pytest.raises(ValueError):
            FabricParams(base_latency_s=-0.001)
        with pytest.raises(ValueError):
            FabricParams(per_message_overhead_s=-1e-9)
        with pytest.raises(ValueError):
            FabricParams(latency_jitter_frac=-0.1)
        # Zero is a legal boundary for all three.
        FabricParams(base_latency_s=0.0, per_message_overhead_s=0.0,
                     latency_jitter_frac=0.0)

    def test_min_latency_memo_stable_under_jitter(self):
        env = Environment()
        streams = StreamRegistry(21)
        provider, servers = make_nodes(env, streams, n=3)
        fabric = NetworkFabric(env, streams=streams)
        first = [fabric.min_latency_s(provider, s) for s in servers]
        # Cached lookups must return the very same floats, and the memo
        # must key on direction-sensitive node ids.
        assert [fabric.min_latency_s(provider, s) for s in servers] == first
        expected = (
            fabric.params.base_latency_s
            + provider.distance_km(servers[0]) * fabric.params.path_stretch
            / fabric.params.speed_km_per_s
        )
        assert first[0] == expected


class TestTopology:
    def test_build_shapes(self):
        env = Environment()
        streams = StreamRegistry(16)
        topology = TopologyBuilder(env, streams).build(n_servers=7, users_per_server=3)
        assert topology.n_servers == 7
        assert len(topology.users) == 7
        assert all(len(group) == 3 for group in topology.users)
        assert len(topology.all_nodes()) == 1 + 7 + 21

    def test_provider_in_requested_city(self):
        env = Environment()
        streams = StreamRegistry(17)
        topology = TopologyBuilder(env, streams).build(
            n_servers=1, users_per_server=0, provider_city="Tokyo"
        )
        assert topology.provider.city_name == "Tokyo"

    def test_users_near_their_server(self):
        env = Environment()
        streams = StreamRegistry(18)
        topology = TopologyBuilder(env, streams).build(n_servers=4, users_per_server=2)
        for server, users in zip(topology.servers, topology.users):
            for user in users:
                assert server.distance_km(user) < 40

    def test_invalid_sizes(self):
        env = Environment()
        streams = StreamRegistry(19)
        builder = TopologyBuilder(env, streams)
        with pytest.raises(ValueError):
            builder.build(n_servers=0)
        with pytest.raises(ValueError):
            builder.build(n_servers=1, users_per_server=-1)

    def test_placement_deterministic_per_seed(self):
        def build(seed):
            env = Environment()
            topology = TopologyBuilder(env, StreamRegistry(seed)).build(
                n_servers=5, users_per_server=0
            )
            return [(s.point.lat, s.point.lon) for s in topology.servers]

        assert build(1) == build(1)
        assert build(1) != build(2)
