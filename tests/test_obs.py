"""Tests for the observability layer (repro.obs) and the failure-
injection / run-registry correctness fixes that ride with it:

- nested/overlapping ``schedule_absence`` windows no longer revive a
  node early;
- ``RunRegistry.save`` merges concurrent on-disk entries instead of
  last-writer-wins;
- a corrupt registry file is preserved at ``<path>.corrupt``;
- the TTL poll period stays TTL-anchored when the upstream is absent;
- tracing is purely observational (bit-identical metrics on/off) and
  traced ``msg_send`` events reconcile exactly with the ledger counts.
"""

import json
import logging
import os

import pytest

from repro.cdn import (
    LiveContent,
    ProviderActor,
    ServerActor,
    schedule_absence,
)
from repro.consistency import TTLPolicy, UnicastInfrastructure
from repro.experiments import TestbedConfig, build_deployment, build_system
from repro.experiments.config import smoke_scale
from repro.experiments.testbed import DeploymentMetrics
from repro.network import NetworkFabric, TopologyBuilder
from repro.network.message import LIGHT_KINDS, UPDATE_KINDS
from repro.obs import (
    NULL_TRACER,
    FabricCounters,
    RecordingTracer,
    attribution_components,
    format_attribution_table,
    staleness_histogram,
)
from repro.runner import Runner, RunRegistry, RunSpec
from repro.sim import Environment, StreamRegistry


def _one_node(tracer=None):
    env = Environment(tracer=tracer)
    streams = StreamRegistry(5)
    topology = TopologyBuilder(env, streams).build(n_servers=1, users_per_server=0)
    return env, topology.servers[0]


# ----------------------------------------------------------------------
# satellite (a): nested absence windows
# ----------------------------------------------------------------------
class TestNestedAbsences:
    def test_overlapping_windows_do_not_revive_early(self):
        tracer = RecordingTracer()
        env, node = _one_node(tracer)
        # [10, 30) and [20, 40): the node must stay down until t=40.
        schedule_absence(env, node, start=10.0, duration=20.0)
        schedule_absence(env, node, start=20.0, duration=20.0)
        seen = []

        def probe():
            while True:
                seen.append((env.now, node.is_up))
                yield env.timeout(5.0)

        env.process(probe())
        env.run(until=100.0)
        state = dict(seen)
        assert state[5.0] and state[45.0]
        # The first window's end (t=30) must NOT bring the node back.
        assert not state[15.0] and not state[25.0] and not state[35.0]
        assert node.is_up
        assert node.downtime_s() == pytest.approx(30.0)
        # Merged windows count as a single down/up transition pair.
        assert node.down_transitions == 1
        downs = tracer.events(kinds=("node_down",))
        ups = tracer.events(kinds=("node_up",))
        assert [e.time for e in downs] == [10.0]
        assert [e.time for e in ups] == [40.0]

    def test_disjoint_windows_transition_twice(self):
        env, node = _one_node()
        schedule_absence(env, node, start=10.0, duration=5.0)
        schedule_absence(env, node, start=30.0, duration=5.0)
        env.run(until=50.0)
        assert node.is_up
        assert node.down_transitions == 2
        assert node.downtime_s() == pytest.approx(10.0)

    def test_legacy_is_up_assignment_still_forces_state(self):
        env, node = _one_node()

        def script():
            yield env.timeout(10.0)
            node.is_up = False
            node.is_up = False  # idempotent
            yield env.timeout(15.0)
            node.is_up = True  # forced revival clears every window
            assert node.is_up

        env.process(script())
        env.run(until=60.0)
        assert node.is_up
        assert node.downtime_s() == pytest.approx(15.0)
        assert node.down_transitions == 1

    def test_forced_revival_tolerated_by_pending_mark_up(self):
        env, node = _one_node()
        schedule_absence(env, node, start=5.0, duration=30.0)

        def force():
            yield env.timeout(10.0)
            node.is_up = True  # e.g. a failover handler forcing recovery

        env.process(force())
        # The absence window's mark_up at t=35 must not underflow.
        env.run(until=50.0)
        assert node.is_up
        assert node.downtime_s() == pytest.approx(5.0)

    def test_open_absence_counts_into_downtime(self):
        env, node = _one_node()
        schedule_absence(env, node, start=10.0, duration=1000.0)
        env.run(until=60.0)
        assert not node.is_up
        assert node.downtime_s(60.0) == pytest.approx(50.0)


# ----------------------------------------------------------------------
# satellites (b) + (d): run-registry merge and corrupt-file backup
# ----------------------------------------------------------------------
def _metrics(name="m"):
    return DeploymentMetrics(
        name=name,
        server_lags={"s0": 1.0},
        user_lags={"u0": 2.0},
        user_stale_fractions={"u0": 0.0},
        cost_km_kb=1.0,
        update_messages=1,
        light_messages=2,
        response_messages=1,
        provider_response_messages=1,
        update_load_km=1.0,
        light_load_km=1.0,
        response_load_km=1.0,
        request_load_km=1.0,
        provider_update_messages=1,
        provider_messages=1,
    )


def _spec(seed):
    return RunSpec(config=smoke_scale(seed=seed), method="ttl")


class TestRegistryMerge:
    def test_concurrent_saves_keep_both_entries(self, tmp_path):
        path = str(tmp_path / "runs.json")
        reg_a = RunRegistry(path)
        reg_b = RunRegistry(path)  # loaded while the file is still empty
        reg_a.put(_spec(1), _metrics("a"), 0.1)
        reg_b.put(_spec(2), _metrics("b"), 0.2)
        assert reg_a.save() == 0
        # Before the fix this overwrote reg_a's entry (last-writer-wins).
        assert reg_b.save() == 1
        assert reg_b.merged_entries == 1
        reloaded = RunRegistry(path)
        assert len(reloaded) == 2
        assert reloaded.get(_spec(1)).name == "a"
        assert reloaded.get(_spec(2)).name == "b"

    def test_in_memory_entry_wins_key_collision(self, tmp_path):
        path = str(tmp_path / "runs.json")
        reg_a = RunRegistry(path)
        reg_b = RunRegistry(path)
        reg_a.put(_spec(1), _metrics("stale"), 0.1)
        reg_a.save()
        reg_b.put(_spec(1), _metrics("fresh"), 0.2)
        assert reg_b.save() == 0  # collision is not a merge
        assert RunRegistry(path).get(_spec(1)).name == "fresh"

    def test_clean_save_returns_zero_without_touching_disk(self, tmp_path):
        path = str(tmp_path / "runs.json")
        registry = RunRegistry(path)
        assert registry.save() == 0
        assert not os.path.exists(path)

    def test_corrupt_file_backed_up_and_warned(self, tmp_path, caplog):
        path = str(tmp_path / "runs.json")
        with open(path, "w") as handle:
            handle.write("{ this is not json")
        with caplog.at_level(logging.WARNING, logger="repro.runner.registry"):
            registry = RunRegistry(path)
        assert len(registry) == 0
        backup = path + ".corrupt"
        assert os.path.exists(backup)
        with open(backup) as handle:
            assert handle.read() == "{ this is not json"
        warning = "\n".join(record.getMessage() for record in caplog.records)
        assert path in warning and backup in warning

    def test_corrupt_file_not_silently_overwritten_by_save(self, tmp_path):
        path = str(tmp_path / "runs.json")
        with open(path, "w") as handle:
            handle.write("garbage")
        registry = RunRegistry(path)
        registry.put(_spec(1), _metrics(), 0.1)
        registry.save()
        with open(path) as handle:
            assert json.load(handle)["format"] == 1
        assert os.path.exists(path + ".corrupt")

    def test_wrong_format_version_ignored(self, tmp_path):
        path = str(tmp_path / "runs.json")
        with open(path, "w") as handle:
            json.dump({"format": 99, "runs": {"k": {}}}, handle)
        registry = RunRegistry(path)
        assert len(registry) == 0
        # Parseable-but-unknown format is not "corrupt": no backup.
        assert not os.path.exists(path + ".corrupt")


# ----------------------------------------------------------------------
# satellite (c): TTL poll cadence under upstream absence
# ----------------------------------------------------------------------
def _ttl_deployment(tracer, ttl_s=10.0, updates=(50.0,), horizon=200.0,
                    absence=None):
    env = Environment(tracer=tracer)
    streams = StreamRegistry(3)
    topology = TopologyBuilder(env, streams).build(n_servers=1, users_per_server=0)
    fabric = NetworkFabric(env, streams=streams)
    content = LiveContent("game", update_times=list(updates))
    provider = ProviderActor(env, topology.provider, fabric, content)
    server = ServerActor(
        env, topology.servers[0], fabric, content, policy=TTLPolicy(ttl_s)
    )
    UnicastInfrastructure().wire(provider, [server])
    if absence is not None:
        start, duration = absence
        schedule_absence(env, provider.node, start=start, duration=duration)
    server.start()
    env.run(until=horizon)
    return env, fabric, provider, server


class TestTTLPollCadence:
    def test_period_stays_one_ttl_when_upstream_absent(self):
        tracer = RecordingTracer()
        # Provider down for the whole run: every poll times out after
        # poll_timeout_s (== ttl_s by default).
        _ttl_deployment(tracer, ttl_s=10.0, horizon=100.0, absence=(0.0, 1000.0))
        rounds = [e.time for e in tracer.events(kinds=("poll_round",))]
        assert len(rounds) >= 8  # ~one per TTL; the old bug gave ~one per 2xTTL
        deltas = [b - a for a, b in zip(rounds, rounds[1:])]
        for delta in deltas:
            assert delta == pytest.approx(10.0, abs=0.5)
        assert all(
            e.detail["timed_out"] for e in tracer.events(kinds=("poll_round",))
        )

    def test_recovery_within_one_ttl_of_upstream_return(self):
        tracer = RecordingTracer()
        env, fabric, provider, server = _ttl_deployment(
            tracer, ttl_s=10.0, updates=(50.0,), horizon=200.0,
            absence=(40.0, 40.0),
        )
        successes = [
            e.time
            for e in tracer.events(kinds=("poll_round",))
            if e.detail["got_update"]
        ]
        assert successes, "server never recovered the update"
        # Upstream returns at t=80; with the TTL-anchored period the next
        # poll lands within one TTL (the 2xTTL bug pushed it past 90).
        assert successes[0] <= 80.0 + 10.0 + 2.0
        assert server.cached_version == 1

    def test_healthy_upstream_polls_once_per_ttl(self):
        tracer = RecordingTracer()
        _ttl_deployment(tracer, ttl_s=10.0, updates=(500.0,), horizon=100.0)
        rounds = [e.time for e in tracer.events(kinds=("poll_round",))]
        deltas = [b - a for a, b in zip(rounds, rounds[1:])]
        for delta in deltas:
            assert delta == pytest.approx(10.0, abs=0.5)


# ----------------------------------------------------------------------
# tracer semantics
# ----------------------------------------------------------------------
class TestTracer:
    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.emit(1.0, "msg_send", "n")  # no-op, no error
        assert NULL_TRACER.events() == []

    def test_recording_and_filtering(self):
        tracer = RecordingTracer()
        tracer.emit(1.0, "msg_send", "a", kb=1.0)
        tracer.emit(2.0, "msg_recv", "b", kb=1.0)
        tracer.emit(3.0, "msg_send", "a", kb=2.0)
        assert len(tracer) == 3
        assert tracer.count("msg_send") == 2
        assert tracer.count("msg_send", node="b") == 0
        assert [e.time for e in tracer.events(node="a")] == [1.0, 3.0]
        # since inclusive, until exclusive
        assert [e.time for e in tracer.events(since=2.0, until=3.0)] == [2.0]
        assert tracer.kind_counts() == {"msg_send": 2, "msg_recv": 1}

    def test_dump_jsonl_rows_and_limit(self, tmp_path):
        tracer = RecordingTracer()
        tracer.emit(1.5, "visit", "u0", server="s0", version=2)
        tracer.emit(2.5, "visit", "u1", server="s1", version=2)
        out = tmp_path / "trace.jsonl"
        with open(out, "w") as handle:
            written = tracer.dump_jsonl(handle, limit=1)
        assert written == 1
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert rows == [
            {"t": 1.5, "kind": "visit", "node": "u0", "server": "s0", "version": 2}
        ]

    def test_metrics_bit_identical_with_and_without_tracing(self):
        config = TestbedConfig(
            n_servers=6, users_per_server=1, n_updates=8,
            game_duration_s=240.0, seed=11,
        )
        for method in ("ttl", "invalidation"):
            plain = build_deployment(config, method).run()
            traced = build_deployment(
                config, method, tracer=RecordingTracer()
            ).run()
            assert plain.to_dict() == traced.to_dict()

    def test_msg_send_trace_reconciles_with_ledger(self):
        # The fig14/fig16 grid: every (method, infrastructure) cell's
        # traced msg_send events must match the ledger's counts exactly.
        config = TestbedConfig(
            n_servers=6, users_per_server=1, n_updates=8,
            game_duration_s=240.0, seed=4,
        )
        update_values = {kind.value for kind in UPDATE_KINDS}
        light_values = {kind.value for kind in LIGHT_KINDS}
        for method in ("push", "invalidation", "ttl"):
            for infrastructure in ("unicast", "multicast"):
                tracer = RecordingTracer()
                metrics = build_deployment(
                    config, method, infrastructure, tracer=tracer
                ).run()
                sends = tracer.events(kinds=("msg_send",))
                n_update = sum(
                    1 for e in sends if e.detail["msg"] in update_values
                )
                n_light = sum(
                    1 for e in sends if e.detail["msg"] in light_values
                )
                assert n_update == metrics.update_messages
                assert n_light == metrics.light_messages
                assert metrics.message_counts == {
                    "update": n_update, "light": n_light,
                }

    def test_system_deployment_accepts_tracer(self):
        tracer = RecordingTracer()
        metrics = build_system(smoke_scale(), "hat", tracer=tracer)
        metrics = metrics.run()
        assert tracer.count("msg_send") > 0
        assert metrics.mean_server_lag >= 0.0


# ----------------------------------------------------------------------
# counters / metrics plumbing
# ----------------------------------------------------------------------
class TestCounters:
    def test_fabric_counters_record(self):
        counters = FabricCounters()
        counters.record_sent("a", "b", 2.0)
        counters.record_sent("a", "b", 1.0)
        counters.record_sent("b", "a", 4.0)
        counters.record_propagation(0.5, 0.0, 2.0)
        counters.record_propagation(0.25, 0.75, 1.0)
        assert counters.messages_sent == 3
        assert counters.bytes_kb == pytest.approx(7.0)
        assert counters.link_bytes_kb == {"a->b": 3.0, "b->a": 4.0}
        assert counters.isp_crossing_messages == 1
        assert counters.isp_crossing_kb == pytest.approx(1.0)
        assert counters.isp_penalty_s == pytest.approx(0.75)
        assert counters.propagation_s == pytest.approx(0.75)
        assert counters.to_dict()["n_links"] == 2

    def test_staleness_histogram_bins(self):
        edges, counts = staleness_histogram([0.5, 1.5, 7.0, 1000.0])
        assert edges == [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0]
        assert len(counts) == len(edges) + 1
        assert counts == [1, 1, 0, 1, 0, 0, 0, 1]
        assert sum(counts) == 4

    def test_deployment_metrics_carry_observability_fields(self):
        metrics = build_deployment(smoke_scale(), "ttl").run()
        assert metrics.message_counts["light"] > 0
        assert metrics.propagation_s > 0.0
        assert metrics.queueing_s > 0.0
        assert metrics.link_bytes_kb  # at least provider->server links
        assert sum(metrics.staleness_hist_counts) == len(metrics.server_lags)
        assert metrics.node_downtime_s == 0.0

    def test_deployment_metrics_roundtrip(self):
        metrics = build_deployment(smoke_scale(), "invalidation").run()
        data = metrics.to_dict()
        assert DeploymentMetrics.from_dict(data).to_dict() == data

    def test_old_registry_dict_without_new_keys_loads(self):
        data = _metrics("old").to_dict()
        for key in (
            "message_counts", "dropped_messages", "isp_crossing_messages",
            "isp_crossing_kb", "isp_penalty_s", "propagation_s", "queueing_s",
            "link_bytes_kb", "node_downtime_s", "down_transitions",
            "staleness_hist_edges", "staleness_hist_counts",
        ):
            del data[key]
        restored = DeploymentMetrics.from_dict(data)
        assert restored.name == "old"
        assert restored.dropped_messages == 0
        assert restored.message_counts == {}


# ----------------------------------------------------------------------
# attribution
# ----------------------------------------------------------------------
class TestAttribution:
    def test_components_decompose_mean_lag(self):
        metrics = _metrics()
        metrics.message_counts = {"update": 2, "light": 2}
        metrics.propagation_s = 0.4
        metrics.isp_penalty_s = 0.2
        metrics.queueing_s = 0.4
        metrics.isp_crossing_messages = 1
        components = attribution_components(metrics)
        assert components["mean_server_lag_s"] == pytest.approx(1.0)
        assert components["propagation_s"] == pytest.approx(0.1)
        assert components["inter_isp_s"] == pytest.approx(0.05)
        assert components["sender_queueing_s"] == pytest.approx(0.1)
        assert components["policy_wait_s"] == pytest.approx(0.75)
        assert components["isp_crossing_fraction"] == pytest.approx(0.25)

    def test_policy_wait_clamped_at_zero(self):
        metrics = _metrics()
        metrics.message_counts = {"update": 1}
        metrics.queueing_s = 100.0
        assert attribution_components(metrics)["policy_wait_s"] == 0.0

    def test_no_messages_is_safe(self):
        components = attribution_components(_metrics())
        assert components["propagation_s"] == 0.0
        assert components["isp_crossing_fraction"] == 0.0

    def test_table_formatting(self):
        lines = format_attribution_table({"ttl/unicast": _metrics()})
        assert lines[0].startswith("Cause attribution")
        assert any("| run |" in line for line in lines)
        assert any(line.startswith("| ttl/unicast |") for line in lines)


# ----------------------------------------------------------------------
# RunStats surface
# ----------------------------------------------------------------------
class TestRunStatsSurface:
    def test_runner_aggregates_message_counters(self):
        runner = Runner(workers=1, registry=False)
        outcome = runner.run([_spec(0)])
        metrics = outcome.metrics[0]
        expected = metrics.update_messages + metrics.light_messages
        assert outcome.stats.messages == expected
        assert outcome.stats.dropped_messages == metrics.dropped_messages
        assert outcome.stats.registry_merged == 0
        data = outcome.stats.to_dict()
        assert data["messages"] == expected
        assert "registry_merged" in data
        assert "dropped" in outcome.stats.summary()


# ----------------------------------------------------------------------
# repro trace CLI
# ----------------------------------------------------------------------
class TestTraceCli:
    ARGS = [
        "trace", "--servers", "4", "--users-per-server", "1",
        "--updates", "5", "--duration", "120",
    ]

    def test_dumps_filtered_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        code = main(
            self.ARGS + ["--method", "ttl", "--kind", "poll_round",
                         "--out", str(out)]
        )
        assert code == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert rows and all(row["kind"] == "poll_round" for row in rows)
        err = capsys.readouterr().err
        assert "event(s) recorded" in err

    def test_limit_and_window_filters(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        code = main(
            self.ARGS + ["--method", "push", "--since", "60", "--until", "90",
                         "--limit", "7", "--out", str(out)]
        )
        assert code == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) <= 7
        assert all(60.0 <= row["t"] < 90.0 for row in rows)

    def test_stdout_and_attribution(self, capsys):
        from repro.cli import main

        code = main(
            self.ARGS + ["--method", "invalidation", "--kind", "content_update",
                         "--attribution"]
        )
        assert code == 0
        captured = capsys.readouterr()
        rows = [json.loads(line) for line in captured.out.splitlines()]
        assert rows and all(row["kind"] == "content_update" for row in rows)
        assert "Cause attribution" in captured.err

    def test_system_mode(self, capsys):
        from repro.cli import main

        code = main(self.ARGS + ["--system", "hat", "--kind", "msg_drop"])
        assert code == 0
        assert "deployment: hat" in capsys.readouterr().err

    def test_rejects_unknown_kind(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--kind", "nonsense"])


# ----------------------------------------------------------------------
# RecordingTracer filter semantics (node / kind / time windows)
# ----------------------------------------------------------------------
class TestTracerFilters:
    @staticmethod
    def _tracer():
        tracer = RecordingTracer()
        tracer.emit(0.0, "msg_send", "a", kb=1.0)
        tracer.emit(1.0, "msg_recv", "b", kb=1.0)
        tracer.emit(1.0, "msg_send", "b", kb=2.0)
        tracer.emit(2.5, "poll_round", "a", timed_out=False)
        tracer.emit(4.0, "msg_send", "a", kb=3.0)
        return tracer

    def test_node_filter(self):
        tracer = self._tracer()
        assert [e.time for e in tracer.events(node="a")] == [0.0, 2.5, 4.0]
        assert [e.kind for e in tracer.events(node="b")] == [
            "msg_recv", "msg_send",
        ]
        assert tracer.events(node="missing") == []

    def test_kind_filter_accepts_multiple_kinds(self):
        tracer = self._tracer()
        assert len(tracer.events(kinds=("msg_send",))) == 3
        both = tracer.events(kinds=("msg_send", "msg_recv"))
        assert [e.time for e in both] == [0.0, 1.0, 1.0, 4.0]

    def test_since_inclusive_until_exclusive(self):
        tracer = self._tracer()
        # since is inclusive: the t=1.0 events are in.
        assert [e.time for e in tracer.events(since=1.0)] == [1.0, 1.0, 2.5, 4.0]
        # until is exclusive: the t=4.0 event is out.
        assert [e.time for e in tracer.events(until=4.0)] == [0.0, 1.0, 1.0, 2.5]
        # An event exactly at since and below until appears exactly once.
        assert [e.time for e in tracer.events(since=2.5, until=4.0)] == [2.5]
        assert tracer.events(since=2.6, until=2.7) == []

    def test_filters_compose(self):
        tracer = self._tracer()
        hits = tracer.events(node="a", kinds=("msg_send",), since=1.0, until=5.0)
        assert [(e.time, e.node) for e in hits] == [(4.0, "a")]
        assert tracer.count("msg_send", node="a") == 2


# ----------------------------------------------------------------------
# FabricCounters reconciliation: fast-path vs legacy transport
# ----------------------------------------------------------------------
class TestTransportCounterReconciliation:
    CONFIG = dict(
        n_servers=6, users_per_server=1, n_updates=8,
        game_duration_s=240.0, seed=7,
    )

    def _counters(self, legacy, method, infrastructure, monkeypatch):
        monkeypatch.setenv(
            "REPRO_LEGACY_TRANSPORT", "1" if legacy else "0"
        )
        deployment = build_deployment(
            TestbedConfig(**self.CONFIG), method, infrastructure
        )
        assert deployment.fabric.legacy_transport is legacy
        metrics = deployment.run()
        return deployment.fabric.counters, metrics

    @pytest.mark.parametrize("method", ["push", "ttl"])
    @pytest.mark.parametrize("infrastructure", ["unicast", "multicast"])
    def test_both_transports_post_identical_counters(
        self, method, infrastructure, monkeypatch
    ):
        fast, fast_metrics = self._counters(
            False, method, infrastructure, monkeypatch
        )
        legacy, legacy_metrics = self._counters(
            True, method, infrastructure, monkeypatch
        )
        assert fast.to_dict() == legacy.to_dict()
        assert fast.link_bytes_kb == legacy.link_bytes_kb
        assert fast.dropped_messages == legacy.dropped_messages
        # Counters reconcile with the metrics each transport reported.
        for metrics in (fast_metrics, legacy_metrics):
            assert metrics.dropped_messages == fast.dropped_messages
            assert metrics.isp_crossing_messages == fast.isp_crossing_messages
            assert metrics.propagation_s == pytest.approx(fast.propagation_s)
            assert metrics.queueing_s == pytest.approx(fast.queueing_s)

    def test_counters_match_under_failure_injection(self, monkeypatch):
        # Drops (sender/receiver down) must attribute identically on
        # both transports.
        config = TestbedConfig(**self.CONFIG)
        results = []
        for legacy in (False, True):
            monkeypatch.setenv(
                "REPRO_LEGACY_TRANSPORT", "1" if legacy else "0"
            )
            deployment = build_deployment(config, "push")
            schedule_absence(
                deployment.env, deployment.servers[0].node,
                start=30.0, duration=60.0,
            )
            deployment.run()
            results.append(deployment.fabric.counters.to_dict())
        assert results[0] == results[1]
        assert (
            results[0]["dropped_sender_down"]
            + results[0]["dropped_receiver_down"]
        ) > 0
