"""Tests for the HAT system (cluster formation, supernode tree, update flow)."""

import pytest

from repro.cdn import EndUserActor, FixedSelector, LiveContent
from repro.core import HatConfig, HatSystem, form_clusters
from repro.network import MessageKind, NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry


def build_hat(n_servers=25, n_clusters=5, member_method="self-adaptive",
              updates=(30.0, 45.0, 60.0), seed=4, ttl=20.0):
    env = Environment()
    streams = StreamRegistry(seed)
    topology = TopologyBuilder(env, streams).build(n_servers=n_servers, users_per_server=1)
    fabric = NetworkFabric(env, streams=streams)
    content = LiveContent("game", update_times=list(updates))
    hat = HatSystem(
        env, fabric, streams, content,
        provider_node=topology.provider,
        server_nodes=list(topology.servers),
        config=HatConfig(
            n_clusters=n_clusters, tree_arity=4,
            server_ttl_s=ttl, member_method=member_method,
        ),
    )
    return env, streams, topology, fabric, content, hat


class TestClusterFormation:
    def test_every_server_in_exactly_one_cluster(self):
        env, streams, topology, fabric, content, hat = build_hat()
        seen = set()
        for spec in hat.clusters:
            for node in spec.all_nodes:
                assert node.node_id not in seen
                seen.add(node.node_id)
        assert len(seen) == 25

    def test_supernode_is_member_of_its_cluster(self):
        env, streams, topology, fabric, content, hat = build_hat()
        for spec in hat.clusters:
            assert spec.supernode not in spec.members
            assert spec.size == 1 + len(spec.members)

    def test_form_clusters_validation(self):
        stream = StreamRegistry(0).stream("s")
        with pytest.raises(ValueError):
            form_clusters([], 3, stream)


class TestHatStructure:
    def test_supernode_tree_rooted_at_provider(self):
        env, streams, topology, fabric, content, hat = build_hat()
        assert 1 <= len(hat.provider.children) <= 4
        for supernode in hat.supernodes:
            assert hat.tree.depth_of(supernode) >= 1
        assert hat.tree_depth() >= 1

    def test_members_point_at_their_supernode(self):
        env, streams, topology, fabric, content, hat = build_hat()
        for spec, supernode in zip(hat.clusters, hat.supernodes):
            for node in spec.members:
                member = hat.server_by_node_id[node.node_id]
                assert member.upstream is supernode.node

    def test_supernode_of_lookup(self):
        env, streams, topology, fabric, content, hat = build_hat()
        spec = hat.clusters[0]
        supernode = hat.supernode_of(spec.supernode)
        for node in spec.members:
            assert hat.supernode_of(node) is supernode
        with pytest.raises(KeyError):
            hat.supernode_of(topology.provider)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HatConfig(n_clusters=0)
        with pytest.raises(ValueError):
            HatConfig(member_method="magic")
        with pytest.raises(ValueError):
            HatConfig(server_ttl_s=0)


class TestHatUpdateFlow:
    def test_supernodes_receive_updates_by_push(self):
        env, streams, topology, fabric, content, hat = build_hat(updates=(30.0,))
        hat.start()
        env.run(until=40.0)
        for supernode in hat.supernodes:
            assert supernode.cached_version == 1
            # Push-fresh well before one member TTL elapses
            assert supernode.apply_log()[-1][0] < 31.0

    def test_members_converge_via_self_adaptive(self):
        env, streams, topology, fabric, content, hat = build_hat(
            updates=(30.0, 45.0, 60.0)
        )
        users = [
            EndUserActor(
                env, topology.users[i][0], fabric, content,
                FixedSelector(topology.servers[i]), user_ttl_s=10.0,
            )
            for i in range(len(topology.servers))
        ]
        hat.start()
        for user in users:
            user.start()
        env.run(until=400.0)
        for member in hat.members:
            assert member.cached_version == 3

    def test_silent_members_get_invalidated_not_pushed(self):
        # No users at all: members switch to Invalidation during silence
        # and receive a notice (but never fetch).
        env, streams, topology, fabric, content, hat = build_hat(
            updates=(30.0, 400.0), ttl=15.0
        )
        hat.start()
        env.run(until=600.0)
        invalidated = sum(1 for member in hat.members if member.is_invalidated)
        assert invalidated == len(hat.members)
        assert fabric.ledger.kind_totals(MessageKind.FETCH).count == 0
        # supernodes still got both updates via push
        for supernode in hat.supernodes:
            assert supernode.cached_version == 2

    def test_hybrid_members_use_plain_ttl(self):
        env, streams, topology, fabric, content, hat = build_hat(
            member_method="ttl", updates=(30.0,)
        )
        hat.start()
        env.run(until=120.0)
        for member in hat.members:
            assert member.policy.method_name == "ttl"
            assert member.cached_version == 1
        assert fabric.ledger.kind_totals(MessageKind.SWITCH_NOTICE).count == 0

    def test_provider_load_is_bounded_by_tree_arity(self):
        env, streams, topology, fabric, content, hat = build_hat(updates=(30.0, 40.0))
        hat.start()
        env.run(until=200.0)
        provider_pushes = fabric.ledger.updates_sent_by("provider")
        assert provider_pushes <= 2 * 4  # n_updates x tree arity
