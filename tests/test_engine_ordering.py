"""Determinism and priority-ordering tests for the engine and fabric."""


from repro.cdn import LiveContent, ProviderActor, ServerActor
from repro.consistency import SelfAdaptivePolicy, UnicastInfrastructure
from repro.network import MessageKind, NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry
from repro.sim.engine import NORMAL, URGENT


class TestSchedulingPriority:
    def test_urgent_runs_before_normal_at_same_time(self):
        env = Environment()
        order = []

        normal = env.event()
        urgent = env.event()
        normal.callbacks.append(lambda e: order.append("normal"))
        urgent.callbacks.append(lambda e: order.append("urgent"))
        normal._ok = urgent._ok = True
        normal._value = urgent._value = None
        env.schedule(normal, priority=NORMAL, delay=5.0)
        env.schedule(urgent, priority=URGENT, delay=5.0)
        env.run()
        assert order == ["urgent", "normal"]

    def test_new_process_starts_before_same_time_timeouts(self):
        env = Environment()
        order = []

        def early(env):
            order.append("process-body")
            yield env.timeout(1)

        def scheduler(env):
            yield env.timeout(5)
            env.timeout(0).callbacks.append(lambda e: order.append("timeout"))
            env.process(early(env))

        env.process(scheduler(env))
        env.run()
        # the new process's _Initialize is URGENT: body runs first
        assert order == ["process-body", "timeout"]

    def test_run_until_time_excludes_events_at_that_instant(self):
        env = Environment()
        fired = []

        def proc(env):
            yield env.timeout(10)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=10)
        # the stop event is URGENT at t=10, so the timeout has not fired
        assert fired == []
        env.run()
        assert fired == [10]


class TestFabricDeterminism:
    def run_world(self, seed):
        env = Environment()
        streams = StreamRegistry(seed)
        topology = TopologyBuilder(env, streams).build(n_servers=6, users_per_server=0)
        fabric = NetworkFabric(env, streams=streams)
        content = LiveContent("c", update_times=[25.0, 60.0, 300.0])
        provider = ProviderActor(env, topology.provider, fabric, content)
        servers = [
            ServerActor(
                env, node, fabric, content,
                policy=SelfAdaptivePolicy(20.0, stream=streams.stream("phase")),
            )
            for node in topology.servers
        ]
        UnicastInfrastructure().wire(provider, servers)
        provider.use_self_adaptive()
        for server in servers:
            server.start()
        env.run(until=500.0)
        return (
            fabric.ledger.snapshot(),
            [tuple(server.apply_log()) for server in servers],
        )

    def test_identical_given_seed(self):
        assert self.run_world(77) == self.run_world(77)

    def test_different_across_seeds(self):
        assert self.run_world(77) != self.run_world(78)


class TestReannounce:
    def test_reannounce_only_in_invalidation_mode(self):
        env = Environment()
        streams = StreamRegistry(5)
        topology = TopologyBuilder(env, streams).build(n_servers=1, users_per_server=0)
        fabric = NetworkFabric(env, streams=streams)
        content = LiveContent("c", update_times=[30.0])
        provider = ProviderActor(env, topology.provider, fabric, content)
        policy = SelfAdaptivePolicy(15.0)
        server = ServerActor(
            env, topology.servers[0], fabric, content,
            policy=policy, upstream=topology.provider,
        )
        # TTL mode: reannounce is a no-op
        policy.reannounce()
        env.run(until=5.0)
        assert fabric.ledger.kind_totals(MessageKind.SWITCH_NOTICE).count == 0
        # Force invalidation mode and reannounce
        policy.mode = "invalidation"
        policy.reannounce()
        env.run(until=10.0)
        assert fabric.ledger.kind_totals(MessageKind.SWITCH_NOTICE).count == 1
        assert server.node in provider.adaptive_members
