"""Protocol tests for UpdateSourceMixin: switch notices, adaptive
notification dedup, push subscriptions, and poll/fetch answering."""

import pytest

from repro.cdn import LiveContent, ProviderActor, ServerActor
from repro.consistency import InvalidationPolicy, TTLPolicy
from repro.network import Message, MessageKind, NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry


@pytest.fixture
def world():
    env = Environment()
    streams = StreamRegistry(41)
    topology = TopologyBuilder(env, streams).build(n_servers=3, users_per_server=0)
    fabric = NetworkFabric(env, streams=streams)
    content = LiveContent("c", update_times=[100.0, 200.0])
    provider = ProviderActor(env, topology.provider, fabric, content)
    servers = [
        ServerActor(env, node, fabric, content, policy=TTLPolicy(30.0),
                    upstream=topology.provider)
        for node in topology.servers
    ]
    return env, fabric, content, provider, servers


def switch(provider, server, mode, version=0):
    message = Message(
        MessageKind.SWITCH_NOTICE, server.node, provider.node, 1.0,
        version=version, payload={"mode": mode},
    )
    provider.handle_switch(message)


class TestSwitchProtocol:
    def test_invalidation_registration(self, world):
        env, fabric, content, provider, servers = world
        switch(provider, servers[0], "invalidation")
        assert servers[0].node in provider.adaptive_members
        assert provider.adaptive_members[servers[0].node] is False

    def test_switch_back_to_ttl_unregisters(self, world):
        env, fabric, content, provider, servers = world
        switch(provider, servers[0], "invalidation")
        switch(provider, servers[0], "ttl")
        assert servers[0].node not in provider.adaptive_members

    def test_push_subscription_and_unsubscribe(self, world):
        env, fabric, content, provider, servers = world
        switch(provider, servers[0], "push")
        assert servers[0].node in provider.push_members
        switch(provider, servers[0], "ttl")
        assert servers[0].node not in provider.push_members

    def test_push_and_invalidation_are_exclusive(self, world):
        env, fabric, content, provider, servers = world
        switch(provider, servers[0], "invalidation")
        switch(provider, servers[0], "push")
        assert servers[0].node not in provider.adaptive_members
        assert servers[0].node in provider.push_members

    def test_malformed_switch_rejected(self, world):
        env, fabric, content, provider, servers = world
        message = Message(
            MessageKind.SWITCH_NOTICE, servers[0].node, provider.node, 1.0,
            payload={"mode": "carrier-pigeon"},
        )
        with pytest.raises(ValueError):
            provider.handle_switch(message)

    def test_stale_switcher_notified_immediately(self, world):
        env, fabric, content, provider, servers = world
        env.run(until=150.0)  # provider now at version 1
        switch(provider, servers[0], "invalidation", version=0)
        # member was behind: it is marked notified and a notice is sent
        assert provider.adaptive_members[servers[0].node] is True
        env.run(until=152.0)
        assert servers[0].is_invalidated

    def test_stale_push_subscriber_caught_up(self, world):
        env, fabric, content, provider, servers = world
        env.run(until=150.0)
        switch(provider, servers[0], "push", version=0)
        env.run(until=152.0)
        assert servers[0].cached_version == 1


class TestAdaptiveNotificationDedup:
    def test_one_notice_per_silence_period(self, world):
        env, fabric, content, provider, servers = world
        switch(provider, servers[0], "invalidation")
        provider.use_self_adaptive()
        env.run(until=250.0)  # both updates happen
        notices = fabric.ledger.kind_totals(MessageKind.INVALIDATE).count
        assert notices == 1  # second update aggregated for free

    def test_renotified_after_fetch(self, world):
        env, fabric, content, provider, servers = world
        provider.use_self_adaptive()
        server = servers[0]
        server.policy = InvalidationPolicy()  # fetch-on-demand behaviour
        server.policy.server = server
        switch(provider, server, "invalidation")

        def fetcher(env):
            yield env.timeout(120.0)  # after update 1 + notice
            yield from server.policy.ensure_fresh()

        env.process(fetcher(env))
        env.run(until=250.0)
        # fetch after update 1 reset the notified flag, so update 2
        # produced a second notice
        notices = fabric.ledger.kind_totals(MessageKind.INVALIDATE).count
        assert notices == 2
        assert server.cached_version >= 1


class TestPollAnswering:
    def test_poll_not_modified_when_current(self, world):
        env, fabric, content, provider, servers = world
        server = servers[0]

        def poll_twice(env):
            yield env.timeout(110.0)  # version 1 exists
            got = yield from server.policy.poll_once()
            assert got is True and server.cached_version == 1
            got = yield from server.policy.poll_once()
            assert got is False

        env.process(poll_twice(env))
        env.run(until=150.0)
        assert fabric.ledger.kind_totals(MessageKind.POLL_RESPONSE).count == 1
        assert fabric.ledger.kind_totals(MessageKind.POLL_NOT_MODIFIED).count == 1

    def test_fetch_always_returns_body(self, world):
        env, fabric, content, provider, servers = world
        server = servers[0]
        results = []

        def fetcher(env):
            response = yield from server.request(
                MessageKind.FETCH, provider.node, 1.0, timeout=10.0
            )
            results.append(response)

        env.process(fetcher(env))
        env.run(until=50.0)
        assert results[0].kind is MessageKind.FETCH_RESPONSE
        assert results[0].version == 0
        assert results[0].size_kb == content.update_size_kb
