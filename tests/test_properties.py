"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cdn.client import Observation
from repro.cdn.content import LiveContent
from repro.consistency.hilbert import hilbert_number, hilbert_to_xy, xy_to_hilbert
from repro.metrics.consistency import stale_observation_fraction, update_lags
from repro.metrics.stats import Cdf
from repro.network.geo import GeoPoint, haversine_km
from repro.sim import Environment, derive_seed
from repro.trace.records import PollSeries


# ----------------------------------------------------------------------
# Hilbert curve
# ----------------------------------------------------------------------
@given(
    order=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
def test_hilbert_roundtrip(order, data):
    side = 1 << order
    x = data.draw(st.integers(min_value=0, max_value=side - 1))
    y = data.draw(st.integers(min_value=0, max_value=side - 1))
    d = xy_to_hilbert(order, x, y)
    assert 0 <= d < side * side
    assert hilbert_to_xy(order, d) == (x, y)


@given(
    lat=st.floats(min_value=-90, max_value=90, allow_nan=False),
    lon=st.floats(min_value=-180, max_value=180, allow_nan=False),
)
def test_hilbert_number_in_range(lat, lon):
    d = hilbert_number(GeoPoint(lat, lon), order=10)
    assert 0 <= d < (1 << 10) ** 2


# ----------------------------------------------------------------------
# geography
# ----------------------------------------------------------------------
coords = st.tuples(
    st.floats(min_value=-90, max_value=90, allow_nan=False),
    st.floats(min_value=-180, max_value=180, allow_nan=False),
)


@given(a=coords, b=coords)
def test_haversine_symmetric_bounded(a, b):
    pa, pb = GeoPoint(*a), GeoPoint(*b)
    d1 = haversine_km(pa, pb)
    d2 = haversine_km(pb, pa)
    assert abs(d1 - d2) < 1e-6
    assert 0.0 <= d1 <= 20038.0  # half the Earth's circumference


# ----------------------------------------------------------------------
# CDF
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1))
def test_cdf_monotone_and_bounded(values):
    cdf = Cdf(values)
    xs = sorted(set(values))
    previous = 0.0
    for x in xs:
        current = cdf.at(x)
        assert 0.0 <= current <= 1.0
        assert current >= previous
        assert cdf.fraction_below(x) <= current
        previous = current
    assert cdf.at(max(xs)) == 1.0


# ----------------------------------------------------------------------
# update lags
# ----------------------------------------------------------------------
@st.composite
def content_and_log(draw):
    update_times = sorted(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
                min_size=1,
                max_size=20,
                unique=True,
            )
        )
    )
    content = LiveContent("c", update_times=update_times)
    n_entries = draw(st.integers(min_value=1, max_value=30))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=2e4, allow_nan=False),
                min_size=n_entries,
                max_size=n_entries,
            )
        )
    )
    versions = []
    current = 0
    for t in times:
        ceiling = content.version_at(t)
        current = draw(st.integers(min_value=current, max_value=max(current, ceiling)))
        versions.append(current)
    log = list(zip(times, versions))
    return content, log


@given(content_and_log())
def test_update_lags_nonnegative_and_bounded_count(pair):
    content, log = pair
    lags = update_lags(content, log)
    assert all(lag >= 0.0 for lag in lags)
    assert len(lags) <= content.n_updates


@given(content_and_log(), st.floats(min_value=2e4, max_value=3e4))
def test_update_lags_censoring_scores_every_update(pair, censor):
    content, log = pair
    lags = update_lags(content, log, censor_at=censor)
    assert len(lags) == content.n_updates
    assert all(lag >= 0.0 for lag in lags)


# ----------------------------------------------------------------------
# stale fraction
# ----------------------------------------------------------------------
@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=100)
)
def test_stale_fraction_in_unit_interval(versions):
    observations = [Observation(float(i), v, "s") for i, v in enumerate(versions)]
    fraction = stale_observation_fraction(observations)
    assert 0.0 <= fraction <= 1.0
    if versions == sorted(versions):
        assert fraction == 0.0


# ----------------------------------------------------------------------
# engine scheduling
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_timeouts_fire_in_time_order(delays):
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(delay)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert fired == sorted(fired, key=float) or fired == sorted(fired)
    assert sorted(fired) == sorted(delays)


# ----------------------------------------------------------------------
# rng
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=30))
def test_derive_seed_stable_and_64bit(master, name):
    seed = derive_seed(master, name)
    assert seed == derive_seed(master, name)
    assert 0 <= seed < 2**64


# ----------------------------------------------------------------------
# poll series
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e4, allow_nan=False),
            st.integers(min_value=0, max_value=100),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_poll_series_version_at_matches_linear_scan(entries):
    entries.sort()
    times = np.array([t for t, _ in entries])
    versions = np.maximum.accumulate(np.array([v for _, v in entries], dtype=np.int64))
    series = PollSeries(times=times, versions=versions)
    for probe in [times[0] - 1.0, float(times[len(times) // 2]), times[-1] + 1.0]:
        expected = 0
        for t, v in zip(times, versions):
            if t <= probe:
                expected = int(v)
        assert series.version_at(float(probe)) == expected


# ----------------------------------------------------------------------
# method advisor
# ----------------------------------------------------------------------
from repro.core import MethodAdvisor, WorkloadProfile  # noqa: E402


@given(
    update_rate=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    visit_rate=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    n_servers=st.integers(min_value=1, max_value=2000),
    silence=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    tolerance=st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_advisor_recommendation_invariants(update_rate, visit_rate, n_servers, silence, tolerance):
    advisor = MethodAdvisor()
    profile = WorkloadProfile(
        update_rate_per_s=update_rate,
        visit_rate_per_s=visit_rate,
        n_servers=n_servers,
        silence_fraction=silence,
    )
    rec = advisor.recommend(profile, tolerance)
    assert rec.method in ("push", "invalidation", "ttl", "self-adaptive")
    assert rec.infrastructure in ("unicast", "multicast")
    assert rec.expected_messages_per_hour >= 0.0
    assert rec.expected_kb_per_hour >= 0.0
    assert rec.expected_staleness_s >= 0.0
    if rec.ttl_s is not None:
        assert advisor.min_ttl_s <= rec.ttl_s <= advisor.max_ttl_s
        # TTL-family staleness honours the tolerance (expected = TTL/2)
        assert rec.expected_staleness_s <= max(tolerance, advisor.min_ttl_s / 2.0) + 1e-9


@given(
    update_rate=st.floats(min_value=0.001, max_value=5.0, allow_nan=False),
    n_small=st.integers(min_value=1, max_value=100),
    extra=st.integers(min_value=1, max_value=100),
)
@settings(max_examples=50, deadline=None)
def test_advisor_costs_monotone_in_fleet_size(update_rate, n_small, extra):
    advisor = MethodAdvisor()
    small = WorkloadProfile(update_rate, 0.1, n_small)
    large = WorkloadProfile(update_rate, 0.1, n_small + extra)
    for method in ("push", "invalidation", "ttl", "self-adaptive"):
        assert advisor.expected_messages_per_hour(
            small, method, 30.0
        ) <= advisor.expected_messages_per_hour(large, method, 30.0)
        assert advisor.expected_kb_per_hour(
            small, method, 30.0
        ) <= advisor.expected_kb_per_hour(large, method, 30.0)
