"""Tests for the append-only benchmark trajectory (benchmarks/) and the
trailing-median regression gate in check_bench."""

import json
import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "benchmarks")
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import bench_history  # noqa: E402
import check_bench  # noqa: E402


def _snapshot(min_s, *, name="test_transport", speedup=None, recorded="2026-08-05"):
    """A minimal pytest-benchmark document with one benchmark."""
    extra = {}
    if speedup is not None:
        extra["transport_speedup"] = speedup
    return {
        "datetime": recorded,
        "machine_info": {"node": "testhost"},
        "benchmarks": [
            {
                "name": name,
                "stats": {
                    "min": min_s,
                    "max": min_s * 2,
                    "mean": min_s * 1.5,
                    "median": min_s * 1.4,
                    "stddev": min_s * 0.1,
                    "rounds": 5,
                    "iqr": 0.0,  # not in _KEPT_STATS; must be dropped
                },
                "extra_info": extra,
            }
        ],
    }


def _trajectory(tmp_path, *mins, name="test_transport"):
    path = str(tmp_path / "BENCH_test.json")
    for value in mins:
        bench_history.append_snapshot(path, _snapshot(value, name=name))
    return path


class TestBenchHistory:
    def test_missing_file_is_empty_trajectory(self, tmp_path):
        trajectory = bench_history.load_trajectory(str(tmp_path / "nope.json"))
        assert trajectory == {"format": 1, "history": []}

    def test_legacy_snapshot_becomes_entry_zero(self, tmp_path):
        # Satellite of PR 5: the original single-snapshot BENCH_*.json
        # (with its ~2.2x transport speedup) migrates as entry 0.
        path = str(tmp_path / "BENCH_legacy.json")
        with open(path, "w") as handle:
            json.dump(_snapshot(0.010, speedup=2.2), handle)
        trajectory = bench_history.load_trajectory(path)
        assert len(trajectory["history"]) == 1
        entry = trajectory["history"][0]
        assert entry["machine"] == "testhost"
        bench = entry["benchmarks"][0]
        assert bench["extra_info"]["transport_speedup"] == 2.2
        assert "iqr" not in bench["stats"]  # slimmed

    def test_append_migrates_then_grows(self, tmp_path):
        path = str(tmp_path / "BENCH_legacy.json")
        with open(path, "w") as handle:
            json.dump(_snapshot(0.010, speedup=2.2), handle)
        total = bench_history.append_snapshot(path, _snapshot(0.011))
        assert total == 2
        history = bench_history.load_trajectory(path)["history"]
        assert history[0]["benchmarks"][0]["extra_info"] == {
            "transport_speedup": 2.2
        }

    def test_entries_age_out_at_cap(self, tmp_path, monkeypatch):
        monkeypatch.setattr(bench_history, "MAX_ENTRIES", 3)
        path = _trajectory(tmp_path, 0.001, 0.002, 0.003, 0.004, 0.005)
        history = bench_history.load_trajectory(path)["history"]
        assert [e["benchmarks"][0]["stats"]["min"] for e in history] == [
            0.003, 0.004, 0.005,
        ]

    def test_unrecognisable_content_raises(self, tmp_path):
        path = str(tmp_path / "junk.json")
        with open(path, "w") as handle:
            handle.write("[1, 2, 3]")
        with pytest.raises(ValueError, match="neither"):
            bench_history.load_trajectory(path)
        with open(path, "w") as handle:
            handle.write("not json at all")
        with pytest.raises(ValueError, match="cannot read"):
            bench_history.load_trajectory(path)

    def test_cli_append_consumes_snapshot(self, tmp_path):
        trajectory = str(tmp_path / "BENCH_test.json")
        snapshot = str(tmp_path / "snap.json")
        with open(snapshot, "w") as handle:
            json.dump(_snapshot(0.010), handle)
        assert bench_history.main(["append", trajectory, snapshot]) == 0
        assert not os.path.exists(snapshot)  # consumed by default
        assert len(bench_history.load_trajectory(trajectory)["history"]) == 1

    def test_cli_append_keep_snapshot(self, tmp_path):
        trajectory = str(tmp_path / "BENCH_test.json")
        snapshot = str(tmp_path / "snap.json")
        with open(snapshot, "w") as handle:
            json.dump(_snapshot(0.010), handle)
        code = bench_history.main(
            ["append", trajectory, snapshot, "--keep-snapshot"]
        )
        assert code == 0
        assert os.path.exists(snapshot)

    def test_cli_append_bad_snapshot(self, tmp_path):
        snapshot = str(tmp_path / "snap.json")
        with open(snapshot, "w") as handle:
            handle.write("garbage")
        code = bench_history.main(
            ["append", str(tmp_path / "BENCH_test.json"), snapshot]
        )
        assert code == 2

    def test_entries_carry_provenance(self, tmp_path):
        # Each appended entry records who/where/what produced it, so
        # `repro analyze` can group history cross-commit/cross-machine.
        path = _trajectory(tmp_path, 0.010)
        entry = bench_history.load_trajectory(path)["history"][0]
        assert "commit" in entry  # "" when git is unavailable
        assert entry["host"] == "testhost"  # machine_info node wins
        assert entry["python"]  # machine_info or interpreter version
        # Run from inside this repo, the commit is a real hash.
        commit = bench_history._git_commit()
        if commit:
            assert entry["commit"] == commit
            assert len(commit) == 40
            int(commit, 16)

    def test_provenance_falls_back_without_machine_info(self, tmp_path,
                                                        monkeypatch):
        import platform
        import socket

        monkeypatch.setattr(bench_history, "_git_commit", lambda: "")
        doc = _snapshot(0.010)
        del doc["machine_info"]
        path = str(tmp_path / "BENCH_test.json")
        bench_history.append_snapshot(path, doc)
        entry = bench_history.load_trajectory(path)["history"][0]
        assert entry["commit"] == ""
        assert entry["host"] == socket.gethostname()
        assert entry["python"] == platform.python_version()

    def test_git_commit_best_effort_on_failure(self, monkeypatch):
        import subprocess

        def explode(*args, **kwargs):
            raise OSError("no git binary")

        monkeypatch.setattr(subprocess, "run", explode)
        assert bench_history._git_commit() == ""


class TestCheckBench:
    def test_passes_on_stable_trajectory(self, tmp_path, capsys):
        path = _trajectory(tmp_path, 0.010, 0.011, 0.0105)
        assert check_bench.main([path]) == 0
        out = capsys.readouterr().out
        assert "3 entries" in out
        assert "check_bench: OK" in out

    def test_single_entry_skips_trailing_median_gate(self, tmp_path):
        path = _trajectory(tmp_path, 0.010)
        assert check_bench.main([path]) == 0

    def test_fails_on_trailing_median_regression(self, tmp_path, capsys):
        # ISSUE 5 acceptance: check_bench gates a >= 2-entry trajectory.
        # Trailing median of [10ms, 11ms, 10.5ms] is 10.5ms; a 40ms
        # latest entry is > 3x slower.
        path = _trajectory(tmp_path, 0.010, 0.011, 0.0105, 0.040)
        assert check_bench.main([path]) == 1
        err = capsys.readouterr().err
        assert "trailing median" in err

    def test_median_resists_one_anomalous_run(self, tmp_path):
        # One anomalously fast early entry must not poison the reference
        # the way a latest-vs-best gate would (0.012 > 3 * 0.001).
        path = _trajectory(tmp_path, 0.001, 0.010, 0.011, 0.012)
        assert check_bench.main([path]) == 0

    def test_transport_speedup_floor(self, tmp_path, capsys):
        path = str(tmp_path / "BENCH_test.json")
        bench_history.append_snapshot(path, _snapshot(0.010, speedup=0.2))
        assert check_bench.main([path]) == 1
        assert "fast transport" in capsys.readouterr().err

    def test_baseline_comparison(self, tmp_path, capsys):
        baseline = _trajectory(tmp_path, 0.010)
        current = str(tmp_path / "BENCH_now.json")
        bench_history.append_snapshot(current, _snapshot(0.050))
        assert check_bench.main([current, "--baseline", baseline]) == 1
        assert "vs baseline" in capsys.readouterr().err
        assert check_bench.main(
            [current, "--baseline", baseline, "--max-regression", "10"]
        ) == 0

    def test_unreadable_input_exits_2(self, tmp_path):
        path = str(tmp_path / "junk.json")
        with open(path, "w") as handle:
            handle.write("garbage")
        with pytest.raises(SystemExit) as excinfo:
            check_bench.main([path])
        assert excinfo.value.code == 2

    def test_empty_trajectory_skips_with_warning(self, tmp_path, capsys):
        # First-run behaviour: a trajectory file that exists but has no
        # entries yet (fresh checkout, `make bench` not run) is not a
        # failure -- the gate warns and skips it.
        path = str(tmp_path / "BENCH_empty.json")
        with open(path, "w") as handle:
            json.dump({"format": 1, "history": []}, handle)
        assert check_bench.main([path]) == 0
        captured = capsys.readouterr()
        assert "no recorded entries yet" in captured.err
        assert "0 of 1 file(s) gated" in captured.out

    def test_empty_trajectory_skips_among_populated(self, tmp_path, capsys):
        # A mix of empty and populated trajectories still gates the
        # populated ones.
        empty = str(tmp_path / "BENCH_empty.json")
        with open(empty, "w") as handle:
            json.dump({"format": 1, "history": []}, handle)
        populated = _trajectory(tmp_path, 0.010, 0.011, 0.0105, 0.040)
        assert check_bench.main([empty, populated]) == 1
        captured = capsys.readouterr()
        assert "no recorded entries yet" in captured.err
        assert "trailing median" in captured.err

    def test_empty_baseline_is_ignored(self, tmp_path):
        baseline = str(tmp_path / "BENCH_base.json")
        with open(baseline, "w") as handle:
            json.dump({"format": 1, "history": []}, handle)
        current = _trajectory(tmp_path, 0.010)
        assert check_bench.main([current, "--baseline", baseline]) == 0

    def test_live_trajectories_pass_when_present(self):
        # The repo-root trajectories are local artifacts (gitignored);
        # when a developer has run `make bench`, the gate must hold.
        repo_root = os.path.dirname(BENCH_DIR)
        paths = [
            os.path.join(repo_root, name)
            for name in ("BENCH_engine.json", "BENCH_section4.json")
            if os.path.exists(os.path.join(repo_root, name))
        ]
        if not paths:
            pytest.skip("no local BENCH_*.json trajectories (run `make bench`)")
        assert check_bench.main(paths) == 0
