"""Differential tests: fast callback transport vs legacy generator transport.

The fast path (`repro.network.link._FastTransfer`) must be a pure
performance change: every simulated outcome -- delivery times, RNG draw
order, ledger totals, fabric counters, DeploymentMetrics -- must be
bit-identical to the legacy generator path for every update method on
every infrastructure.  Only the kernel-event *count* may differ (that is
the point of the fast path), so ``events_processed`` is excluded from
the metric comparison and asserted strictly smaller instead.
"""

import pytest

import repro.network.message as message_mod
from repro.cdn.server import schedule_absence
from repro.experiments.config import TestbedConfig
from repro.experiments.testbed import INFRASTRUCTURES, METHODS, build_deployment
from repro.network import Message, MessageKind, NetworkFabric, TopologyBuilder
from repro.obs.tracer import RecordingTracer
from repro.sim import Environment, StreamRegistry

#: One tiny-but-complete testbed cell; the paper-shape knobs all stay on.
def _tiny_config(seed, **overrides):
    defaults = dict(
        n_servers=6,
        users_per_server=1,
        n_updates=6,
        game_duration_s=200.0,
        hat_clusters=3,
        seed=seed,
    )
    defaults.update(overrides)
    return TestbedConfig(**defaults)


_MESSAGE_KINDS = ("msg_send", "msg_recv", "msg_drop")


def _run_cell(method, infrastructure, seed, legacy, **overrides):
    """One deployment run; returns (metrics, counters, message trace)."""
    # Message.seq is a process-global counter; reset it so the two runs
    # under comparison label their messages identically.
    message_mod._SEQ = 0
    tracer = RecordingTracer()
    deployment = build_deployment(
        _tiny_config(seed, **overrides), method, infrastructure, tracer=tracer
    )
    deployment.fabric.legacy_transport = legacy
    metrics = deployment.run()
    trace = tracer.events(kinds=_MESSAGE_KINDS)
    return metrics, deployment.fabric.counters.to_dict(), trace


def _cell_overrides(method, infrastructure):
    # invalidation/broadcast floods (quadratic re-broadcast storm); cut
    # the horizon shortly after the storm starts so the cell stays fast
    # while still exercising tens of thousands of transfers.
    if (method, infrastructure) == ("invalidation", "broadcast"):
        return {"horizon_s": 80.0}
    return {}


@pytest.mark.parametrize("infrastructure", INFRASTRUCTURES)
@pytest.mark.parametrize("method", METHODS)
def test_fast_path_bit_identical(method, infrastructure):
    """Fast and legacy transport agree exactly, at three seeds."""
    overrides = _cell_overrides(method, infrastructure)
    for seed in (0, 1, 2):
        fast_m, fast_c, fast_t = _run_cell(
            method, infrastructure, seed, legacy=False, **overrides
        )
        legacy_m, legacy_c, legacy_t = _run_cell(
            method, infrastructure, seed, legacy=True, **overrides
        )

        fast_d = fast_m.to_dict()
        legacy_d = legacy_m.to_dict()
        fast_events = fast_d.pop("events_processed")
        legacy_events = legacy_d.pop("events_processed")

        assert fast_d == legacy_d, "DeploymentMetrics diverged (seed %d)" % seed
        assert fast_c == legacy_c, "FabricCounters diverged (seed %d)" % seed
        assert fast_t == legacy_t, "message traces diverged (seed %d)" % seed
        # The same traffic must cost the fast kernel strictly fewer events.
        if fast_c["messages_sent"]:
            assert fast_events < legacy_events


def _make_fabric(seed, legacy):
    env = Environment(tracer=RecordingTracer())
    streams = StreamRegistry(seed)
    topology = TopologyBuilder(env, streams).build(n_servers=4, users_per_server=0)
    fabric = NetworkFabric(env, streams=streams, legacy_transport=legacy)
    return env, topology, fabric


def _storm_with_absences(legacy, seed=5):
    """Fan-out traffic while sender and receivers flap up/down."""
    env, topology, fabric = _make_fabric(seed, legacy)
    provider = topology.provider
    results = []

    # Receiver 0 is down for the whole middle of the run; the provider
    # itself drops out briefly, exercising the sender_down path.
    schedule_absence(env, topology.servers[0], start=2.0, duration=6.0)
    schedule_absence(env, provider, start=4.0, duration=1.0)

    def driver(env):
        for round_no in range(10):
            for server in topology.servers:
                done = fabric.send(
                    Message(MessageKind.PUSH_UPDATE, provider, server, 4.0,
                            version=round_no)
                )
                done.callbacks.append(lambda ev: results.append(ev.value))
            yield env.timeout(1.0)

    env.process(driver(env))
    env.run()
    trace = env.tracer.events(kinds=_MESSAGE_KINDS)
    return results, fabric.counters.to_dict(), fabric.dropped, trace


def test_failure_injection_equivalence():
    """Drops (sender and receiver down) are identical on both paths."""
    message_mod._SEQ = 0
    fast = _storm_with_absences(legacy=False)
    message_mod._SEQ = 0
    legacy = _storm_with_absences(legacy=True)
    assert fast == legacy
    # The scenario actually exercised both drop reasons.
    counters = fast[1]
    assert counters["dropped_sender_down"] > 0
    assert counters["dropped_receiver_down"] > 0
    assert False in fast[0] and True in fast[0]


def test_uncontended_port_skips_grant_events():
    """Distinct senders never touch the Request/Release machinery."""
    env, topology, fabric = _make_fabric(7, legacy=False)
    for server in topology.servers:
        fabric.send(Message(MessageKind.POLL, server, topology.provider, 1.0))
    env.run()
    # 4 messages, uncontended: transmit hop + deliver hop + inbox
    # StorePut = 3 events each (the done event completes lazily because
    # nobody registered a callback on it, and the fast kernel starts the
    # transfer synchronously inside send()).  The legacy kernel keeps
    # the start hop: 4 events each.
    assert fabric.counters.messages_delivered == 4
    assert env.events_processed == (16 if env.legacy_kernel else 12)
    for server in topology.servers:
        assert server.output_port.users == []
        assert server.output_port.queue_length == 0


def test_contended_port_stays_fifo():
    """Queued fast transfers drain in FIFO order at full port rate."""
    env, topology, fabric = _make_fabric(8, legacy=False)
    provider = topology.provider
    size_kb = provider.uplink_kbps  # 1 s of pure transmission each
    order = []

    def receiver(env, index, server):
        message = yield server.inbox.get()
        order.append((index, message.version))

    for index, server in enumerate(topology.servers):
        fabric.send(
            Message(MessageKind.PUSH_UPDATE, provider, server, size_kb, version=index)
        )
        env.process(receiver(env, index, server))
    env.run()
    assert [version for _, version in sorted(order)] == [0, 1, 2, 3]
    # Transmissions serialised: total sender-side time covers 4 back-to-
    # back transmissions (plus queue wait), so >= 1+2+3+4 seconds.
    assert fabric.counters.queueing_s >= 10.0
    assert provider.output_port.users == []
