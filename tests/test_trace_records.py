"""Tests for trace records, (de)serialisation, and the clock model."""

import numpy as np
import pytest

from repro.network.geo import GeoPoint
from repro.sim import StreamRegistry
from repro.trace.crawler import ClockModel
from repro.trace.records import CdnTrace, DayTrace, PollSeries, ServerInfo


def make_series():
    return PollSeries(
        times=np.array([0.0, 10.0, 20.0, 30.0]),
        versions=np.array([0, 0, 1, 2]),
        absences=[(12.0, 5.0)],
    )


class TestPollSeries:
    def test_validation(self):
        with pytest.raises(ValueError):
            PollSeries(times=np.array([0.0, 10.0]), versions=np.array([0]))
        with pytest.raises(ValueError):
            PollSeries(times=np.array([10.0, 0.0]), versions=np.array([0, 0]))

    def test_version_at(self):
        series = make_series()
        assert series.version_at(-5.0) == 0
        assert series.version_at(0.0) == 0
        assert series.version_at(25.0) == 1
        assert series.version_at(100.0) == 2

    def test_len_and_absence(self):
        series = make_series()
        assert len(series) == 4
        assert series.had_absence


class TestTraceContainer:
    def make_trace(self):
        servers = {
            "s-0": ServerInfo("s-0", GeoPoint(40.0, -75.0), "isp-a", "NYC", 1000.0),
            "s-1": ServerInfo("s-1", GeoPoint(41.0, -75.0), "isp-a", "NYC", 1100.0),
            "s-2": ServerInfo("s-2", GeoPoint(51.0, 0.0), "isp-b", "London", 6000.0),
        }
        day = DayTrace(
            day_index=0,
            session_length_s=40.0,
            update_times=np.array([15.0, 25.0]),
            provider_polls=make_series(),
            provider_response_times=np.array([0.5, 0.7]),
        )
        day.polls = {sid: make_series() for sid in servers}
        return CdnTrace(servers=servers, days=[day])

    def test_grouping_helpers(self):
        trace = self.make_trace()
        assert trace.servers_by_cluster() == {"NYC": ["s-0", "s-1"], "London": ["s-2"]}
        assert trace.servers_by_isp() == {"isp-a": ["s-0", "s-1"], "isp-b": ["s-2"]}
        assert trace.n_servers == 3
        assert trace.n_days == 1
        assert trace.total_polls() == 12

    def test_json_roundtrip(self, tmp_path):
        trace = self.make_trace()
        path = str(tmp_path / "trace.json")
        trace.save(path)
        loaded = CdnTrace.load(path)
        assert loaded.n_servers == trace.n_servers
        assert loaded.ttl_s == trace.ttl_s
        original = trace.days[0].polls["s-0"]
        restored = loaded.days[0].polls["s-0"]
        np.testing.assert_allclose(restored.times, original.times)
        np.testing.assert_array_equal(restored.versions, original.versions)
        assert restored.absences == original.absences
        np.testing.assert_allclose(
            loaded.days[0].provider_response_times,
            trace.days[0].provider_response_times,
        )
        assert loaded.servers["s-2"].geo_cluster == "London"


class TestClockModel:
    def test_correction_removes_most_skew(self):
        stream = StreamRegistry(8).stream("clock")
        model = ClockModel(stream, skew_sigma_s=5.0, rtt_asymmetry_sigma_s=0.05)
        times = np.arange(0.0, 100.0, 10.0)
        for _ in range(50):
            estimate = model.sample()
            skewed = model.skew_timestamps(times, estimate)
            corrected = model.correct_timestamps(skewed, estimate)
            residual = np.abs(corrected - times).max()
            assert residual == pytest.approx(abs(estimate.residual_s))
            assert residual < 0.5  # way below the raw skew scale

    def test_residual_much_smaller_than_skew(self):
        stream = StreamRegistry(9).stream("clock")
        model = ClockModel(stream, skew_sigma_s=2.0, rtt_asymmetry_sigma_s=0.05)
        samples = [model.sample() for _ in range(300)]
        mean_skew = np.mean([abs(s.true_skew_s) for s in samples])
        mean_residual = np.mean([abs(s.residual_s) for s in samples])
        assert mean_residual < mean_skew / 10.0

    def test_validation(self):
        stream = StreamRegistry(0).stream("clock")
        with pytest.raises(ValueError):
            ClockModel(stream, skew_sigma_s=-1.0)
