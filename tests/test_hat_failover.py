"""Tests for HAT supernode failover (Section 5.2's re-parenting rule)."""

import pytest

from repro.cdn import EndUserActor, FixedSelector, LiveContent
from repro.core import HatConfig, HatSystem
from repro.network import NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry


def build_hat(n_servers=24, n_clusters=4, updates=None, seed=61, ttl=15.0,
              users=True):
    env = Environment()
    streams = StreamRegistry(seed)
    topology = TopologyBuilder(env, streams).build(
        n_servers=n_servers, users_per_server=1 if users else 0
    )
    fabric = NetworkFabric(env, streams=streams)
    update_times = updates if updates is not None else [40.0 + 25.0 * i for i in range(20)]
    content = LiveContent("game", update_times=list(update_times))
    hat = HatSystem(
        env, fabric, streams, content,
        provider_node=topology.provider,
        server_nodes=list(topology.servers),
        config=HatConfig(n_clusters=n_clusters, tree_arity=4,
                         server_ttl_s=ttl, member_method="self-adaptive"),
    )
    user_actors = []
    if users:
        for index in range(n_servers):
            user_actors.append(
                EndUserActor(
                    env, topology.users[index][0], fabric, content,
                    FixedSelector(topology.servers[index]), user_ttl_s=10.0,
                )
            )
    return env, streams, topology, fabric, content, hat, user_actors


class TestFailover:
    def pick_cluster_with_members(self, hat):
        for index, spec in enumerate(hat.clusters):
            if spec.members:
                return index, spec
        raise AssertionError("no cluster with members")

    def test_promotes_nearest_member(self):
        env, streams, topology, fabric, content, hat, users = build_hat()
        index, spec = self.pick_cluster_with_members(hat)
        old = hat.supernodes[index]
        old.node.is_up = False
        promotee = hat.handle_supernode_failure(old)
        assert promotee is not None
        assert promotee.node in [spec.supernode] + spec.members or promotee.node is spec.supernode
        assert hat.supernodes[index] is promotee
        assert promotee.policy.method_name == "push"
        # promotee joined the tree
        assert hat.tree.parent_of(promotee) is not None
        # remaining members point at the promotee
        for node in spec.members:
            member = hat.server_by_node_id[node.node_id]
            assert member.upstream is promotee.node

    def test_unknown_supernode_rejected(self):
        env, streams, topology, fabric, content, hat, users = build_hat()
        member = hat.members[0]
        with pytest.raises(KeyError):
            hat.handle_supernode_failure(member)

    def test_cluster_dissolves_when_all_members_down(self):
        env, streams, topology, fabric, content, hat, users = build_hat()
        index, spec = self.pick_cluster_with_members(hat)
        old = hat.supernodes[index]
        old.node.is_up = False
        for node in spec.members:
            node.is_up = False
        n_before = len(hat.supernodes)
        assert hat.handle_supernode_failure(old) is None
        assert len(hat.supernodes) == n_before - 1

    def test_cluster_converges_after_failover(self):
        env, streams, topology, fabric, content, hat, users = build_hat()
        hat.start()
        for user in users:
            user.start()
        index, spec = self.pick_cluster_with_members(hat)
        victim = hat.supernodes[index]

        def kill_and_recover(env):
            yield env.timeout(200.0)
            victim.node.is_up = False
            yield env.timeout(20.0)  # detection delay
            hat.handle_supernode_failure(victim)

        env.process(kill_and_recover(env))
        env.run(until=900.0)
        final = content.last_version
        promotee = hat.supernodes[index]
        assert promotee is not victim
        assert promotee.cached_version == final
        for node in hat.clusters[index].members:
            member = hat.server_by_node_id[node.node_id]
            assert member.cached_version == final

    def test_invalidation_mode_members_survive_failover(self):
        # burst, then failover during silence, then one late update:
        # the re-announced members must still hear about it.
        env, streams, topology, fabric, content, hat, users = build_hat(
            updates=[40.0, 50.0, 60.0, 700.0]
        )
        hat.start()
        for user in users:
            user.start()
        index, spec = self.pick_cluster_with_members(hat)
        victim = hat.supernodes[index]

        def kill_and_recover(env):
            yield env.timeout(400.0)  # mid-silence: members are in inv mode
            victim.node.is_up = False
            yield env.timeout(20.0)
            hat.handle_supernode_failure(victim)

        env.process(kill_and_recover(env))
        env.run(until=1100.0)
        promotee = hat.supernodes[index]
        assert promotee.cached_version == 4
        for node in hat.clusters[index].members:
            member = hat.server_by_node_id[node.node_id]
            assert member.cached_version == 4

    def test_monitor_auto_recovers(self):
        env, streams, topology, fabric, content, hat, users = build_hat()
        hat.start()
        hat.start_monitor(heartbeat_s=10.0, failure_timeout_s=20.0)
        for user in users:
            user.start()
        index, spec = self.pick_cluster_with_members(hat)
        victim = hat.supernodes[index]

        def killer(env):
            yield env.timeout(200.0)
            victim.node.is_up = False

        env.process(killer(env))
        env.run(until=900.0)
        promotee = hat.supernodes[index]
        assert promotee is not victim  # auto-failover happened
        final = content.last_version
        assert promotee.cached_version == final
        for node in hat.clusters[index].members:
            member = hat.server_by_node_id[node.node_id]
            assert member.cached_version == final

    def test_monitor_validation(self):
        env, streams, topology, fabric, content, hat, users = build_hat(users=False)
        with pytest.raises(ValueError):
            hat.start_monitor(heartbeat_s=0)
        with pytest.raises(ValueError):
            hat.start_monitor(heartbeat_s=30.0, failure_timeout_s=10.0)

    def test_old_policy_processes_stopped(self):
        env, streams, topology, fabric, content, hat, users = build_hat()
        hat.start()
        env.run(until=100.0)
        index, spec = self.pick_cluster_with_members(hat)
        victim = hat.supernodes[index]
        victim.node.is_up = False
        promotee = hat.handle_supernode_failure(victim)
        old_procs = [p for p in promotee._policy_procs]
        # the promotee's push policy has no background processes
        assert promotee._policy_procs == []
        env.run(until=200.0)
        # and the simulation keeps running without crashes (the old
        # self-adaptive loop was interrupted cleanly)
        assert env.now == 200.0
