"""Behavioural tests for the update-method policies (TTL / Push /
Invalidation / self-adaptive / adaptive-TTL)."""

import pytest

from repro.cdn import (
    EndUserActor,
    FixedSelector,
    LiveContent,
    ProviderActor,
    ServerActor,
)
from repro.consistency import (
    AdaptiveTTLPolicy,
    InvalidationPolicy,
    PushPolicy,
    SelfAdaptivePolicy,
    TTLPolicy,
    UnicastInfrastructure,
)
from repro.network import MessageKind, NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry


def deploy(method_factory, wire, updates, n_servers=3, seed=2, horizon=400.0,
           users=True, user_ttl=10.0):
    env = Environment()
    streams = StreamRegistry(seed)
    topology = TopologyBuilder(env, streams).build(
        n_servers=n_servers, users_per_server=1 if users else 0
    )
    fabric = NetworkFabric(env, streams=streams)
    content = LiveContent("game", update_times=list(updates))
    provider = ProviderActor(env, topology.provider, fabric, content)
    servers = [
        ServerActor(env, node, fabric, content, policy=method_factory(streams))
        for node in topology.servers
    ]
    UnicastInfrastructure().wire(provider, servers)
    wire(provider)
    user_actors = []
    if users:
        for index, server in enumerate(servers):
            user = EndUserActor(
                env, topology.users[index][0], fabric, content,
                FixedSelector(server.node), user_ttl_s=user_ttl,
            )
            user_actors.append(user)
    for server in servers:
        server.start()
    for user in user_actors:
        user.start()
    env.run(until=horizon)
    return env, fabric, content, provider, servers, user_actors


class TestTTLPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            TTLPolicy(0)

    def test_eager_polling_converges_within_ttl(self):
        env, fabric, content, provider, servers, _ = deploy(
            lambda st: TTLPolicy(20.0, stream=st.stream("phase")),
            lambda p: None,
            updates=(50.0,),
            users=False,
        )
        for server in servers:
            log = server.apply_log()
            assert log[-1][1] == 1
            # applied within one TTL + small delays of the update time
            assert log[-1][0] <= 50.0 + 20.0 + 2.0

    def test_lazy_mode_only_fetches_on_demand(self):
        env, fabric, content, provider, servers, users = deploy(
            lambda st: TTLPolicy(20.0, stream=st.stream("phase"), eager=False),
            lambda p: None,
            updates=(50.0,),
            n_servers=1,
            users=False,
            horizon=40.0,
        )
        # no users, lazy: not a single poll should have happened
        assert fabric.ledger.kind_totals(MessageKind.POLL).count == 0

    def test_lazy_mode_serves_fresh_after_expiry(self):
        env, fabric, content, provider, servers, users = deploy(
            lambda st: TTLPolicy(15.0, stream=st.stream("phase"), eager=False),
            lambda p: None,
            updates=(50.0,),
            n_servers=1,
            horizon=300.0,
        )
        versions = [obs.version for obs in users[0].observations]
        assert versions[-1] == 1
        assert fabric.ledger.kind_totals(MessageKind.POLL).count > 0

    def test_double_bind_rejected(self):
        policy = TTLPolicy(10.0)
        env = Environment()
        streams = StreamRegistry(0)
        topology = TopologyBuilder(env, streams).build(n_servers=2, users_per_server=0)
        fabric = NetworkFabric(env, streams=streams)
        content = LiveContent("c")
        ServerActor(env, topology.servers[0], fabric, content, policy=policy)
        with pytest.raises(RuntimeError):
            ServerActor(env, topology.servers[1], fabric, content, policy=policy)


class TestPushPolicy:
    def test_every_server_receives_every_update(self):
        env, fabric, content, provider, servers, _ = deploy(
            lambda st: PushPolicy(),
            lambda p: p.use_push(),
            updates=(50.0, 60.0, 70.0),
            users=False,
        )
        for server in servers:
            versions = [v for _, v in server.apply_log()]
            assert versions == [0, 1, 2, 3]

    def test_push_counts_match(self):
        env, fabric, content, provider, servers, _ = deploy(
            lambda st: PushPolicy(),
            lambda p: p.use_push(),
            updates=(50.0, 60.0),
            n_servers=4,
            users=False,
        )
        assert fabric.ledger.kind_totals(MessageKind.PUSH_UPDATE).count == 8


class TestInvalidationPolicy:
    def test_fetch_deferred_until_visit(self):
        env, fabric, content, provider, servers, users = deploy(
            lambda st: InvalidationPolicy(),
            lambda p: p.use_invalidation(),
            updates=(50.0,),
            n_servers=1,
            user_ttl=30.0,
        )
        server = servers[0]
        log = server.apply_log()
        assert log[-1][1] == 1
        # the fetch happened at a visit, not at the update time
        apply_time = log[-1][0]
        assert apply_time > 50.0
        assert fabric.ledger.kind_totals(MessageKind.INVALIDATE).count == 1
        assert fabric.ledger.kind_totals(MessageKind.FETCH).count == 1

    def test_users_never_see_stale_content(self):
        env, fabric, content, provider, servers, users = deploy(
            lambda st: InvalidationPolicy(),
            lambda p: p.use_invalidation(),
            updates=tuple(40.0 + 20.0 * i for i in range(10)),
        )
        for user in users:
            for obs in user.observations:
                # A served version may lag only by in-flight delivery, so
                # it must be at least the version current ~2 s earlier.
                floor = content.version_at(obs.time - 2.0)
                assert obs.version >= floor

    def test_no_visits_means_no_fetch(self):
        env, fabric, content, provider, servers, _ = deploy(
            lambda st: InvalidationPolicy(),
            lambda p: p.use_invalidation(),
            updates=(50.0, 90.0),
            users=False,
        )
        assert fabric.ledger.kind_totals(MessageKind.FETCH).count == 0
        for server in servers:
            assert server.cached_version == 0
            assert server.is_invalidated


class TestSelfAdaptive:
    def test_switches_to_invalidation_during_silence(self):
        env, fabric, content, provider, servers, users = deploy(
            lambda st: SelfAdaptivePolicy(20.0, stream=st.stream("phase")),
            lambda p: p.use_self_adaptive(),
            updates=(30.0, 40.0, 50.0),  # burst then silence
            n_servers=2,
            horizon=600.0,
        )
        for server in servers:
            policy = server.policy
            assert policy.switches_to_invalidation >= 1
            assert policy.mode == "invalidation"  # silent at the horizon
            assert server.cached_version == 3

    def test_recovers_via_visit_after_new_update(self):
        # burst, long silence (switch), then a late update
        env, fabric, content, provider, servers, users = deploy(
            lambda st: SelfAdaptivePolicy(15.0, stream=st.stream("phase")),
            lambda p: p.use_self_adaptive(),
            updates=(30.0, 40.0, 300.0),
            n_servers=2,
            horizon=600.0,
        )
        for server in servers:
            assert server.cached_version == 3
            assert server.policy.switches_to_ttl >= 1
        # provider sent invalidations only to switched members
        invalidations = fabric.ledger.kind_totals(MessageKind.INVALIDATE).count
        assert invalidations >= 2
        switch_notices = fabric.ledger.kind_totals(MessageKind.SWITCH_NOTICE).count
        assert switch_notices >= 4  # 2 servers x (to-inv + back-to-ttl)

    def test_saves_polls_versus_plain_ttl_on_bursty_workload(self):
        updates = tuple([30.0 + 5 * i for i in range(10)])  # burst, then quiet

        def run(factory, wire):
            env, fabric, *_ = deploy(
                factory, wire, updates=updates, n_servers=3, horizon=2000.0,
            )
            return fabric.ledger.kind_totals(MessageKind.POLL).count

        ttl_polls = run(
            lambda st: TTLPolicy(20.0, stream=st.stream("phase")), lambda p: None
        )
        adaptive_polls = run(
            lambda st: SelfAdaptivePolicy(20.0, stream=st.stream("phase")),
            lambda p: p.use_self_adaptive(),
        )
        assert adaptive_polls < ttl_polls / 2


class TestAdaptiveTTL:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTTLPolicy(min_ttl_s=0, max_ttl_s=10)
        with pytest.raises(ValueError):
            AdaptiveTTLPolicy(min_ttl_s=20, max_ttl_s=10)
        with pytest.raises(ValueError):
            AdaptiveTTLPolicy(min_ttl_s=1, max_ttl_s=10, grow_factor=0.5)

    def test_ttl_backs_off_during_silence(self):
        env, fabric, content, provider, servers, _ = deploy(
            lambda st: AdaptiveTTLPolicy(10.0, 160.0, stream=st.stream("phase")),
            lambda p: None,
            updates=(),
            n_servers=1,
            users=False,
            horizon=1000.0,
        )
        assert servers[0].policy.current_ttl_s == 160.0

    def test_ttl_shrinks_under_updates(self):
        env, fabric, content, provider, servers, _ = deploy(
            lambda st: AdaptiveTTLPolicy(10.0, 160.0, stream=st.stream("phase")),
            lambda p: None,
            updates=tuple(30.0 + 8 * i for i in range(100)),
            n_servers=1,
            users=False,
            horizon=800.0,
        )
        assert servers[0].policy.current_ttl_s <= 20.0
