"""Tests for unicast / multicast-tree / broadcast infrastructures and
the Hilbert clustering."""

import pytest

from repro.cdn import LiveContent, ProviderActor, ServerActor
from repro.consistency import (
    BroadcastInfrastructure,
    MulticastTreeInfrastructure,
    PushPolicy,
    TTLPolicy,
    UnicastInfrastructure,
    cluster_by_hilbert,
    hilbert_number,
    hilbert_to_xy,
    xy_to_hilbert,
)
from repro.network import MessageKind, NetworkFabric, TopologyBuilder
from repro.network.geo import GeoPoint
from repro.sim import Environment, StreamRegistry


def make_actors(n_servers, seed=3, policy_factory=None):
    env = Environment()
    streams = StreamRegistry(seed)
    topology = TopologyBuilder(env, streams).build(n_servers=n_servers, users_per_server=0)
    fabric = NetworkFabric(env, streams=streams)
    content = LiveContent("c", update_times=[30.0])
    provider = ProviderActor(env, topology.provider, fabric, content)
    factory = policy_factory or (lambda: PushPolicy())
    servers = [
        ServerActor(env, node, fabric, content, policy=factory())
        for node in topology.servers
    ]
    return env, streams, fabric, content, provider, servers


class TestUnicast:
    def test_wiring(self):
        env, streams, fabric, content, provider, servers = make_actors(5)
        infra = UnicastInfrastructure()
        infra.wire(provider, servers)
        assert len(provider.children) == 5
        for server in servers:
            assert server.upstream is provider.node
            assert server.children == []
            assert infra.depth_of(server) == 1


class TestMulticastTree:
    def test_structure_invariants(self):
        env, streams, fabric, content, provider, servers = make_actors(20)
        tree = MulticastTreeInfrastructure(fabric, arity=2)
        tree.wire(provider, servers)
        # every server has exactly one parent; arity is respected
        for server in servers:
            assert tree.parent_of(server) is not None
        for actor in [provider] + servers:
            assert len(tree.children_of(actor)) <= 2
        # all servers reachable: depths are defined and bounded
        depths = [tree.depth_of(server) for server in servers]
        assert all(depth >= 1 for depth in depths)
        assert tree.max_depth() == max(depths)
        # a binary tree over 20 nodes needs depth >= 4 but <= 20
        assert 4 <= tree.max_depth() <= 20

    def test_arity_one_is_a_chain(self):
        env, streams, fabric, content, provider, servers = make_actors(6)
        tree = MulticastTreeInfrastructure(fabric, arity=1)
        tree.wire(provider, servers)
        assert tree.max_depth() == 6

    def test_proximity_parents_are_close(self):
        env, streams, fabric, content, provider, servers = make_actors(30)
        tree = MulticastTreeInfrastructure(fabric, arity=2)
        tree.wire(provider, servers)
        # A child should be closer to its parent than to the farthest
        # node in the system, on average (weak proximity sanity check).
        import numpy as np

        ratios = []
        for server in servers:
            parent = tree.parent_of(server)
            parent_latency = fabric.min_latency_s(parent.node, server.node)
            worst = max(
                fabric.min_latency_s(other.node, server.node)
                for other in servers
                if other is not server
            )
            if worst > 0:
                ratios.append(parent_latency / worst)
        assert float(np.mean(ratios)) < 0.5

    def test_push_propagates_through_tree(self):
        env, streams, fabric, content, provider, servers = make_actors(15)
        tree = MulticastTreeInfrastructure(fabric, arity=2)
        tree.wire(provider, servers)
        provider.use_push()
        for server in servers:
            server.start()
        env.run(until=60)
        assert all(server.cached_version == 1 for server in servers)
        # exactly one push per server (tree, no duplicates)
        assert fabric.ledger.kind_totals(MessageKind.PUSH_UPDATE).count == 15

    def test_ttl_polls_parent_not_provider(self):
        env, streams, fabric, content, provider, servers = make_actors(
            10, policy_factory=lambda: TTLPolicy(10.0)
        )
        tree = MulticastTreeInfrastructure(fabric, arity=2)
        tree.wire(provider, servers)
        deep = max(servers, key=tree.depth_of)
        assert tree.depth_of(deep) >= 2
        assert deep.upstream is tree.parent_of(deep).node

    def test_repair_reattaches_orphans(self):
        env, streams, fabric, content, provider, servers = make_actors(20)
        tree = MulticastTreeInfrastructure(fabric, arity=2)
        tree.wire(provider, servers)
        victim = max(servers, key=lambda s: len(tree.children_of(s)))
        orphans = tree.children_of(victim)
        assert orphans  # pick a node that actually has children
        victim.node.is_up = False
        moved = tree.repair(victim)
        assert moved == len(orphans)
        for orphan in orphans:
            new_parent = tree.parent_of(orphan)
            assert new_parent is not victim
            assert new_parent.node.is_up
            assert orphan.node in new_parent.children
        # depths remain computable for the survivors (no cycles)
        for server in servers:
            if server is victim:
                continue
            assert tree.depth_of(server) >= 1
        env.run(until=10)
        assert fabric.ledger.kind_totals(MessageKind.TREE_MAINTENANCE).count == moved

    def test_invalid_arity(self):
        env, streams, fabric, content, provider, servers = make_actors(2)
        with pytest.raises(ValueError):
            MulticastTreeInfrastructure(fabric, arity=0)


class TestBroadcast:
    def test_flood_reaches_everyone_with_redundancy(self):
        env, streams, fabric, content, provider, servers = make_actors(12)
        broadcast = BroadcastInfrastructure(fabric, neighbours=4, seeds=2)
        broadcast.wire(provider, servers)
        provider.use_push()
        for server in servers:
            server.start()
        env.run(until=120)
        reached = sum(1 for server in servers if server.cached_version == 1)
        assert reached >= 0.9 * broadcast.reachable_fraction(servers) * len(servers)
        pushes = fabric.ledger.kind_totals(MessageKind.PUSH_UPDATE).count
        # flooding is redundant: strictly more messages than servers reached
        assert pushes > reached

    def test_validation(self):
        env, streams, fabric, content, provider, servers = make_actors(2)
        with pytest.raises(ValueError):
            BroadcastInfrastructure(fabric, neighbours=0)
        with pytest.raises(ValueError):
            BroadcastInfrastructure(fabric, seeds=0)


class TestHilbert:
    def test_roundtrip_bijection(self):
        order = 4
        side = 1 << order
        seen = set()
        for x in range(side):
            for y in range(side):
                d = xy_to_hilbert(order, x, y)
                assert hilbert_to_xy(order, d) == (x, y)
                seen.add(d)
        assert seen == set(range(side * side))

    def test_adjacent_indices_are_adjacent_cells(self):
        order = 5
        side = 1 << order
        for d in range(side * side - 1):
            x1, y1 = hilbert_to_xy(order, d)
            x2, y2 = hilbert_to_xy(order, d + 1)
            assert abs(x1 - x2) + abs(y1 - y2) == 1  # the curve is continuous

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            xy_to_hilbert(3, 8, 0)
        with pytest.raises(ValueError):
            hilbert_to_xy(3, 64)
        with pytest.raises(ValueError):
            xy_to_hilbert(0, 0, 0)

    def test_geographic_locality(self):
        near_a = GeoPoint(40.0, -75.0)
        near_b = GeoPoint(40.2, -75.2)
        far = GeoPoint(-33.0, 151.0)
        da = hilbert_number(near_a)
        db = hilbert_number(near_b)
        dfar = hilbert_number(far)
        assert abs(da - db) < abs(da - dfar)

    def test_cluster_by_hilbert_balanced(self):
        points = [GeoPoint(float(i % 50 - 25), float(i * 3 % 300 - 150)) for i in range(101)]
        clusters = cluster_by_hilbert(points, 5)
        sizes = [len(cluster) for cluster in clusters]
        assert sum(sizes) == 101
        assert max(sizes) - min(sizes) <= 1

    def test_cluster_groups_close_points(self):
        east = [GeoPoint(40.0 + 0.01 * i, -74.0) for i in range(10)]
        west = [GeoPoint(37.0 + 0.01 * i, -122.0) for i in range(10)]
        clusters = cluster_by_hilbert(east + west, 2)
        # each cluster should be all-east or all-west
        for cluster in clusters:
            longitudes = {round(p.lon) for p in cluster}
            assert len(longitudes) == 1

    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            cluster_by_hilbert([GeoPoint(0, 0)], 0)
        assert cluster_by_hilbert([], 3) == [[], [], []]
