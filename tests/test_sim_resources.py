"""Tests for Resource / Store / PriorityStore."""

import pytest

from repro.sim import Environment, PriorityItem, PriorityStore, Resource, Store


class TestResource:
    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_serialises_users_fifo(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        log = []

        def worker(env, name):
            with resource.request() as grant:
                yield grant
                log.append(("start", name, env.now))
                yield env.timeout(10)
            log.append(("end", name, env.now))

        for name in ("a", "b", "c"):
            env.process(worker(env, name))
        env.run()
        assert log == [
            ("start", "a", 0),
            ("end", "a", 10),
            ("start", "b", 10),
            ("end", "b", 20),
            ("start", "c", 20),
            ("end", "c", 30),
        ]

    def test_capacity_two_runs_two_concurrently(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        starts = []

        def worker(env):
            with resource.request() as grant:
                yield grant
                starts.append(env.now)
                yield env.timeout(5)

        for _ in range(4):
            env.process(worker(env))
        env.run()
        assert starts == [0, 0, 5, 5]

    def test_count_and_queue_length(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def holder(env):
            with resource.request() as grant:
                yield grant
                yield env.timeout(10)

        def observer(env):
            yield env.timeout(1)
            request = resource.request()  # queued behind the holder
            assert resource.count == 1
            assert resource.queue_length == 1
            request.cancel()
            assert resource.queue_length == 0

        env.process(holder(env))
        env.process(observer(env))
        env.run()

    def test_release_via_context_manager_even_on_exception(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def crasher(env):
            with resource.request() as grant:
                yield grant
                raise RuntimeError("while holding")

        def follower(env):
            with resource.request() as grant:
                yield grant
                return env.now

        env.process(crasher(env))
        follower_proc = env.process(follower(env))
        with pytest.raises(RuntimeError):
            env.run()
        env.run(until=follower_proc)
        assert resource.count <= 1


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def producer(env):
            yield env.timeout(2)
            yield store.put("item")

        def consumer(env):
            item = yield store.get()
            return (env.now, item)

        env.process(producer(env))
        consumer_proc = env.process(consumer(env))
        assert env.run(until=consumer_proc) == (2, "item")

    def test_get_before_put_blocks(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer(env):
            item = yield store.get()
            received.append((env.now, item))

        def producer(env):
            yield env.timeout(5)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert received == [(5, "late")]

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        out = []

        def producer(env):
            for i in range(3):
                yield store.put(i)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                out.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert out == [0, 1, 2]

    def test_capacity_blocks_puts(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("first")
            log.append(("put-first", env.now))
            yield store.put("second")
            log.append(("put-second", env.now))

        def consumer(env):
            yield env.timeout(10)
            item = yield store.get()
            log.append(("got", item, env.now))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert ("put-first", 0) in log
        assert ("got", "first", 10) in log
        assert ("put-second", 10) in log

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Store(Environment(), capacity=0)

    def test_len(self):
        env = Environment()
        store = Store(env)
        store.put("a")
        store.put("b")
        env.run()
        assert len(store) == 2


class TestPriorityStore:
    def test_smallest_first(self):
        env = Environment()
        store = PriorityStore(env)
        out = []

        def producer(env):
            for priority in (5, 1, 3):
                yield store.put(priority)

        def consumer(env):
            yield env.timeout(1)
            for _ in range(3):
                item = yield store.get()
                out.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert out == [1, 3, 5]

    def test_priority_item_wraps_unorderable(self):
        env = Environment()
        store = PriorityStore(env)
        out = []

        def producer(env):
            yield store.put(PriorityItem(2, {"name": "low"}))
            yield store.put(PriorityItem(1, {"name": "high"}))

        def consumer(env):
            yield env.timeout(1)
            first = yield store.get()
            out.append(first.item["name"])

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert out == ["high"]
