"""Tests for the runtime schedule sanitizer (repro.sim.sanitize) and
the ``repro sanitize`` driver (repro.experiments.sanitize).

The driver-level identity checks here run deliberately tiny cells; the
CI-scale proof lives in ``make sanitize-smoke``.
"""

from __future__ import annotations

import io
import unittest

from repro.experiments.config import TestbedConfig
from repro.experiments.sanitize import (
    build_parser,
    run as run_driver,
    sanitize_cell,
)
from repro.sim.engine import NORMAL, URGENT, Environment
from repro.sim.sanitize import (
    SANITIZE_ENV,
    SANITIZE_TIES_ENV,
    SanitizerError,
    ScheduleSanitizer,
    sanitizer_from_env,
)
from repro.sim.timers import CallbackLane


class TestTieKey(unittest.TestCase):
    def test_without_tie_seed_returns_plain_sequence(self):
        sanitizer = ScheduleSanitizer(tie_seed=None)
        self.assertEqual(sanitizer.tie_key(1.0, NORMAL, 7), 7)
        self.assertEqual(sanitizer.tie_collisions, 0)

    def test_perturbed_keys_keep_seq_and_count_collisions(self):
        sanitizer = ScheduleSanitizer(tie_seed=42)
        keys = [sanitizer.tie_key(1.0, NORMAL, seq) for seq in range(3)]
        for seq, key in enumerate(keys):
            self.assertIsInstance(key, tuple)
            self.assertEqual(key[1], seq)
        # First entry in a (time, priority) slot is not a collision;
        # the two that joined it are.
        self.assertEqual(sanitizer.tie_collisions, 2)
        # A different time is a fresh slot.
        sanitizer.tie_key(2.0, NORMAL, 3)
        self.assertEqual(sanitizer.tie_collisions, 2)

    def test_urgent_entries_are_never_perturbed(self):
        sanitizer = ScheduleSanitizer(tie_seed=42)
        self.assertEqual(sanitizer.tie_key(1.0, URGENT, 5), 5)
        self.assertEqual(sanitizer.tie_key(1.0, URGENT, 6), 6)
        self.assertEqual(sanitizer.tie_collisions, 0)

    def test_perturbation_is_reproducible_per_seed(self):
        draws = []
        for _ in range(2):
            sanitizer = ScheduleSanitizer(tie_seed=7)
            draws.append(
                [sanitizer.tie_key(1.0, NORMAL, seq)[0] for seq in range(4)]
            )
        self.assertEqual(draws[0], draws[1])


class TestSanitizerFromEnv(unittest.TestCase):
    def test_off_by_default(self):
        self.assertIsNone(sanitizer_from_env({}))

    def test_traps_only(self):
        sanitizer = sanitizer_from_env({SANITIZE_ENV: "1"})
        self.assertTrue(sanitizer.traps)
        self.assertFalse(sanitizer.perturbs_ties)

    def test_ties_implies_traps(self):
        sanitizer = sanitizer_from_env({SANITIZE_TIES_ENV: "1234"})
        self.assertTrue(sanitizer.traps)
        self.assertTrue(sanitizer.perturbs_ties)

    def test_bad_seed_is_an_error(self):
        with self.assertRaises(ValueError):
            sanitizer_from_env({SANITIZE_TIES_ENV: "soon"})

    def test_zero_string_means_off(self):
        self.assertIsNone(sanitizer_from_env({SANITIZE_ENV: "0"}))


class TestEnginePerturbation(unittest.TestCase):
    """The kernel honors the sanitizer at every push site."""

    @staticmethod
    def _pop_order(tie_seed):
        env = Environment(
            sanitizer=ScheduleSanitizer(tie_seed=tie_seed)
            if tie_seed is not None
            else None
        )
        order = []
        for name in "abcdef":
            event = env.event()
            event.callbacks.append(
                lambda _ev, name=name: order.append(name)
            )
            event._ok = True
            event._value = None
            env.schedule(event, delay=1.0)
        env.run()
        return order

    def test_fifo_without_sanitizer(self):
        self.assertEqual(self._pop_order(None), list("abcdef"))

    def test_tie_seed_reorders_same_instant_events(self):
        perturbed = self._pop_order(1)
        self.assertEqual(sorted(perturbed), list("abcdef"))
        # A seed that happens to produce FIFO would make this vacuous;
        # seed 1 over six events does not.
        self.assertNotEqual(perturbed, list("abcdef"))

    def test_same_seed_is_reproducible(self):
        self.assertEqual(self._pop_order(3), self._pop_order(3))

    def test_time_order_is_preserved_across_instants(self):
        env = Environment(sanitizer=ScheduleSanitizer(tie_seed=9))
        order = []
        for delay, name in [(2.0, "late"), (1.0, "early"), (2.0, "late2")]:
            event = env.event()
            event.callbacks.append(
                lambda _ev, name=name: order.append(name)
            )
            event._ok = True
            event._value = None
            env.schedule(event, delay=delay)
        env.run()
        self.assertEqual(order[0], "early")
        self.assertEqual(sorted(order[1:]), ["late", "late2"])


class TestDivergenceDetection(unittest.TestCase):
    """A model with hidden order dependence provably diverges.

    Miniature of the hazard REP007 hunts statically: same-instant
    callbacks each drawing from one *shared* model stream.  Reordering
    the ties re-pairs draws with consumers, so per-consumer results
    change even though the draw multiset does not.
    """

    @staticmethod
    def _shared_stream_outcome(tie_seed):
        import random

        env = Environment(
            sanitizer=ScheduleSanitizer(tie_seed=tie_seed)
            if tie_seed is not None
            else None
        )
        model_rng = random.Random(0)
        draws = {}
        for name in "abcdef":
            event = env.event()
            event.callbacks.append(
                lambda _ev, name=name: draws.__setitem__(
                    name, model_rng.random()
                )
            )
            event._ok = True
            event._value = None
            env.schedule(event, delay=1.0)
        env.run()
        return draws

    def test_shared_stream_pairing_diverges_under_perturbation(self):
        baseline = self._shared_stream_outcome(None)
        perturbed = self._shared_stream_outcome(1)
        self.assertEqual(
            sorted(baseline.values()), sorted(perturbed.values())
        )  # same draw multiset...
        self.assertNotEqual(baseline, perturbed)  # ...paired differently

    def test_per_consumer_streams_are_immune(self):
        # The repo-wide fix pattern: one seeded stream per consumer
        # (StreamRegistry) instead of one shared stream drawn in event
        # order.
        import random

        def outcome(tie_seed):
            env = Environment(
                sanitizer=ScheduleSanitizer(tie_seed=tie_seed)
                if tie_seed is not None
                else None
            )
            draws = {}
            for index, name in enumerate("abcdef"):
                rng = random.Random(index)
                event = env.event()
                event.callbacks.append(
                    lambda _ev, name=name, rng=rng: draws.__setitem__(
                        name, rng.random()
                    )
                )
                event._ok = True
                event._value = None
                env.schedule(event, delay=1.0)
            env.run()
            return draws

        self.assertEqual(outcome(None), outcome(4))


class TestLaneTraps(unittest.TestCase):
    def _lane_env(self, traps):
        sanitizer = ScheduleSanitizer(tie_seed=None, traps=True) if traps else None
        return Environment(sanitizer=sanitizer)

    def test_evil_callback_is_trapped(self):
        env = self._lane_env(traps=True)
        holder = {}

        def evil(payload):
            holder["lane"].deadlines.append(99.0)  # ragged arrays

        lane = CallbackLane(env, evil, lambda payload: payload is None)
        holder["lane"] = lane
        lane.push(1.0, "payload")
        with self.assertRaises(SanitizerError) as caught:
            env.run(until=2.0)
        self.assertIn("ragged", str(caught.exception))

    def test_head_move_is_trapped(self):
        env = self._lane_env(traps=True)
        holder = {}

        def evil(payload):
            holder["lane"].head = 5

        lane = CallbackLane(env, evil, lambda payload: payload is None)
        holder["lane"] = lane
        lane.push(1.0, "payload")
        with self.assertRaises(SanitizerError) as caught:
            env.run(until=2.0)
        self.assertIn("head", str(caught.exception))

    def test_untrapped_ragged_payloads_corrupt_silently(self):
        env = self._lane_env(traps=False)
        holder = {}

        def evil(payload):
            holder["lane"].payloads.append(None)

        lane = CallbackLane(env, evil, lambda payload: payload is None)
        holder["lane"] = lane
        lane.push(1.0, "payload")
        env.run(until=2.0)  # silent corruption: exactly what traps exist for
        env2 = self._lane_env(traps=True)
        lane2 = CallbackLane(
            env2,
            lambda payload: holder["lane2"].payloads.append(None),
            lambda payload: payload is None,
        )
        holder["lane2"] = lane2
        lane2.push(1.0, "payload")
        with self.assertRaises(SanitizerError):
            env2.run(until=2.0)

    def test_untrapped_ragged_deadlines_fail_far_from_the_bug(self):
        # Without traps the same corruption the sanitizer reports
        # precisely surfaces later as a confusing IndexError deep in
        # the sweep -- the diagnostic-quality gap the traps close.
        env = self._lane_env(traps=False)
        holder = {}

        def evil(payload):
            holder["lane"].deadlines.append(99.0)

        lane = CallbackLane(env, evil, lambda payload: payload is None)
        holder["lane"] = lane
        lane.push(1.0, "payload")
        with self.assertRaises(IndexError):
            env.run(until=2.0)

    def test_reentrant_push_through_api_is_allowed(self):
        env = self._lane_env(traps=True)
        holder = {}
        fired = []

        def expire(payload):
            fired.append(payload)
            if payload == "first":
                holder["lane"].push(env.now + 1.0, "second")

        lane = CallbackLane(env, expire, lambda payload: payload is None)
        holder["lane"] = lane
        lane.push(1.0, "first")
        env.run(until=5.0)
        self.assertEqual(fired, ["first", "second"])


class _TinyCells(unittest.TestCase):
    CONFIG = TestbedConfig(
        n_servers=6,
        users_per_server=1,
        n_updates=8,
        game_duration_s=240.0,
        server_ttl_s=10.0,
        seed=5,
    )


class TestSanitizeCell(_TinyCells):
    def test_push_cell_is_bit_identical_and_not_vacuous(self):
        report = sanitize_cell(
            "push:unicast", self.CONFIG, replicas=1, tie_seed_base=1000
        )
        self.assertTrue(report.identical, report.diffs)
        self.assertFalse(report.vacuous)
        self.assertTrue(report.ok)

    def test_default_infrastructure_is_unicast(self):
        report = sanitize_cell(
            "push", self.CONFIG, replicas=1, tie_seed_base=1000
        )
        self.assertEqual(report.cell, "push")
        self.assertTrue(report.ok)


class TestDriverCli(_TinyCells):
    def _run(self, *argv):
        args = build_parser().parse_args(list(argv))
        out, err = io.StringIO(), io.StringIO()
        status = run_driver(args, out, err)
        return status, out.getvalue(), err.getvalue()

    def _tiny_args(self):
        return [
            "--servers", "6", "--users-per-server", "1", "--updates", "8",
            "--duration", "240", "--seed", "5", "--replicas", "1",
        ]

    def test_ok_cell_exits_zero(self):
        status, out, _ = self._run("push:unicast", *self._tiny_args())
        self.assertEqual(status, 0, out)
        self.assertIn("OK", out)
        self.assertIn("fast kernel", out)

    def test_ttl_cell_is_tie_order_independent_too(self):
        # Same-deadline TTL polls once re-paired draws under perturbation;
        # per-consumer streams (StreamRegistry) now keep the family immune.
        status, out, _ = self._run("ttl:unicast", *self._tiny_args())
        self.assertEqual(status, 0, out)
        self.assertIn("OK", out)

    def _run_with_stub(self, reports, *argv):
        import repro.experiments.sanitize as driver_module
        from repro.experiments.sanitize import CellReport

        stubs = {
            cell: CellReport(cell, identical=identical, ties=ties, diffs=diffs)
            for cell, identical, ties, diffs in reports
        }
        real = driver_module.sanitize_cell
        driver_module.sanitize_cell = (
            lambda cell, *args, **kwargs: stubs[cell]
        )
        try:
            return self._run(*argv)
        finally:
            driver_module.sanitize_cell = real

    def test_diverging_cell_exits_nonzero_with_diffs(self):
        status, out, _ = self._run_with_stub(
            [
                (
                    "push:unicast",
                    False,
                    [17],
                    ["replica 0 (tie seed 1000): metrics['mean']: "
                     "baseline=1.0 replica=2.0"],
                )
            ],
            "push:unicast",
        )
        self.assertEqual(status, 1)
        self.assertIn("DIVERGED", out)
        self.assertIn("replica 0", out)
        self.assertIn("metrics['mean']", out)

    def test_vacuous_cell_fails_with_its_own_message(self):
        status, out, _ = self._run_with_stub(
            [("push:unicast", True, [0], [])], "push:unicast"
        )
        self.assertEqual(status, 1)
        self.assertIn("VACUOUS", out)
        self.assertNotIn("DIVERGED", out)


if __name__ == "__main__":
    unittest.main()
