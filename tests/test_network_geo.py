"""Tests for geographic primitives and the city catalog."""

import pytest

from repro.network.geo import CityCatalog, GeoPoint, WORLD_CITIES, haversine_km
from repro.sim import StreamRegistry


class TestGeoPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)

    def test_zero_distance_to_self(self):
        point = GeoPoint(40.0, -75.0)
        assert point.distance_km(point) == 0.0


class TestHaversine:
    def test_known_distance_new_york_london(self):
        new_york = GeoPoint(40.713, -74.006)
        london = GeoPoint(51.507, -0.128)
        distance = haversine_km(new_york, london)
        assert 5500 < distance < 5620  # true great-circle ~5570 km

    def test_symmetry(self):
        a = GeoPoint(10.0, 20.0)
        b = GeoPoint(-30.0, 140.0)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_antipodal_near_half_circumference(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        assert haversine_km(a, b) == pytest.approx(20015, rel=0.01)

    def test_triangle_inequality(self):
        a = GeoPoint(33.749, -84.388)
        b = GeoPoint(51.507, -0.128)
        c = GeoPoint(35.677, 139.650)
        assert haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-6


class TestCatalog:
    def test_by_name(self):
        catalog = CityCatalog()
        atlanta = catalog.by_name("Atlanta")
        assert atlanta.region == "us"
        with pytest.raises(KeyError):
            catalog.by_name("Nowhere")

    def test_sampling_respects_region_weights(self):
        catalog = CityCatalog()
        stream = StreamRegistry(4).stream("geo")
        regions = [catalog.sample_city(stream).region for _ in range(2000)]
        us_fraction = regions.count("us") / len(regions)
        assert 0.35 < us_fraction < 0.55  # weight is 0.45
        assert regions.count("other") / len(regions) < 0.15

    def test_sample_point_stays_near_city(self):
        catalog = CityCatalog()
        stream = StreamRegistry(5).stream("geo")
        for _ in range(100):
            city, point = catalog.sample_point(stream, jitter_deg=0.25)
            assert abs(point.lat - city.point.lat) <= 0.25 + 1e-9
            assert haversine_km(point, city.point) < 60

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            CityCatalog(cities=[])

    def test_catalog_covers_three_main_regions(self):
        regions = {city.region for city in WORLD_CITIES}
        assert {"us", "europe", "asia"} <= regions
