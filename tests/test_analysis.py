"""Tests for the cross-run analysis service (repro.experiments.analysis):

- Mann-Whitney U against hand-computed values (clean separation, ties,
  identical samples, tiny n);
- seeded bootstrap confidence intervals;
- the trailing-median outlier rule and the YouLighter-style
  windowed-centroid change detector on synthetic series;
- series extraction and method-comparison discovery from trajectories;
- the end-to-end analyze driver, text and self-contained HTML renderers
  over the repo's committed BENCH_*.json;
- the `repro analyze` CLI (defaults, JSON/HTML outputs, exit 2 on
  malformed history -- the `make analyze-smoke` contract).
"""

import json
import math
import os

import pytest

from repro.cli import main as cli_main
from repro.experiments.analysis import (
    ALPHA,
    analyze_trajectories,
    benchmark_mean_series,
    bootstrap_mean_ci,
    change_points,
    discover_comparisons,
    extra_info_series,
    load_bench_trajectory,
    mann_whitney_u,
    render_html,
    render_text,
    sparkline_svg,
    trailing_median_outliers,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_ENGINE = os.path.join(REPO, "BENCH_engine.json")
BENCH_SECTION4 = os.path.join(REPO, "BENCH_section4.json")


def _trajectory(entries):
    """A trajectory dict from [{bench_name: (mean, extra_info)}] rows."""
    history = []
    for row in entries:
        history.append({
            "recorded": "", "machine": "ci",
            "benchmarks": [
                {
                    "name": name,
                    "stats": {"mean": mean},
                    "extra_info": extra or {},
                }
                for name, (mean, extra) in row.items()
            ],
        })
    return {"format": 1, "history": history}


class TestMannWhitneyU:
    def test_clean_separation(self):
        # Every a beats every b: U = n_a * n_b, A12 = 1.
        result = mann_whitney_u([10, 11, 12, 13], [1, 2, 3, 4])
        assert result["u"] == 16.0
        assert result["a12"] == 1.0
        assert result["p_value"] < 0.05

    def test_symmetry(self):
        a, b = [10.0, 11, 12, 13], [1.0, 2, 3, 14]
        forward = mann_whitney_u(a, b)
        backward = mann_whitney_u(b, a)
        assert forward["p_value"] == pytest.approx(backward["p_value"])
        assert forward["a12"] == pytest.approx(1.0 - backward["a12"])
        assert forward["u"] + backward["u"] == len(a) * len(b)

    def test_identical_samples_no_evidence(self):
        result = mann_whitney_u([5.0] * 4, [5.0] * 4)
        assert result["p_value"] == 1.0
        assert result["a12"] == 0.5

    def test_ties_average_ranks(self):
        # a = [1, 2], b = [2, 3]: the tied 2s share rank 2.5, so
        # U_a = (1 + 2.5) - 3 = 0.5 and A12 = 0.125.
        result = mann_whitney_u([1.0, 2.0], [2.0, 3.0])
        assert result["u"] == 0.5
        assert result["a12"] == 0.125

    def test_interleaved_not_significant(self):
        result = mann_whitney_u([1.0, 3.0, 5.0], [2.0, 4.0, 6.0])
        assert result["p_value"] > ALPHA

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])
        with pytest.raises(ValueError):
            mann_whitney_u([1.0], [])


class TestBootstrapCi:
    def test_seeded_and_deterministic(self):
        values = [10.0, 12.0, 9.0, 11.0, 10.5, 13.0]
        one = bootstrap_mean_ci(values, seed=7)
        two = bootstrap_mean_ci(values, seed=7)
        assert one == two
        assert one != bootstrap_mean_ci(values, seed=8)

    def test_brackets_the_mean(self):
        values = [10.0, 12.0, 9.0, 11.0, 10.5, 13.0]
        low, high = bootstrap_mean_ci(values, seed=0)
        mean = sum(values) / len(values)
        assert low <= mean <= high
        assert min(values) <= low and high <= max(values)

    def test_wider_at_higher_confidence(self):
        values = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0]
        narrow = bootstrap_mean_ci(values, seed=0, confidence=0.5)
        wide = bootstrap_mean_ci(values, seed=0, confidence=0.99)
        assert wide[0] <= narrow[0] and narrow[1] <= wide[1]

    def test_degenerate_single_sample(self):
        assert bootstrap_mean_ci([42.0]) == (42.0, 42.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0, 2.0], confidence=1.0)


class TestOutlierDetectors:
    def test_trailing_median_flags_spike_and_drop(self):
        series = [10.0, 10.0, 10.0, 40.0, 10.0, 10.0, 2.0]
        anomalies = trailing_median_outliers(series, window=3, threshold=1.5)
        flagged = {int(a["index"]): a for a in anomalies}
        assert 3 in flagged and flagged[3]["ratio"] == pytest.approx(4.0)
        assert 6 in flagged  # the drop: 2 * 1.5 < median 10
        assert 4 not in flagged

    def test_needs_minimum_history(self):
        assert trailing_median_outliers([1.0, 100.0]) == []
        assert trailing_median_outliers([1.0, 1.0, 100.0]) != []

    def test_flat_series_clean(self):
        assert trailing_median_outliers([5.0] * 10) == []
        assert change_points([5.0] * 10) == []

    def test_change_detector_finds_level_shift(self):
        # A sustained regime change every per-point rule would miss at
        # threshold 1.5x: the level only moves 1.2x but permanently.
        series = [10.0, 10.1, 9.9, 10.0, 12.0, 12.1, 11.9, 12.0]
        assert trailing_median_outliers(series, threshold=1.5) == []
        points = change_points(series, window=3)
        assert points
        best = max(points, key=lambda p: p["score"])
        assert int(best["index"]) == 4
        assert best["shift"] == pytest.approx(2.0, abs=0.2)

    def test_change_detector_ignores_noise(self):
        series = [10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 10.8, 9.2]
        assert change_points(series, window=3) == []

    def test_flat_windows_any_jump_is_a_shift(self):
        series = [10.0, 10.0, 10.0, 11.0, 11.0, 11.0]
        points = change_points(series, window=3)
        assert len(points) == 1
        assert int(points[0]["index"]) == 3


class TestSeriesExtraction:
    def test_benchmark_mean_series(self):
        trajectory = _trajectory([
            {"bench_a": (1.0, None), "bench_b": (5.0, None)},
            {"bench_a": (1.1, None)},
            {"bench_a": (1.2, None), "bench_b": (5.5, None)},
        ])
        series = benchmark_mean_series(trajectory)
        assert series == {"bench_a": [1.0, 1.1, 1.2], "bench_b": [5.0, 5.5]}

    def test_extra_info_series_per_entry_mean(self):
        trajectory = _trajectory([
            {
                "x": (1.0, {"fast_events_per_s": 100.0, "flag": True}),
                "y": (1.0, {"fast_events_per_s": 300.0, "note": "text"}),
            },
            {"x": (1.0, {"fast_events_per_s": 500.0})},
        ])
        series = extra_info_series(trajectory)
        # One sample per history entry; bools and strings excluded.
        assert series == {"fast_events_per_s": [200.0, 500.0]}

    def test_discover_comparisons_requires_legacy_member(self):
        series = {
            "fast_events_per_s": [1.0],
            "legacy_events_per_s": [1.0],
            "transport_speedup": [2.0],
            "kernel_speedup": [3.0],  # shares 'speedup' but no legacy_
            "cohort_users_per_s": [1.0],
            "actor_users_per_s": [1.0],
            "legacy_users_per_s": [1.0],
        }
        pairs = discover_comparisons(series)
        assert ("events_per_s", "fast_events_per_s",
                "legacy_events_per_s") in pairs
        # 3-way group: all pairs, legacy always second.
        users = [p for p in pairs if p[0] == "users_per_s"]
        assert len(users) == 3
        for _, key_a, key_b in pairs:
            assert not key_a.startswith("legacy_")
        assert all("speedup" not in p[0] for p in pairs)


class TestLoader:
    def test_rejects_malformed(self, tmp_path):
        path = str(tmp_path / "BENCH_bad.json")
        with pytest.raises(ValueError, match="does not exist"):
            load_bench_trajectory(path)
        with open(path, "w") as handle:
            handle.write("{broken")
        with pytest.raises(ValueError, match="cannot read"):
            load_bench_trajectory(path)
        with open(path, "w") as handle:
            json.dump({"history": [{"no_benchmarks": 1}]}, handle)
        with pytest.raises(ValueError, match="entry 0 is malformed"):
            load_bench_trajectory(path)
        with open(path, "w") as handle:
            json.dump(["not", "a", "dict"], handle)
        with pytest.raises(ValueError, match="neither"):
            load_bench_trajectory(path)

    def test_accepts_legacy_snapshot(self, tmp_path):
        path = str(tmp_path / "BENCH_legacy.json")
        with open(path, "w") as handle:
            json.dump({
                "datetime": "2026-01-01",
                "machine_info": {"node": "box"},
                "benchmarks": [
                    {"name": "b", "stats": {"mean": 1.0}, "extra_info": {}}
                ],
            }, handle)
        trajectory = load_bench_trajectory(path)
        assert len(trajectory["history"]) == 1
        assert trajectory["history"][0]["machine"] == "box"

    def test_loads_committed_trajectories(self):
        for path in (BENCH_ENGINE, BENCH_SECTION4):
            trajectory = load_bench_trajectory(path)
            assert trajectory["history"]


class TestAnalyzeDriver:
    def test_committed_history_satisfies_acceptance(self):
        # The ISSUE 10 acceptance bar, asserted as a regression test:
        # the repo's own committed history must yield at least one
        # significance-tested method comparison and at least one
        # trajectory anomaly.
        analysis = analyze_trajectories([BENCH_ENGINE, BENCH_SECTION4])
        tested = [
            row for row in analysis["comparisons"]
            if row["p_value"] is not None
        ]
        assert tested
        assert any(row["significant"] for row in tested)
        assert analysis["anomalies"]

    def test_deterministic(self):
        one = analyze_trajectories([BENCH_ENGINE], seed=3, resamples=200)
        two = analyze_trajectories([BENCH_ENGINE], seed=3, resamples=200)
        assert one == two

    def test_carries_provenance(self, tmp_path):
        path = str(tmp_path / "BENCH_p.json")
        with open(path, "w") as handle:
            json.dump({"format": 1, "history": [{
                "commit": "a" * 40, "host": "box-1", "machine": "box-1",
                "benchmarks": [{"name": "b", "stats": {"mean": 1.0},
                                "extra_info": {}}],
            }]}, handle)
        analysis = analyze_trajectories([path])
        trajectory = analysis["trajectories"][0]
        assert trajectory["commits"] == ["a" * 12]
        assert trajectory["hosts"] == ["box-1"]

    def test_small_samples_noted_not_tested(self, tmp_path):
        path = str(tmp_path / "BENCH_tiny.json")
        with open(path, "w") as handle:
            json.dump(_trajectory([{
                "b": (1.0, {"fast_x": 10.0, "legacy_x": 5.0}),
            }]), handle)
        analysis = analyze_trajectories([path])
        (row,) = analysis["comparisons"]
        assert row["p_value"] is None
        assert not row["significant"]
        assert "note" in row
        # Means and CIs still reported for the single entry.
        assert row["mean_a"] == 10.0 and row["ci_a"] == [10.0, 10.0]

    def test_telemetry_rollup_screening(self, tmp_path):
        telemetry = {
            "format": 1,
            "runs": [
                {"wall_time_s": w, "rollup": {"peak_rss_kb": 1000}}
                for w in (10.0, 10.0, 10.0, 50.0)
            ],
        }
        path = str(tmp_path / "runs.telemetry.json")
        with open(path, "w") as handle:
            json.dump(telemetry, handle)
        analysis = analyze_trajectories(
            [BENCH_ENGINE], telemetry_path=path
        )
        screened = analysis["telemetry"]
        assert screened["runs"] == 4
        assert len(screened["wall_outliers"]) == 1
        assert screened["rss_outliers"] == []


class TestRenderers:
    def test_text_summary(self):
        analysis = analyze_trajectories([BENCH_ENGINE, BENCH_SECTION4])
        text = "\n".join(render_text(analysis))
        assert "BENCH_engine.json" in text
        assert "vs legacy_" in text
        assert "wins (p<0.05)" in text
        assert "anomaly:" in text or "change:" in text

    def test_html_self_contained(self):
        analysis = analyze_trajectories([BENCH_ENGINE, BENCH_SECTION4])
        page = render_html(analysis, title="t < v & w")
        assert page.startswith("<!DOCTYPE html>")
        assert "<style>" in page and "<svg" in page
        assert "Mann&ndash;Whitney" in page
        assert "badge win" in page  # a significant verdict rendered
        # Self-contained: no scripts, no external fetches.
        assert "<script" not in page
        assert "http://" not in page and "https://" not in page
        # Title is escaped.
        assert "<title>t &lt; v &amp; w</title>" in page

    def test_sparkline_marks(self):
        svg = sparkline_svg([1.0, 2.0, 3.0], marks=[1, 99])
        assert svg.count("<circle") == 1  # out-of-range mark dropped
        assert "<polyline" in svg
        assert sparkline_svg([]).endswith("</svg>")
        assert "circle" not in sparkline_svg([])


class TestAnalyzeCli:
    def test_defaults_to_repo_trajectories(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO)
        assert cli_main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "BENCH_engine.json" in out

    def test_writes_json_and_html(self, tmp_path, capsys):
        json_out = str(tmp_path / "analysis.json")
        html_out = str(tmp_path / "analysis.html")
        code = cli_main([
            "analyze", BENCH_ENGINE, BENCH_SECTION4,
            "--json", json_out, "--html", html_out,
            "--resamples", "200",
        ])
        assert code == 0
        doc = json.load(open(json_out))
        assert doc["tool"] == "repro analyze"
        assert doc["comparisons"]
        page = open(html_out).read()
        assert page.startswith("<!DOCTYPE html>")
        err = capsys.readouterr().err
        assert "wrote %s" % json_out in err
        assert "wrote %s" % html_out in err

    def test_exit_2_on_malformed_history(self, tmp_path, capsys):
        # The `make analyze-smoke` contract: malformed committed
        # history must be a hard failure, not a shrug.
        path = str(tmp_path / "BENCH_bad.json")
        with open(path, "w") as handle:
            handle.write('{"history": [42]}')
        assert cli_main(["analyze", path]) == 2
        assert "malformed" in capsys.readouterr().err

    def test_exit_2_when_nothing_to_analyze(self, tmp_path, monkeypatch,
                                            capsys):
        monkeypatch.chdir(tmp_path)
        assert cli_main(["analyze"]) == 2
        assert "no BENCH_" in capsys.readouterr().err


def test_p_value_is_a_probability():
    # Property sweep: p in (0, 1] across assorted sample shapes.
    samples = [
        ([1.0], [2.0]),
        ([1.0, 1.0], [1.0, 1.0]),
        ([1.0, 2.0, 3.0], [4.0, 5.0]),
        ([1.0, 2.0, 2.0, 3.0], [2.0, 2.0, 4.0]),
        (list(range(20)), list(range(10, 30))),
    ]
    for a, b in samples:
        result = mann_whitney_u([float(v) for v in a], [float(v) for v in b])
        assert 0.0 < result["p_value"] <= 1.0
        assert 0.0 <= result["a12"] <= 1.0
        assert not math.isnan(result["u"])
