"""Tests for harness telemetry (repro.obs.telemetry) and its surfaces:

- metrics-registry semantics (counters / gauges / fixed-bucket
  histograms, disabled no-ops);
- span profiler self/cumulative attribution (nesting, recursion);
- snapshot algebra: delta, counter-sum / gauge-last / histogram-merge /
  peak-RSS-max merges, schema-mismatch rejection;
- Runner integration: per-worker deltas rolled into RunStats, the
  ``telemetry.json`` artifact next to the run registry, and the two
  acceptance criteria from ISSUE 5 (span-table total within 5% of the
  recorded run duration; telemetry on/off bit-identical FigureResult
  metrics);
- the ``repro metrics`` / ``repro profile`` CLI subcommands.
"""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.experiments.config import smoke_scale
from repro.experiments.section4 import fig14_unicast_inconsistency
from repro.obs.telemetry import (
    BUCKETS_SECONDS,
    TELEMETRY,
    Histogram,
    MetricsRegistry,
    append_run_entry,
    default_artifact_path,
    delta_snapshots,
    empty_snapshot,
    format_span_table,
    load_artifact,
    merge_snapshots,
    merged_rollup,
    peak_rss_kb,
    prometheus_exposition,
    span_total_s,
    telemetry_enabled,
)
from repro.runner import Runner, RunSpec


def _specs(n=3, seed0=0):
    config = smoke_scale()
    return [
        RunSpec(config=config.with_overrides(seed=seed0 + i), method="ttl")
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# registry instruments
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry(enabled=True)
        reg.count("a")
        reg.count("a", 2.5)
        reg.count("b", 0.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 3.5, "b": 0.0}

    def test_gauges_keep_last_value(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("workers", 4)
        reg.gauge("workers", 2)
        assert reg.snapshot()["gauges"] == {"workers": 2.0}

    def test_histogram_fixed_buckets(self):
        hist = Histogram((1.0, 10.0))
        for value in (0.5, 0.9, 5.0, 10.0, 99.0):
            hist.observe(value)
        data = hist.to_dict()
        assert data["edges"] == [1.0, 10.0]
        # 2 below 1.0; 1 in [1, 10); 2 at/above 10.0 (upper edge
        # exclusive: 10.0 lands in the overflow bucket).
        assert data["counts"] == [2, 1, 2]
        assert data["total"] == 5
        assert data["sum"] == pytest.approx(115.4)

    def test_observe_uses_seconds_schema_by_default(self):
        reg = MetricsRegistry(enabled=True)
        reg.observe("elapsed", 0.2)
        data = reg.snapshot()["histograms"]["elapsed"]
        assert tuple(data["edges"]) == BUCKETS_SECONDS
        assert data["total"] == 1

    def test_disabled_registry_is_inert(self):
        reg = MetricsRegistry(enabled=False)
        reg.count("a")
        reg.gauge("g", 1)
        reg.observe("h", 1.0)
        with reg.span("s"):
            pass
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["spans"] == {}

    def test_env_gating(self, monkeypatch):
        for value, expected in (
            ("0", False), ("false", False), ("off", False), ("no", False),
            ("1", True), ("yes", True), ("", True),
        ):
            monkeypatch.setenv("REPRO_TELEMETRY", value)
            assert telemetry_enabled() is expected
        monkeypatch.delenv("REPRO_TELEMETRY")
        assert telemetry_enabled() is True

    def test_peak_rss_positive_on_linux(self):
        assert peak_rss_kb() > 0

    def test_reset_clears_recorded_data(self):
        reg = MetricsRegistry(enabled=True)
        reg.count("a")
        with reg.span("s"):
            pass
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["spans"] == {}


# ----------------------------------------------------------------------
# span profiler
# ----------------------------------------------------------------------
class TestSpans:
    def test_self_time_excludes_children(self):
        reg = MetricsRegistry(enabled=True)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        spans = reg.snapshot()["spans"]
        assert spans["outer"]["count"] == 1
        assert spans["inner"]["count"] == 1
        assert spans["outer"]["cum_s"] >= spans["inner"]["cum_s"]
        assert spans["outer"]["self_s"] == pytest.approx(
            spans["outer"]["cum_s"] - spans["inner"]["cum_s"], abs=1e-6
        )
        # Self times tile the root's cumulative wall time.
        assert span_total_s(reg.snapshot()) == pytest.approx(
            spans["outer"]["cum_s"], abs=1e-6
        )

    def test_recursion_counts_wall_time_once(self):
        reg = MetricsRegistry(enabled=True)

        def recurse(depth):
            with reg.span("r"):
                if depth:
                    recurse(depth - 1)

        recurse(3)
        data = reg.snapshot()["spans"]["r"]
        assert data["count"] == 4
        # cum only accumulates at the outermost frame: it must stay in
        # the same order of magnitude as the wall time, not 4x it.
        assert data["cum_s"] == pytest.approx(data["self_s"], rel=0.5)

    def test_exception_still_records_span(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(RuntimeError):
            with reg.span("boom"):
                raise RuntimeError("x")
        assert reg.snapshot()["spans"]["boom"]["count"] == 1

    def test_span_table_ranking_and_top(self):
        snap = empty_snapshot()
        snap["spans"] = {
            "fast": {"count": 10, "cum_s": 0.1, "self_s": 0.1},
            "slow": {"count": 1, "cum_s": 2.0, "self_s": 1.9},
        }
        lines = format_span_table(snap, sort="self")
        assert lines[1].startswith("slow")
        assert lines[-1].startswith("total (self)")
        assert len(format_span_table(snap, top=1, sort="cum")) == 3


# ----------------------------------------------------------------------
# snapshot algebra
# ----------------------------------------------------------------------
class TestSnapshotAlgebra:
    def _sample(self):
        reg = MetricsRegistry(enabled=True)
        reg.count("c", 2)
        reg.gauge("g", 7)
        reg.observe("h", 0.3, edges=(1.0,))
        with reg.span("s"):
            pass
        return reg.snapshot()

    def test_merge_sums_counters_and_histograms(self):
        merged = merge_snapshots(self._sample(), self._sample())
        assert merged["counters"]["c"] == 4
        assert merged["histograms"]["h"]["counts"] == [2, 0]
        assert merged["histograms"]["h"]["total"] == 2
        assert merged["spans"]["s"]["count"] == 2

    def test_merge_gauge_last_and_rss_max(self):
        a, b = self._sample(), self._sample()
        a["peak_rss_kb"], b["peak_rss_kb"] = 100, 50
        b["gauges"]["g"] = 3.0
        merged = merge_snapshots(a, b)
        assert merged["gauges"]["g"] == 3.0
        assert merged["peak_rss_kb"] == 100

    def test_merge_rejects_mismatched_bucket_schemas(self):
        a, b = self._sample(), self._sample()
        b["histograms"]["h"]["edges"] = [2.0]
        with pytest.raises(ValueError, match="bucket schemas differ"):
            merge_snapshots(a, b)

    def test_merge_identity(self):
        sample = self._sample()
        merged = merge_snapshots(empty_snapshot(), sample)
        assert merged["counters"] == sample["counters"]
        assert merged["spans"] == sample["spans"]

    def test_delta_reports_only_changes(self):
        reg = MetricsRegistry(enabled=True)
        reg.count("before", 1)
        before = reg.snapshot()
        reg.count("after", 5)
        with reg.span("s"):
            pass
        delta = reg.delta_since(before)
        assert delta["counters"] == {"after": 5}
        assert set(delta["spans"]) == {"s"}

    def test_delta_of_identical_snapshots_is_empty(self):
        snap = self._sample()
        delta = delta_snapshots(snap, snap)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}
        assert delta["spans"] == {}

    def test_merge_empty_shard_is_identity_both_ways(self):
        # A worker shard that did nothing merges as a no-op whether it
        # arrives first or last.
        sample = self._sample()
        original = json.loads(json.dumps(sample))
        left = merge_snapshots(sample, empty_snapshot())
        assert left == original
        right = merge_snapshots(empty_snapshot(), sample)
        assert right["counters"] == original["counters"]
        assert right["histograms"] == original["histograms"]
        assert right["spans"] == original["spans"]

    def test_merge_zero_activity_enabled_registry(self):
        # An enabled-but-idle registry's snapshot is a valid zero shard:
        # merging it changes nothing but the (max-merged) peak RSS.
        idle = MetricsRegistry(enabled=True).snapshot()
        sample = self._sample()
        expected_rss = max(sample["peak_rss_kb"], idle["peak_rss_kb"])
        merged = merge_snapshots(sample, idle)
        assert merged["counters"] == self._sample()["counters"]
        assert merged["peak_rss_kb"] == expected_rss

    def test_merge_disjoint_histogram_keys(self):
        a, b = self._sample(), self._sample()
        b["histograms"] = {
            "other": {"edges": [5.0], "counts": [1, 0], "total": 1,
                      "sum": 2.5},
        }
        merged = merge_snapshots(a, b)
        assert set(merged["histograms"]) == {"h", "other"}
        # The adopted histogram is a copy, not an alias into b.
        merged["histograms"]["other"]["counts"][0] = 99
        assert b["histograms"]["other"]["counts"][0] == 1

    def test_merge_peak_rss_max_with_missing_keys(self):
        a, b = self._sample(), self._sample()
        a.pop("peak_rss_kb", None)
        b["peak_rss_kb"] = 123
        assert merge_snapshots(a, b)["peak_rss_kb"] == 123
        c = self._sample()
        c["peak_rss_kb"] = 456
        assert merge_snapshots(c, {"counters": {}})["peak_rss_kb"] == 456


class TestPeakRss:
    def _patch_rusage(self, monkeypatch, maxrss):
        import resource

        class FakeUsage:
            ru_maxrss = maxrss

        monkeypatch.setattr(
            resource, "getrusage", lambda who: FakeUsage()
        )

    def test_linux_reports_kib_verbatim(self, monkeypatch):
        import repro.obs.telemetry as telemetry

        self._patch_rusage(monkeypatch, 2048)
        monkeypatch.setattr(telemetry.sys, "platform", "linux")
        assert peak_rss_kb() == 2048

    def test_darwin_bytes_normalized_to_kib(self, monkeypatch):
        # macOS ru_maxrss is bytes; the same physical footprint must
        # read identically on both platforms.
        import repro.obs.telemetry as telemetry

        self._patch_rusage(monkeypatch, 2048 * 1024)
        monkeypatch.setattr(telemetry.sys, "platform", "darwin")
        assert peak_rss_kb() == 2048

    def test_real_process_nonzero(self):
        assert peak_rss_kb() > 0


# ----------------------------------------------------------------------
# prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_exposition_format(self):
        reg = MetricsRegistry(enabled=True)
        reg.count("registry.cache_hits", 3)
        reg.gauge("runner.workers", 2)
        reg.observe("spec.elapsed_s", 0.02, edges=(0.01, 0.1))
        text = prometheus_exposition(reg.snapshot())
        assert "# TYPE repro_registry_cache_hits_total counter" in text
        assert "repro_registry_cache_hits_total 3" in text
        assert "repro_runner_workers 2" in text
        assert 'repro_spec_elapsed_s_bucket{le="0.01"} 0' in text
        assert 'repro_spec_elapsed_s_bucket{le="0.1"} 1' in text
        assert 'repro_spec_elapsed_s_bucket{le="+Inf"} 1' in text
        assert "repro_spec_elapsed_s_count 1" in text
        assert text.endswith("\n")

    def test_span_series(self):
        reg = MetricsRegistry(enabled=True)
        with reg.span("engine.run"):
            pass
        text = prometheus_exposition(reg.snapshot())
        assert 'repro_span_count{span="engine.run"} 1' in text
        assert 'agg="self"' in text and 'agg="cum"' in text


# ----------------------------------------------------------------------
# telemetry.json artifact
# ----------------------------------------------------------------------
class TestArtifact:
    def test_default_path_sits_next_to_registry(self):
        assert default_artifact_path("/x/runs.json") == "/x/runs.telemetry.json"
        assert default_artifact_path("/x/runs") == "/x/runs.telemetry.json"

    def test_append_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "runs.telemetry.json")
        assert load_artifact(path) == {"format": 1, "runs": []}
        assert append_run_entry(path, {"rollup": empty_snapshot()}) == 1
        assert append_run_entry(path, {"rollup": empty_snapshot()}) == 2
        assert len(load_artifact(path)["runs"]) == 2

    def test_entries_age_out(self, tmp_path):
        path = str(tmp_path / "t.json")
        for index in range(5):
            append_run_entry(path, {"n": index}, max_entries=3)
        assert [entry["n"] for entry in load_artifact(path)["runs"]] == [2, 3, 4]

    def test_corrupt_artifact_restarts_empty(self, tmp_path):
        path = str(tmp_path / "t.json")
        with open(path, "w") as handle:
            handle.write("not json")
        with pytest.raises(ValueError):
            load_artifact(path)
        assert append_run_entry(path, {"n": 0}) == 1

    def test_merged_rollup_sums_runs(self):
        rollup = empty_snapshot()
        rollup["counters"]["c"] = 2
        artifact = {"format": 1, "runs": [{"rollup": rollup}, {"rollup": rollup}]}
        assert merged_rollup(artifact)["counters"]["c"] == 4


# ----------------------------------------------------------------------
# Runner integration + ISSUE 5 acceptance criteria
# ----------------------------------------------------------------------
class TestRunnerIntegration:
    def test_serial_rollup_and_artifact(self, tmp_path):
        registry_path = str(tmp_path / "runs.json")
        runner = Runner(workers=1, registry=registry_path)
        outcome = runner.run(_specs(2))
        rollup = outcome.stats.telemetry
        assert rollup is not None
        for name in ("runner.run", "spec.execute", "engine.run",
                     "testbed.build", "deployment.collect"):
            assert rollup["spans"][name]["count"] >= 1
        assert rollup["counters"]["engine.events"] == (
            outcome.stats.events_processed
        )
        assert rollup["counters"]["registry.cache_misses"] == 2
        assert rollup["gauges"]["runner.workers"] == 1
        assert outcome.stats.peak_rss_kb > 0
        artifact = load_artifact(default_artifact_path(registry_path))
        assert len(artifact["runs"]) == 1
        assert artifact["runs"][0]["n_specs"] == 2

    def test_cache_hits_recorded_on_second_run(self, tmp_path):
        registry_path = str(tmp_path / "runs.json")
        Runner(workers=1, registry=registry_path).run(_specs(2))
        outcome = Runner(workers=1, registry=registry_path).run(_specs(2))
        assert outcome.stats.cache_hits == 2
        assert outcome.stats.cache_misses == 0
        assert outcome.stats.registry_hit_rate == 1.0
        rollup = outcome.stats.telemetry
        assert rollup["counters"]["registry.cache_hits"] == 2
        assert "spec.execute" not in rollup["spans"]
        artifact = load_artifact(default_artifact_path(registry_path))
        assert len(artifact["runs"]) == 2

    def test_parallel_rollup_matches_serial_counters(self, tmp_path):
        serial = Runner(workers=1, registry=False).run(_specs(3))
        parallel = Runner(workers=2, registry=False).run(_specs(3))
        a, b = serial.stats.telemetry, parallel.stats.telemetry
        assert a["counters"]["engine.events"] == b["counters"]["engine.events"]
        assert (
            a["counters"]["fabric.messages_sent"]
            == b["counters"]["fabric.messages_sent"]
        )
        assert a["spans"]["engine.run"]["count"] == b["spans"]["engine.run"]["count"]
        assert b["gauges"]["runner.workers"] == 2
        # And the simulated outcomes are identical regardless of workers.
        for left, right in zip(serial.metrics, parallel.metrics):
            assert left.to_dict() == right.to_dict()

    def test_acceptance_span_total_within_5pct_of_wall(self, tmp_path):
        # ISSUE 5: `repro profile` on a registry run prints a span table
        # whose total wall time is within 5% of the recorded duration.
        registry_path = str(tmp_path / "runs.json")
        outcome = Runner(workers=1, registry=registry_path).run(_specs(3))
        artifact = load_artifact(default_artifact_path(registry_path))
        entry = artifact["runs"][-1]
        total = span_total_s(entry["rollup"])
        wall = entry["wall_time_s"]
        assert outcome.stats.wall_time_s == pytest.approx(wall)
        assert total == pytest.approx(wall, rel=0.05)

    def test_acceptance_metrics_bit_identical_telemetry_on_off(self):
        # ISSUE 5: telemetry-off runs stay bit-identical to telemetry-on
        # runs in every FigureResult metric.
        config = smoke_scale()
        was_enabled = TELEMETRY.enabled
        try:
            TELEMETRY.enabled = True
            on = fig14_unicast_inconsistency(
                config, runner=Runner(workers=1, registry=False)
            )
            TELEMETRY.enabled = False
            off = fig14_unicast_inconsistency(
                config, runner=Runner(workers=1, registry=False)
            )
        finally:
            TELEMETRY.enabled = was_enabled
        assert on.series == off.series
        assert on.summary == off.summary
        for method in ("push", "invalidation", "ttl"):
            assert (
                on.details.metrics[method].to_dict()
                == off.details.metrics[method].to_dict()
            )
        assert off.stats.telemetry is None
        assert on.stats.telemetry is not None

    def test_disabled_telemetry_writes_no_artifact(self, tmp_path):
        registry_path = str(tmp_path / "runs.json")
        was_enabled = TELEMETRY.enabled
        try:
            TELEMETRY.enabled = False
            outcome = Runner(workers=1, registry=registry_path).run(_specs(1))
        finally:
            TELEMETRY.enabled = was_enabled
        assert outcome.stats.telemetry is None
        assert not os.path.exists(default_artifact_path(registry_path))

    def test_stats_to_dict_surfaces_telemetry_fields(self):
        outcome = Runner(workers=1, registry=False).run(_specs(1))
        data = outcome.stats.to_dict()
        assert data["cache_misses"] == 0  # no registry attached
        assert data["registry_hit_rate"] == 0.0
        assert data["events_per_s"] > 0
        assert data["peak_rss_kb"] > 0
        assert "spans" in data["telemetry"]
        assert json.dumps(data)  # JSON-safe for figures.json


# ----------------------------------------------------------------------
# repro metrics / repro profile CLI
# ----------------------------------------------------------------------
class TestTelemetryCli:
    @pytest.fixture()
    def registry_path(self, tmp_path):
        path = str(tmp_path / "runs.json")
        Runner(workers=1, registry=path).run(_specs(2))
        return path

    def test_metrics_json(self, registry_path, capsys):
        assert cli_main(["metrics", "--registry", registry_path]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "engine.events" in data["counters"]
        assert "runner.run" in data["spans"]

    def test_metrics_prom(self, registry_path, capsys):
        code = cli_main(
            ["metrics", "--registry", registry_path, "--format", "prom"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro_engine_events_total" in out
        assert 'repro_span_count{span="runner.run"} 1' in out

    def test_metrics_check_smoke(self, registry_path, capsys):
        assert cli_main(["metrics", "--registry", registry_path, "--check"]) == 0
        assert "rollup ok" in capsys.readouterr().out

    def test_metrics_check_fails_without_runs(self, tmp_path, capsys):
        path = str(tmp_path / "empty.telemetry.json")
        with open(path, "w") as handle:
            json.dump({"format": 1, "runs": []}, handle)
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["metrics", path, "--check"])
        assert excinfo.value.code == 2

    def test_metrics_requires_a_source(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_REGISTRY", raising=False)
        with pytest.raises(SystemExit):
            cli_main(["metrics"])

    def test_metrics_env_registry(self, registry_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RUN_REGISTRY", registry_path)
        assert cli_main(["metrics", "--check"]) == 0
        assert "rollup ok" in capsys.readouterr().out

    def test_profile_table(self, registry_path, capsys):
        assert cli_main(["profile", "--registry", registry_path]) == 0
        out = capsys.readouterr().out
        assert "engine.run" in out
        assert "total (self)" in out
        assert "recorded wall time" in out

    def test_profile_top_and_sort(self, registry_path, capsys):
        code = cli_main(
            ["profile", "--registry", registry_path, "--top", "2",
             "--sort", "self"]
        )
        assert code == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line
        ]
        # header + 2 spans + total + recorded-wall-time footer
        assert len(lines) == 5

    def test_profile_compare(self, registry_path, capsys):
        # Second run is all cache hits: the delta view must show
        # spec.execute disappearing relative to run 0.
        Runner(workers=1, registry=registry_path).run(_specs(2))
        code = cli_main(
            ["profile", "--registry", registry_path, "--compare", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "span deltas" in out
        assert "spec.execute" in out

    def test_profile_run_index_out_of_range(self, registry_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["profile", "--registry", registry_path, "--run", "5"])
        assert excinfo.value.code == 2
