"""Tests for the generic dynamic method and the method advisor
(the paper's Section 6 future work, built out)."""

import pytest

from repro.cdn import EndUserActor, FixedSelector, LiveContent, ProviderActor, ServerActor
from repro.consistency import UnicastInfrastructure
from repro.core import DynamicPolicy, MethodAdvisor, WorkloadProfile
from repro.experiments import build_deployment, smoke_scale
from repro.network import MessageKind, NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry


class TestAdvisor:
    def make_advisor(self):
        return MethodAdvisor(min_ttl_s=10.0, max_ttl_s=120.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(update_rate_per_s=-1, visit_rate_per_s=0, n_servers=1)
        with pytest.raises(ValueError):
            WorkloadProfile(0.1, 0.1, n_servers=0)
        with pytest.raises(ValueError):
            MethodAdvisor(min_ttl_s=0, max_ttl_s=10)
        advisor = self.make_advisor()
        profile = WorkloadProfile(0.1, 0.1, 10)
        with pytest.raises(ValueError):
            advisor.recommend(profile, staleness_tolerance_s=-1)
        with pytest.raises(ValueError):
            advisor.expected_messages_per_hour(profile, "smoke-signals")

    def test_strong_consistency_hot_content_gets_push(self):
        advisor = self.make_advisor()
        profile = WorkloadProfile(
            update_rate_per_s=0.05, visit_rate_per_s=0.5, n_servers=100
        )
        rec = advisor.recommend(profile, staleness_tolerance_s=1.0)
        assert rec.method == "push"
        assert rec.expected_staleness_s < 1.0

    def test_strong_consistency_cold_content_gets_invalidation(self):
        advisor = self.make_advisor()
        profile = WorkloadProfile(
            update_rate_per_s=0.5, visit_rate_per_s=0.01, n_servers=100
        )
        rec = advisor.recommend(profile, staleness_tolerance_s=1.0)
        assert rec.method == "invalidation"
        # invalidation skips unseen updates: cheaper than push here
        push_cost = advisor.expected_messages_per_hour(profile, "push")
        assert rec.expected_messages_per_hour < 4 * push_cost

    def test_tolerant_steady_content_gets_ttl(self):
        advisor = self.make_advisor()
        profile = WorkloadProfile(
            update_rate_per_s=0.2, visit_rate_per_s=0.5, n_servers=100
        )
        rec = advisor.recommend(profile, staleness_tolerance_s=30.0)
        assert rec.method == "ttl"
        assert rec.ttl_s == pytest.approx(60.0)
        assert rec.expected_staleness_s == pytest.approx(30.0)
        assert rec.infrastructure == "unicast"  # pull stays off the tree

    def test_bursty_content_gets_self_adaptive(self):
        advisor = self.make_advisor()
        profile = WorkloadProfile(
            update_rate_per_s=0.05,
            visit_rate_per_s=0.2,
            n_servers=100,
            silence_fraction=0.8,
        )
        rec = advisor.recommend(profile, staleness_tolerance_s=30.0)
        assert rec.method == "self-adaptive"
        ttl_cost = advisor.expected_messages_per_hour(profile, "ttl", rec.ttl_s)
        assert rec.expected_messages_per_hour < ttl_cost

    def test_large_deployments_get_multicast_for_push(self):
        advisor = MethodAdvisor(multicast_threshold_servers=50)
        big = WorkloadProfile(0.05, 0.5, n_servers=500)
        small = WorkloadProfile(0.05, 0.5, n_servers=10)
        assert advisor.recommend(big, 1.0).infrastructure == "multicast"
        assert advisor.recommend(small, 1.0).infrastructure == "unicast"

    def test_compare_all_covers_every_method(self):
        advisor = self.make_advisor()
        profile = WorkloadProfile(0.1, 0.1, 10)
        table = advisor.compare_all(profile, ttl_s=30.0)
        assert set(table) == {"push", "invalidation", "ttl", "self-adaptive"}
        for row in table.values():
            assert row["messages_per_hour"] >= 0
            assert row["staleness_s"] >= 0

    def test_ttl_cost_independent_of_update_rate(self):
        advisor = self.make_advisor()
        slow = WorkloadProfile(0.01, 0.1, 10)
        fast = WorkloadProfile(10.0, 0.1, 10)
        assert advisor.expected_messages_per_hour(
            slow, "ttl", 30.0
        ) == advisor.expected_messages_per_hour(fast, "ttl", 30.0)

    def test_invalidation_saves_bytes_when_visits_sparse(self):
        # Section 1: "It can save traffic cost compared to Push if the
        # content visit rates ... are smaller than the update rate."
        advisor = MethodAdvisor(min_ttl_s=10.0, update_size_kb=50.0)
        sparse = WorkloadProfile(update_rate_per_s=0.5, visit_rate_per_s=0.01, n_servers=100)
        assert advisor.expected_kb_per_hour(sparse, "invalidation") < advisor.expected_kb_per_hour(sparse, "push")
        # ...but NOT when every update is visited anyway (notices are
        # pure overhead then).
        hot = WorkloadProfile(update_rate_per_s=0.5, visit_rate_per_s=5.0, n_servers=100)
        assert advisor.expected_kb_per_hour(hot, "invalidation") > advisor.expected_kb_per_hour(hot, "push")

    def test_ttl_aggregates_bytes_under_fast_updates(self):
        # With updates much faster than polls, TTL transfers one body
        # per poll instead of one per update.
        advisor = MethodAdvisor(min_ttl_s=10.0, update_size_kb=50.0)
        fast = WorkloadProfile(update_rate_per_s=2.0, visit_rate_per_s=1.0, n_servers=50)
        assert advisor.expected_kb_per_hour(fast, "ttl", 30.0) < advisor.expected_kb_per_hour(fast, "push")

    def test_recommendation_carries_byte_estimate(self):
        advisor = self.make_advisor()
        rec = advisor.recommend(WorkloadProfile(0.1, 0.2, 20), 30.0)
        assert rec.expected_kb_per_hour > 0
        table = advisor.compare_all(WorkloadProfile(0.1, 0.2, 20), 30.0)
        assert all("kb_per_hour" in row for row in table.values())


def deploy_dynamic(updates, tolerance, horizon, n_servers=4, ttl=15.0,
                   user_ttl=5.0, seed=9, decision_interval=45.0):
    env = Environment()
    streams = StreamRegistry(seed)
    topology = TopologyBuilder(env, streams).build(n_servers=n_servers, users_per_server=1)
    fabric = NetworkFabric(env, streams=streams)
    content = LiveContent("game", update_times=list(updates))
    provider = ProviderActor(env, topology.provider, fabric, content)
    servers = [
        ServerActor(
            env, node, fabric, content,
            policy=DynamicPolicy(
                ttl, staleness_tolerance_s=tolerance,
                stream=streams.stream("phase"),
                decision_interval_s=decision_interval,
            ),
        )
        for node in topology.servers
    ]
    UnicastInfrastructure().wire(provider, servers)
    provider.use_dynamic()
    users = [
        EndUserActor(
            env, topology.users[i][0], fabric, content,
            FixedSelector(servers[i].node), user_ttl_s=user_ttl,
        )
        for i in range(n_servers)
    ]
    for server in servers:
        server.start()
    for user in users:
        user.start()
    env.run(until=horizon)
    return env, fabric, content, provider, servers, users


class TestDynamicPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicPolicy(0, 1.0)
        with pytest.raises(ValueError):
            DynamicPolicy(10.0, -1.0)
        with pytest.raises(ValueError):
            DynamicPolicy(10.0, 1.0, decision_interval_s=0)

    def test_tight_tolerance_hot_content_converges_to_push(self):
        updates = [20.0 + 5.0 * i for i in range(120)]  # steady, frequent
        env, fabric, content, provider, servers, users = deploy_dynamic(
            updates, tolerance=1.0, horizon=640.0
        )
        for server in servers:
            assert server.policy.mode == "push"
            assert server.cached_version >= content.last_version - 1
        # servers are push-subscribed at the provider
        assert len(provider.push_members) == len(servers)
        assert fabric.ledger.kind_totals(MessageKind.PUSH_UPDATE).count > 0

    def test_silence_converges_to_invalidation(self):
        updates = [20.0, 30.0, 40.0]  # short burst, long silence
        env, fabric, content, provider, servers, users = deploy_dynamic(
            updates, tolerance=1.0, horizon=800.0
        )
        for server in servers:
            assert server.policy.mode == "invalidation"
            assert server.cached_version == 3

    def test_tolerant_active_content_stays_ttl(self):
        updates = [20.0 + 10.0 * i for i in range(70)]
        env, fabric, content, provider, servers, users = deploy_dynamic(
            updates, tolerance=60.0, horizon=760.0, ttl=15.0
        )
        for server in servers:
            assert server.policy.mode == "ttl"
        assert fabric.ledger.kind_totals(MessageKind.POLL).count > 0

    def test_mode_history_records_transitions(self):
        updates = [20.0 + 5.0 * i for i in range(60)]  # hot for 300 s, then quiet
        env, fabric, content, provider, servers, users = deploy_dynamic(
            updates, tolerance=1.0, horizon=900.0
        )
        for server in servers:
            history = server.policy.mode_history
            modes = [mode for _, mode in history]
            assert modes[0] == "ttl"          # initial
            assert "push" in modes            # hot phase
            assert modes[-1] == "invalidation"  # silent tail
            times = [t for t, _ in history]
            assert times == sorted(times)

    def test_push_subscribers_stay_fresh_through_updates(self):
        updates = [20.0 + 5.0 * i for i in range(120)]
        env, fabric, content, provider, servers, users = deploy_dynamic(
            updates, tolerance=1.0, horizon=700.0
        )
        from repro.metrics.consistency import update_lags

        for server in servers:
            late_lags = update_lags(
                content, server.apply_log(), window=(300.0, 620.0), censor_at=700.0
            )
            # once in push mode, staleness is delivery latency only
            assert late_lags and max(late_lags) < 2.0

    def test_testbed_integration(self):
        config = smoke_scale()
        metrics = build_deployment(config, "dynamic", "unicast").run()
        assert metrics.mean_server_lag < config.server_ttl_s
        assert metrics.update_messages > 0
