"""Differential tests: struct-of-arrays user cohort vs per-user actors.

The :class:`~repro.cdn.cohort.UserCohort` must be a pure performance
change: metrics, fabric counters, and full message/visit traces must be
bit-identical to the legacy actor path (``REPRO_LEGACY_USERS=1``) for
every update method on every infrastructure at three seeds -- and, in
aggregate-metrics mode, identical across all three arms (cohort,
fast-kernel actors, legacy-kernel actors).  Only ``events_processed``
may differ (batched visit sweeps are the point).

Also covers the sharding contract: merging a cell's shard runs is
bit-identical whether the shards executed serially or across a worker
pool, and the shard specs reproduce the same server plane.
"""

import os
from contextlib import contextmanager

import pytest

import repro.network.message as message_mod
from repro.cdn.cohort import LEGACY_USERS_ENV
from repro.experiments.config import TestbedConfig
from repro.experiments.sharding import (
    merge_shard_metrics,
    shard_specs,
    shard_user_counts,
)
from repro.experiments.testbed import INFRASTRUCTURES, METHODS, build_deployment
from repro.obs.tracer import RecordingTracer
from repro.runner import Runner, RunSpec, run_specs
from repro.sim.engine import LEGACY_KERNEL_ENV

_TRACE_KINDS = (
    "msg_send",
    "msg_recv",
    "msg_drop",
    "visit",
    "visit_timeout",
    "msg_timeout",
)


@contextmanager
def _env_flags(**flags):
    """Pin construction-time environment switches around a build."""
    old = {name: os.environ.get(name) for name in flags}
    for name, value in flags.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
    try:
        yield
    finally:
        for name, value in old.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _tiny_config(seed, **overrides):
    defaults = dict(
        n_servers=6,
        users_per_server=2,
        n_updates=6,
        game_duration_s=200.0,
        hat_clusters=3,
        seed=seed,
    )
    defaults.update(overrides)
    return TestbedConfig(**defaults)


def _run_cell(
    method,
    infrastructure,
    seed,
    *,
    legacy_users,
    legacy_kernel=False,
    scenario=None,
    **overrides
):
    """One deployment run; returns (metrics, counters, trace)."""
    message_mod._SEQ = 0
    tracer = RecordingTracer()
    with _env_flags(
        **{
            LEGACY_USERS_ENV: "1" if legacy_users else None,
            LEGACY_KERNEL_ENV: "1" if legacy_kernel else None,
        }
    ):
        deployment = build_deployment(
            _tiny_config(seed, **overrides),
            method,
            infrastructure,
            tracer=tracer,
            scenario=scenario,
        )
    assert (deployment.cohort is not None) == (
        not legacy_users and not legacy_kernel
    )
    metrics = deployment.run()
    trace = tracer.events(kinds=_TRACE_KINDS)
    return metrics, deployment.fabric.counters.to_dict(), trace


def _cell_overrides(method, infrastructure):
    # invalidation/broadcast floods; cut the horizon shortly after the
    # storm starts so the cell stays fast (same trim as the kernel
    # differential suite).
    if (method, infrastructure) == ("invalidation", "broadcast"):
        return {"horizon_s": 80.0}
    return {}


def _assert_identical(cohort, actors, label):
    cohort_m, cohort_c, cohort_t = cohort
    actor_m, actor_c, actor_t = actors
    cohort_d = cohort_m.to_dict()
    actor_d = actor_m.to_dict()
    cohort_d.pop("events_processed")
    actor_d.pop("events_processed")
    assert cohort_d == actor_d, "DeploymentMetrics diverged (%s)" % label
    assert cohort_c == actor_c, "FabricCounters diverged (%s)" % label
    assert cohort_t == actor_t, "traces diverged (%s)" % label


# ----------------------------------------------------------------------
# the differential contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("infrastructure", INFRASTRUCTURES)
@pytest.mark.parametrize("method", METHODS)
def test_cohort_bit_identical(method, infrastructure):
    """Cohort and actor user planes agree exactly, at three seeds."""
    overrides = _cell_overrides(method, infrastructure)
    for seed in (0, 1, 2):
        cohort = _run_cell(
            method, infrastructure, seed, legacy_users=False, **overrides
        )
        actors = _run_cell(
            method, infrastructure, seed, legacy_users=True, **overrides
        )
        _assert_identical(
            cohort, actors, "%s/%s seed %d" % (method, infrastructure, seed)
        )


@pytest.mark.parametrize("selector", ["fixed", "switch"])
def test_selector_modes_bit_identical(selector):
    """Both visit-target policies match, including the shared
    switch-selector RNG stream's draw order."""
    for seed in (0, 1):
        cohort = _run_cell(
            "ttl", "unicast", seed, legacy_users=False, user_selector=selector
        )
        actors = _run_cell(
            "ttl", "unicast", seed, legacy_users=True, user_selector=selector
        )
        _assert_identical(cohort, actors, "%s seed %d" % (selector, seed))


@pytest.mark.parametrize(
    "scenario", ["paper-baseline", "failure-storm", "flash-crowd", "cdn-reconfig"]
)
def test_scenario_cells_bit_identical(scenario):
    """Perturbation-heavy scenarios (node failures, reconfiguration
    mid-run) match across user planes too."""
    for method in ("ttl", "push"):
        cohort = _run_cell(
            method, "unicast", 0, legacy_users=False, scenario=scenario
        )
        actors = _run_cell(
            method, "unicast", 0, legacy_users=True, scenario=scenario
        )
        _assert_identical(cohort, actors, "%s@%s" % (method, scenario))


def test_aggregate_mode_identical_across_all_arms():
    """user_metrics='aggregate' produces one answer from all three
    arms: cohort, fast-kernel actors, and legacy-kernel actors."""
    results = []
    for legacy_users, legacy_kernel in (
        (False, False),
        (True, False),
        (True, True),
    ):
        metrics, counters, trace = _run_cell(
            "ttl",
            "unicast",
            0,
            legacy_users=legacy_users,
            legacy_kernel=legacy_kernel,
            user_metrics="aggregate",
        )
        data = metrics.to_dict()
        data.pop("events_processed")
        results.append((data, trace))
    assert results[0] == results[1] == results[2]


def test_aggregate_mode_matches_per_user_rollup():
    """Aggregate metrics equal the per-user layout re-grouped by home
    server: same observations, coarser bookkeeping."""
    aggregate = _run_cell(
        "ttl", "unicast", 0, legacy_users=False, user_metrics="aggregate"
    )[0]
    per_user = _run_cell(
        "ttl", "unicast", 0, legacy_users=False, user_metrics="per-user"
    )[0]
    groups = {}
    for node_id, lag in per_user.user_lags.items():
        groups.setdefault(node_id.rsplit("-user-", 1)[0], []).append(
            (lag, per_user.user_stale_fractions[node_id])
        )
    for group, pairs in groups.items():
        mean_lag = sum(lag for lag, _ in pairs) / len(pairs)
        mean_stale = sum(stale for _, stale in pairs) / len(pairs)
        assert aggregate.user_lags[group] == pytest.approx(mean_lag)
        assert aggregate.user_stale_fractions[group] == pytest.approx(mean_stale)


# ----------------------------------------------------------------------
# sharding: exact distribution
# ----------------------------------------------------------------------
class TestShardedMerge:
    def _specs(self, shards, **overrides):
        config = _tiny_config(0, user_metrics="aggregate", **overrides)
        return shard_specs(RunSpec(config=config, method="ttl"), shards)

    def test_merge_is_worker_count_invariant(self):
        specs = self._specs(3)
        weights = shard_user_counts(2, 3)
        serial = merge_shard_metrics(
            run_specs(specs, Runner(workers=1, registry=False)).metrics, weights
        )
        pooled = merge_shard_metrics(
            run_specs(specs, Runner(workers=3, registry=False)).metrics, weights
        )
        assert serial.to_dict() == pooled.to_dict()

    def test_shards_partition_the_population(self):
        specs = self._specs(2, users_per_server=3)
        outcome = run_specs(specs, Runner(workers=1, registry=False))
        merged = merge_shard_metrics(
            outcome.metrics, shard_user_counts(3, 2)
        )
        # Same server plane in every shard; each user simulated once.
        for metrics in outcome.metrics:
            assert list(metrics.server_lags) == list(merged.server_lags)
        assert merged.name.endswith("[merged x2]")
        assert len(merged.user_lags) == 6  # one group per home server

    def test_sharding_requires_aggregate_metrics(self):
        spec = RunSpec(config=_tiny_config(0), method="ttl")
        with pytest.raises(ValueError, match="aggregate"):
            shard_specs(spec, 2)

    def test_single_shard_passthrough(self):
        spec = RunSpec(config=_tiny_config(0), method="ttl")
        assert shard_specs(spec, 1) == [spec]

    def test_mismatched_server_planes_rejected(self):
        specs = self._specs(2)
        outcome = run_specs(specs, Runner(workers=1, registry=False))
        other = build_deployment(
            _tiny_config(0, n_servers=4, user_metrics="aggregate"), "ttl"
        ).run()
        with pytest.raises(ValueError, match="server plane"):
            merge_shard_metrics(
                [outcome.metrics[0], other], shard_user_counts(2, 2)
            )

    def test_shard_user_counts_cover_uneven_splits(self):
        assert shard_user_counts(5, 2) == [3, 2]
        assert shard_user_counts(1, 4) == [1, 0, 0, 0]
        assert shard_user_counts(0, 2) == [0, 0]


def test_spec_serialization_drops_default_user_plane_knobs():
    """Default-valued user-plane knobs stay out of the canonical spec
    form, so pre-cohort registry keys (and memoized runs) stay valid."""
    spec = RunSpec(config=_tiny_config(0), method="ttl")
    data = spec.to_dict()
    assert "user_metrics" not in data["config"]
    assert "user_shards" not in data["config"]
    assert "user_shard" not in data["config"]
    assert RunSpec.from_dict(data) == spec
    sharded = shard_specs(
        RunSpec(
            config=_tiny_config(0, user_metrics="aggregate"), method="ttl"
        ),
        2,
    )[1]
    data = sharded.to_dict()
    assert data["config"]["user_shards"] == 2
    assert data["config"]["user_shard"] == 1
    assert data["config"]["user_metrics"] == "aggregate"
    assert RunSpec.from_dict(data) == sharded
