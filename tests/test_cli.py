"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_measure_defaults(self):
        args = build_parser().parse_args(["measure"])
        assert args.command == "measure"
        assert args.servers == 150

    def test_evaluate_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--method", "smoke-signals"])

    def test_advise_requires_rates(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise", "--servers", "10"])

    def test_evaluate_accepts_registry_aliases(self):
        args = build_parser().parse_args(["evaluate", "--method", "inval"])
        assert args.method == "inval"

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.methods == ["push", "invalidation", "ttl"]
        assert args.infrastructures == ["unicast"]
        assert args.workers is None and args.registry is None

    def test_sweep_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--methods", "smoke-signals"])


class TestCommands:
    def test_measure_runs(self, capsys, tmp_path):
        save_path = str(tmp_path / "trace.json")
        code = main(
            ["measure", "--servers", "40", "--days", "2", "--save", save_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "inferred TTL" in out
        assert "contradicts a multicast tree" in out
        from repro.trace import CdnTrace

        assert CdnTrace.load(save_path).n_servers == 40

    def test_evaluate_runs(self, capsys):
        code = main(
            [
                "evaluate",
                "--method", "push",
                "--servers", "8",
                "--users-per-server", "1",
                "--updates", "10",
                "--duration", "300",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "push/unicast" in out
        assert "traffic cost" in out

    def test_advise_strict_hot(self, capsys):
        code = main(
            [
                "advise",
                "--update-rate", "0.05",
                "--visit-rate", "0.5",
                "--servers", "100",
                "--tolerance", "1",
            ]
        )
        assert code == 0
        assert "recommendation: push" in capsys.readouterr().out

    def test_sweep_runs_grid(self, capsys):
        code = main(
            [
                "sweep",
                "--methods", "push", "ttl",
                "--server-ttls", "10", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "push/unicast" in out and "ttl/unicast" in out
        assert "ran 4 deployment(s) (0 cache hit(s))" in out

    def test_sweep_second_run_hits_registry(self, capsys, tmp_path):
        registry = str(tmp_path / "runs.json")
        argv = ["sweep", "--methods", "push", "--registry", registry]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "ran 1 deployment(s) (0 cache hit(s))" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "ran 0 deployment(s) (1 cache hit(s))" in second
        # cached metrics are bit-identical: the result rows match exactly
        assert first.splitlines()[1] == second.splitlines()[1]

    def test_sweep_systems_mode(self, capsys):
        code = main(["sweep", "--systems", "hat", "push"])
        assert code == 0
        out = capsys.readouterr().out
        assert "system:hat" in out and "system:push" in out

    def test_advise_bursty(self, capsys):
        code = main(
            [
                "advise",
                "--update-rate", "0.05",
                "--visit-rate", "0.2",
                "--servers", "100",
                "--tolerance", "30",
                "--silence-fraction", "0.8",
            ]
        )
        assert code == 0
        assert "recommendation: self-adaptive" in capsys.readouterr().out
