"""Statistical tests for the generative trace model (Section 3 data)."""

import numpy as np
import pytest

from repro.metrics import Cdf
from repro.trace import (
    SynthesisConfig,
    TraceSynthesizer,
    all_inconsistencies,
    infer_ttl,
    observed_absence_lengths,
    theory_rmse,
)


@pytest.fixture(scope="module")
def trace():
    config = SynthesisConfig(n_servers=120, n_days=5)
    return TraceSynthesizer(config, master_seed=11).synthesize()


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SynthesisConfig(n_servers=0)
        with pytest.raises(ValueError):
            SynthesisConfig(updates_per_day_low=10, updates_per_day_high=5)
        with pytest.raises(ValueError):
            SynthesisConfig(absence_prob_per_day=1.5)
        with pytest.raises(ValueError):
            SynthesisConfig(absence_short_frac=0.8, absence_mid_frac=0.4)


class TestShape:
    def test_dimensions(self, trace):
        assert trace.n_servers == 120
        assert trace.n_days == 5
        for day in trace.days:
            assert len(day.polls) == 120
            assert day.provider_polls is not None
            assert day.n_updates >= 50

    def test_polls_cover_the_session(self, trace):
        day = trace.days[0]
        for series in day.polls.values():
            if series.had_absence:
                continue
            assert series.times[0] < 2 * trace.poll_interval_s
            assert series.times[-1] > day.session_length_s - 3 * trace.poll_interval_s

    def test_versions_monotone_per_server(self, trace):
        for day in trace.days:
            for series in day.polls.values():
                versions = series.versions
                assert np.all(np.diff(versions) >= 0)
                assert versions.max() <= day.n_updates

    def test_determinism(self):
        config = SynthesisConfig(n_servers=20, n_days=1)
        a = TraceSynthesizer(config, master_seed=5).synthesize()
        b = TraceSynthesizer(config, master_seed=5).synthesize()
        sid = a.server_ids()[0]
        np.testing.assert_array_equal(
            a.days[0].polls[sid].versions, b.days[0].polls[sid].versions
        )
        c = TraceSynthesizer(config, master_seed=6).synthesize()
        assert not np.array_equal(
            a.days[0].polls[sid].versions, c.days[0].polls[sid].versions
        )


class TestCalibration:
    """The synthetic trace must reproduce the paper's headline statistics."""

    def test_mean_inconsistency_in_paper_range(self, trace):
        lengths = all_inconsistencies(trace)
        assert 28.0 < lengths.mean() < 42.0  # paper: ~40 s

    def test_fraction_below_10s(self, trace):
        cdf = Cdf(all_inconsistencies(trace))
        assert 0.05 < cdf.at(10.0) < 0.18  # paper: 10.1%

    def test_fraction_above_50s(self, trace):
        cdf = Cdf(all_inconsistencies(trace))
        assert 0.08 < cdf.fraction_above(50.0) < 0.30  # paper: 20.3%

    def test_ttl_recoverable(self, trace):
        lengths = all_inconsistencies(trace)
        inference = infer_ttl(lengths)
        assert 54.0 <= inference.ttl_s <= 68.0  # planted 60 s

    def test_theory_rmse_prefers_true_ttl(self, trace):
        lengths = all_inconsistencies(trace)
        assert theory_rmse(lengths, 60.0) < theory_rmse(lengths, 80.0)

    def test_absence_lengths_match_mixture(self, trace):
        absences = observed_absence_lengths(trace)
        assert absences.size > 0
        assert float(np.mean(absences < 50.0)) > 0.75  # paper: 93.1% < 50 s
        assert absences.max() <= 600.0


class TestUserSynthesis:
    def test_user_trace_shape(self, trace):
        synthesizer = TraceSynthesizer(
            SynthesisConfig(n_servers=120, n_days=5), master_seed=11
        )
        users = synthesizer.synthesize_users(trace, n_users=20)
        assert users.n_users == 20
        for days in users.users.values():
            assert len(days) == trace.n_days
            for series in days:
                assert len(series) == len(series.server_ids)
                assert series.versions.max() <= max(d.n_updates for d in trace.days)

    def test_redirect_fraction_in_paper_band(self, trace):
        synthesizer = TraceSynthesizer(
            SynthesisConfig(n_servers=120, n_days=5), master_seed=11
        )
        users = synthesizer.synthesize_users(trace, n_users=30)
        fractions = [
            series.redirected_fraction()
            for days in users.users.values()
            for series in days
        ]
        median = float(np.median(fractions))
        assert 0.08 < median < 0.25  # paper: most users 13-17%

    def test_invalid_user_count(self, trace):
        synthesizer = TraceSynthesizer(SynthesisConfig(n_servers=10, n_days=1))
        with pytest.raises(ValueError):
            synthesizer.synthesize_users(trace, n_users=0)
