"""Tests for live run progress (repro.obs.live + the engine hook):

- the engine's ``progress`` hook: stride-gated invocations, one final
  call on completion, and the purity differential (hook on/off leaves
  sim outcomes bit-identical);
- Heartbeat: snapshot shape, wall-clock rate limiting, forced final
  writes, telemetry counter deltas, horizon fractions;
- ProgressTracker: begin/spec_done/finish/fail lifecycle and
  thread-safe rate-limited writes;
- merge_heartbeats: the PR 5 algebra over worker heartbeats (events and
  counters sum, peak RSS maxes, fraction averages);
- render_watch output;
- Runner integration: a pooled sweep with a registry produces a
  progress file plus per-spec heartbeats, and `repro watch --once`
  renders them.
"""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.obs.live import (
    HEARTBEAT_FORMAT,
    PROGRESS_DIR_ENV,
    PROGRESS_FORMAT,
    Heartbeat,
    ProgressTracker,
    default_progress_path,
    heartbeat_dir,
    merge_heartbeats,
    read_heartbeats,
    read_progress,
    render_watch,
)
from repro.obs.telemetry import TELEMETRY
from repro.runner import Runner, RunRegistry, RunSpec
from repro.sim import Environment


def _spin(env, rounds):
    for _ in range(rounds):
        yield env.timeout(1.0)


class TestEngineProgressHook:
    def test_hook_fires_on_stride_and_completion(self):
        env = Environment()
        calls = []
        env.progress = lambda t, n: calls.append((t, n))
        env.process(_spin(env, 3 * Environment.PROGRESS_STRIDE))
        env.run()
        assert len(calls) >= 3
        # Stride-gated: every mid-run call lands on a stride multiple.
        for _, n in calls[:-1]:
            assert n % Environment.PROGRESS_STRIDE == 0
        # Final call reports the true totals.
        final_time, final_events = calls[-1]
        assert final_time == env.now
        assert final_events == env.events_processed

    def test_no_hook_no_calls_and_identical_outcomes(self):
        plain = Environment()
        plain.process(_spin(plain, 500))
        plain.run()

        hooked = Environment()
        calls = []
        hooked.progress = lambda t, n: calls.append((t, n))
        hooked.process(_spin(hooked, 500))
        hooked.run()

        assert (plain.now, plain.events_processed) == (
            hooked.now, hooked.events_processed,
        )
        assert calls  # at least the final call

    def test_hook_exception_propagates(self):
        env = Environment()

        def boom(t, n):
            raise RuntimeError("hook broke")

        env.progress = boom
        env.process(_spin(env, 5))
        with pytest.raises(RuntimeError, match="hook broke"):
            env.run()


class TestHeartbeat:
    def test_snapshot_shape(self, tmp_path):
        path = str(tmp_path / "shard.json")
        beat = Heartbeat(path, label="ttl-shard0", horizon=200.0,
                         min_interval_s=0.0)
        TELEMETRY.count("live.test_counter", 3)
        beat(50.0, 4096)
        doc = json.load(open(path))
        assert doc["format"] == HEARTBEAT_FORMAT
        assert doc["label"] == "ttl-shard0"
        assert doc["pid"] == os.getpid()
        assert doc["sim_time"] == 50.0
        assert doc["horizon"] == 200.0
        assert doc["fraction"] == pytest.approx(0.25)
        assert doc["events_processed"] == 4096
        assert doc["events_per_s"] > 0
        assert doc["peak_rss_kb"] > 0
        # Counters are the delta since the heartbeat was created, not
        # the process-lifetime totals.
        assert doc["counters"]["live.test_counter"] == 3

    def test_rate_limited(self, tmp_path):
        path = str(tmp_path / "shard.json")
        beat = Heartbeat(path, label="x", min_interval_s=3600.0)
        for step in range(10):
            beat(float(step), step * 100)
        assert beat.writes == 1  # only the first call lands
        assert json.load(open(path))["sim_time"] == 0.0

    def test_finish_forces_write(self, tmp_path):
        path = str(tmp_path / "shard.json")
        beat = Heartbeat(path, label="x", horizon=100.0,
                         min_interval_s=3600.0)
        beat(10.0, 100)
        beat.finish(100.0, 12345)
        doc = json.load(open(path))
        assert doc["events_processed"] == 12345
        assert doc["fraction"] == 1.0
        assert beat.writes == 2

    def test_no_horizon_no_fraction(self, tmp_path):
        path = str(tmp_path / "shard.json")
        Heartbeat(path, label="x", min_interval_s=0.0)(5.0, 10)
        doc = json.load(open(path))
        assert doc["horizon"] is None
        assert doc["fraction"] is None

    def test_fraction_clamped_to_one(self, tmp_path):
        path = str(tmp_path / "shard.json")
        Heartbeat(path, label="x", horizon=10.0, min_interval_s=0.0)(25.0, 1)
        assert json.load(open(path))["fraction"] == 1.0


class TestProgressTracker:
    def test_lifecycle(self, tmp_path):
        path = str(tmp_path / "runs.progress.json")
        tracker = ProgressTracker(path, min_interval_s=0.0)
        tracker.begin(n_specs=4, cache_hits=1, pending=3, workers=2)
        doc = read_progress(path)
        assert doc["status"] == "running"
        assert doc["n_specs"] == 4 and doc["cache_hits"] == 1
        tracker.spec_done("ttl-a", 1.5)
        tracker.spec_done("ttl-b", 2.5)
        doc = read_progress(path)
        assert doc["executed"] == 2
        assert [r["label"] for r in doc["completed"]] == ["ttl-a", "ttl-b"]
        tracker.finish({"events_processed": 99})
        doc = read_progress(path)
        assert doc["status"] == "done"
        assert doc["stats"]["events_processed"] == 99
        assert doc["format"] == PROGRESS_FORMAT

    def test_fail_records_reason(self, tmp_path):
        path = str(tmp_path / "runs.progress.json")
        tracker = ProgressTracker(path, min_interval_s=0.0)
        tracker.begin(1, 0, 1, 1)
        tracker.fail("worker crashed")
        doc = read_progress(path)
        assert doc["status"] == "failed"
        assert doc["reason"] == "worker crashed"

    def test_intermediate_writes_rate_limited(self, tmp_path):
        path = str(tmp_path / "runs.progress.json")
        tracker = ProgressTracker(path, min_interval_s=3600.0)
        tracker.begin(10, 0, 10, 1)  # forced
        for index in range(5):
            tracker.spec_done("spec-%d" % index, 0.1)  # all throttled
        assert read_progress(path)["executed"] == 0
        tracker.finish()  # forced: flushes the real totals
        assert read_progress(path)["executed"] == 5


class TestReadHelpers:
    def test_read_progress_rejects_torn_and_foreign(self, tmp_path):
        path = str(tmp_path / "p.json")
        assert read_progress(path) is None  # absent
        with open(path, "w") as handle:
            handle.write('{"truncat')
        assert read_progress(path) is None  # torn
        with open(path, "w") as handle:
            json.dump({"format": 999}, handle)
        assert read_progress(path) is None  # foreign format

    def test_read_heartbeats_skips_junk(self, tmp_path):
        directory = str(tmp_path)
        good = {"format": HEARTBEAT_FORMAT, "label": "b-shard"}
        with open(os.path.join(directory, "b.json"), "w") as handle:
            json.dump(good, handle)
        with open(os.path.join(directory, "a.json"), "w") as handle:
            handle.write("not json")
        with open(os.path.join(directory, "c.txt"), "w") as handle:
            handle.write("ignored")
        beats = read_heartbeats(directory)
        assert [b["label"] for b in beats] == ["b-shard"]
        assert read_heartbeats(str(tmp_path / "missing")) == []

    def test_paths(self):
        assert default_progress_path("runs.json") == "runs.progress.json"
        assert heartbeat_dir("runs.progress.json") == "runs.progress.d"


class TestMergeHeartbeats:
    def _beat(self, **overrides):
        doc = {
            "format": HEARTBEAT_FORMAT,
            "label": "x",
            "events_processed": 100,
            "events_per_s": 10.0,
            "peak_rss_kb": 1000,
            "counters": {"sim.events": 100.0},
            "fraction": 0.5,
        }
        doc.update(overrides)
        return doc

    def test_algebra(self):
        merged = merge_heartbeats([
            self._beat(),
            self._beat(events_processed=300, events_per_s=30.0,
                       peak_rss_kb=5000,
                       counters={"sim.events": 300.0, "net.msgs": 7.0},
                       fraction=1.0),
        ])
        assert merged["workers"] == 2
        assert merged["events_processed"] == 400  # sums
        assert merged["events_per_s"] == 40.0  # concurrent workers sum
        assert merged["peak_rss_kb"] == 5000  # high-water marks max
        assert merged["counters"] == {"sim.events": 400.0, "net.msgs": 7.0}
        assert merged["fraction"] == pytest.approx(0.75)  # mean

    def test_empty_and_missing_fields(self):
        merged = merge_heartbeats([])
        assert merged["workers"] == 0
        assert merged["fraction"] is None
        # A heartbeat missing optional fields merges as zeros.
        merged = merge_heartbeats([{"format": HEARTBEAT_FORMAT}])
        assert merged["events_processed"] == 0
        assert merged["fraction"] is None


class TestRenderWatch:
    def test_no_data(self):
        assert render_watch(None, []) == ["(no progress data yet)"]

    def test_full_screen(self):
        progress = {
            "format": PROGRESS_FORMAT, "status": "running",
            "n_specs": 4, "executed": 1, "cache_hits": 1,
            "workers": 2, "elapsed_s": 3.0,
            "completed": [{"label": "ttl-a", "elapsed_s": 1.25}],
        }
        beats = [{
            "format": HEARTBEAT_FORMAT, "label": "push-shard1",
            "sim_time": 120.0, "events_processed": 12345,
            "events_per_s": 999.0, "peak_rss_kb": 2048,
            "fraction": 0.5, "updated_unix": 100.0, "counters": {},
        }]
        lines = render_watch(progress, beats, now_wall=103.0)
        screen = "\n".join(lines)
        assert "sweep: running" in screen
        assert "2/4 spec(s)" in screen  # executed + cached
        assert "done: ttl-a" in screen
        assert "shards: 1 live" in screen
        assert "12,345" in screen
        assert "3s ago" in screen


class TestRunnerIntegration:
    def test_sweep_writes_progress_and_heartbeats(
        self, tmp_path, smoke_config, monkeypatch
    ):
        monkeypatch.delenv(PROGRESS_DIR_ENV, raising=False)
        registry_path = str(tmp_path / "runs.json")
        specs = [
            RunSpec(config=smoke_config, method=method)
            for method in ("ttl", "push", "invalidation")
        ]
        runner = Runner(workers=2, registry=RunRegistry(registry_path))
        outcome = runner.run(specs)
        assert len(outcome) == 3

        progress_path = default_progress_path(registry_path)
        doc = read_progress(progress_path)
        assert doc["status"] == "done"
        assert doc["n_specs"] == 3
        assert doc["executed"] + doc["cache_hits"] == 3
        assert {r["label"] for r in doc["completed"]} == {
            spec.label for spec in specs
        }
        assert doc["stats"]["events_processed"] > 0

        beats = read_heartbeats(heartbeat_dir(progress_path))
        assert {b["label"] for b in beats} == {spec.label for spec in specs}
        for beat in beats:
            assert beat["fraction"] == 1.0  # finish() wrote the final state
            assert beat["events_processed"] > 0
        # The hook never leaks into the environment after the sweep.
        assert PROGRESS_DIR_ENV not in os.environ

    def test_progress_identical_outcomes_and_cache_hits(
        self, tmp_path, smoke_config, monkeypatch
    ):
        monkeypatch.delenv(PROGRESS_DIR_ENV, raising=False)
        registry_path = str(tmp_path / "runs.json")
        spec = RunSpec(config=smoke_config, method="ttl")

        plain = Runner(workers=1, registry=False).run([spec])
        tracked = Runner(
            workers=2, registry=RunRegistry(registry_path)
        ).run([spec])
        assert plain[0].to_dict() == tracked[0].to_dict()

        # A second sweep is all cache hits; the progress file says so.
        again = Runner(
            workers=2, registry=RunRegistry(registry_path)
        ).run([spec])
        assert again[0].to_dict() == plain[0].to_dict()
        doc = read_progress(default_progress_path(registry_path))
        assert doc["status"] == "done"
        assert doc["cache_hits"] == 1
        assert doc["executed"] == 0

    def test_no_registry_no_progress_file(self, smoke_config, tmp_path,
                                          monkeypatch):
        monkeypatch.delenv(PROGRESS_DIR_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        Runner(workers=1, registry=False).run(
            [RunSpec(config=smoke_config, method="ttl")]
        )
        assert list(tmp_path.iterdir()) == []


class TestWatchCli:
    def test_once_renders_snapshot(self, tmp_path, capsys):
        registry_path = str(tmp_path / "runs.json")
        progress_path = default_progress_path(registry_path)
        tracker = ProgressTracker(progress_path, min_interval_s=0.0)
        tracker.begin(2, 0, 2, 2)
        tracker.spec_done("ttl-x", 1.0)
        beats_dir = heartbeat_dir(progress_path)
        os.makedirs(beats_dir)
        Heartbeat(
            os.path.join(beats_dir, "shard.json"),
            label="ttl-x-shard0", horizon=100.0, min_interval_s=0.0,
        )(40.0, 8192)
        assert cli_main(["watch", "--once", "--registry", registry_path]) == 0
        out = capsys.readouterr().out
        assert "sweep: running" in out
        assert "ttl-x-shard0" in out
        assert "8,192" in out

    def test_exits_when_done(self, tmp_path, capsys):
        progress_path = str(tmp_path / "runs.progress.json")
        tracker = ProgressTracker(progress_path, min_interval_s=0.0)
        tracker.begin(1, 1, 0, 1)
        tracker.finish()
        assert cli_main(["watch", progress_path, "--interval", "0.1"]) == 0
        assert "sweep: done" in capsys.readouterr().out

    def test_exits_nonzero_when_failed(self, tmp_path, capsys):
        progress_path = str(tmp_path / "runs.progress.json")
        tracker = ProgressTracker(progress_path, min_interval_s=0.0)
        tracker.begin(1, 0, 1, 1)
        tracker.fail("boom")
        assert cli_main(["watch", progress_path, "--interval", "0.1"]) == 1

    def test_requires_a_source(self, monkeypatch):
        from repro.runner.registry import REGISTRY_ENV

        monkeypatch.delenv(REGISTRY_ENV, raising=False)
        with pytest.raises(SystemExit):
            cli_main(["watch", "--once"])
