"""Tests for the ``repro scenario`` subcommand and ``sweep --scenarios``."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_scenario_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_scenario_run_defaults(self):
        args = build_parser().parse_args(["scenario", "run", "paper-baseline"])
        assert args.scenario_command == "run"
        assert args.name == "paper-baseline"
        assert args.method == "ttl"
        assert args.scale == "smoke"
        assert args.workers is None and args.registry is None

    def test_scenario_run_small_scale_accepted(self):
        args = build_parser().parse_args(
            ["scenario", "run", "paper-baseline", "--scale", "small"]
        )
        assert args.scale == "small"

    def test_sweep_accepts_scenarios(self):
        args = build_parser().parse_args(
            ["sweep", "--scenarios", "paper-baseline", "storm"]
        )
        assert args.scenarios == ["paper-baseline", "storm"]


class TestScenarioCommands:
    def test_list_table(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "paper-baseline" in out
        assert "zipf-catalog" in out

    def test_list_json(self, capsys):
        assert main(["scenario", "list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        names = [row["name"] for row in rows]
        assert "paper-baseline" in names
        assert len(names) >= 6
        assert all("summary" in row and "aliases" in row for row in rows)

    def test_describe(self, capsys):
        assert main(["scenario", "describe", "failure-storm"]) == 0
        out = capsys.readouterr().out
        assert "failure-storm" in out
        assert "cells" in out

    def test_describe_json_expands_cells(self, capsys):
        assert main(
            ["scenario", "describe", "zipf-catalog", "--json", "--scale", "smoke"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["n_cells"] == 6
        assert data["cells"][0]["label"] == "obj-00"

    def test_describe_unknown_exits(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["scenario", "describe", "smoke-signals"])

    def test_run_smoke(self, capsys):
        assert main(
            ["scenario", "run", "paper-baseline", "--scale", "small"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenario: paper-baseline" in out
        assert "mean user lag" in out

    def test_run_json(self, capsys):
        assert main(
            ["scenario", "run", "flash-crowd", "--scale", "smoke", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "scenario:flash-crowd"
        assert data["summary"]["n_cells"] == 1
        assert data["params"]["method"] == "ttl"

    def test_run_system(self, capsys):
        assert main(
            ["scenario", "run", "failure-storm", "--system", "hybrid"]
        ) == 0
        out = capsys.readouterr().out
        assert "system:hybrid" in out
        assert "node downtime" in out

    def test_run_alias(self, capsys):
        assert main(["scenario", "run", "baseline"]) == 0
        assert "scenario: paper-baseline" in capsys.readouterr().out

    def test_run_registry_memoizes(self, capsys, tmp_path):
        registry = str(tmp_path / "runs.json")
        assert main(
            ["scenario", "run", "flash-crowd", "--registry", registry]
        ) == 0
        capsys.readouterr()
        assert main(
            ["scenario", "run", "flash-crowd", "--registry", registry]
        ) == 0
        assert "1 cache hit(s)" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(
            ["scenario", "compare", "paper-baseline", "failure-storm"]
        ) == 0
        out = capsys.readouterr().out
        assert "best:" in out and "worst:" in out
        assert "paper-baseline" in out and "failure-storm" in out

    def test_compare_json(self, capsys):
        assert main(
            ["scenario", "compare", "paper-baseline", "flash-crowd", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data["series"]) == {"paper-baseline", "flash-crowd"}
        assert data["summary"]["user_lag_ordering"]


class TestSweepScenarios:
    def test_sweep_expands_catalog_cells(self, capsys):
        assert main(
            [
                "sweep",
                "--methods", "ttl",
                "--infrastructures", "unicast",
                "--scenarios", "zipf-catalog",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "scenario=zipf-catalog[0]" in out
        assert "scenario=zipf-catalog[5]" in out

    def test_sweep_default_scenario_keeps_legacy_labels(self, capsys):
        assert main(
            [
                "sweep",
                "--methods", "ttl",
                "--infrastructures", "unicast",
                "--scenarios", "paper-baseline",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "ttl/unicast seed=0" in out
        assert "scenario=" not in out

    def test_sweep_scenarios_with_systems(self, capsys):
        assert main(
            ["sweep", "--systems", "hybrid", "--scenarios", "storm"]
        ) == 0
        out = capsys.readouterr().out
        assert "system:hybrid" in out
        assert "failure-storm" in out
