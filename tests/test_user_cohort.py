"""Unit and edge-case tests for the struct-of-arrays user plane.

Covers the corners the differential suite's grid does not isolate:
empty and single-user populations, start-time jitter collapsing many
first visits into one sweep batch, servers failing mid-run, the
pure-Python array backend, the :class:`~repro.sim.timers.CallbackLane`
contract, and the LRU placement cache's keying/tuning.
"""

import os
from contextlib import contextmanager

import pytest

import repro.cdn.cohort as cohort_mod
import repro.experiments.testbed as testbed_mod
import repro.network.message as message_mod
from repro.cdn.cohort import (
    COHORT_BACKEND_ENV,
    LEGACY_USERS_ENV,
    UserCohort,
    _NumpyBackend,
    _PurePythonBackend,
    _select_backend,
    legacy_users_enabled,
)
from repro.experiments.config import TestbedConfig
from repro.experiments.testbed import build_deployment
from repro.sim import Environment
from repro.sim.timers import CallbackLane


def _config(seed=0, **overrides):
    defaults = dict(
        n_servers=4,
        users_per_server=2,
        n_updates=6,
        game_duration_s=200.0,
        hat_clusters=3,
        seed=seed,
    )
    defaults.update(overrides)
    return TestbedConfig(**defaults)


@contextmanager
def _legacy_users():
    old = os.environ.get(LEGACY_USERS_ENV)
    os.environ[LEGACY_USERS_ENV] = "1"
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(LEGACY_USERS_ENV, None)
        else:
            os.environ[LEGACY_USERS_ENV] = old


def _run(config, method="ttl"):
    message_mod._SEQ = 0
    deployment = build_deployment(config, method)
    metrics = deployment.run()
    return deployment, metrics


def _comparable(metrics):
    data = metrics.to_dict()
    data.pop("events_processed")
    return data


# ----------------------------------------------------------------------
# population edge cases
# ----------------------------------------------------------------------
class TestPopulationEdges:
    def test_zero_users_per_server(self):
        deployment, metrics = _run(_config(users_per_server=0))
        assert deployment.cohort is not None
        assert deployment.cohort.n_users == 0
        assert list(deployment.cohort.users) == []
        assert metrics.user_lags == {}
        assert metrics.server_lags  # server plane unaffected

    def test_zero_users_matches_actor_arm(self):
        cohort = _comparable(_run(_config(users_per_server=0))[1])
        with _legacy_users():
            actors = _comparable(_run(_config(users_per_server=0))[1])
        assert cohort == actors

    def test_single_user(self):
        deployment, metrics = _run(_config(n_servers=1, users_per_server=1))
        cohort = deployment.cohort
        assert cohort.n_users == 1
        assert cohort.visits_started > 0
        assert len(metrics.user_lags) == 1
        (observations,) = [cohort.observations_of(0)]
        assert observations, "single user never observed anything"
        assert observations == list(cohort.users[0].observations)

    def test_jitter_straddling_one_sweep_batch(self):
        """A tiny start window collapses every first visit into one or
        two sweep batches; ordering and metrics must still match the
        actor arm exactly."""
        config = _config(user_start_window_s=0.001)
        cohort_metrics = _comparable(_run(config)[1])
        with _legacy_users():
            actor_metrics = _comparable(_run(config)[1])
        assert cohort_metrics == actor_metrics

    def test_batched_sweeps_actually_batch(self):
        """Coinciding deadlines expire in one sweep: with every start
        offset pinned to the same instant, the first batch serves the
        whole population off a single control event."""
        message_mod._SEQ = 0
        deployment = build_deployment(_config(), "ttl")
        cohort = deployment.cohort
        cohort._start_offsets = [10.0] * cohort.n_users
        deployment.run()
        assert cohort.visits_started > cohort.n_users
        assert cohort.sweeps <= cohort.visits_started - (cohort.n_users - 1)


# ----------------------------------------------------------------------
# mid-run server failures
# ----------------------------------------------------------------------
class TestMidRunFailures:
    def test_failed_visits_accrue_and_polling_resumes(self):
        message_mod._SEQ = 0
        config = _config(n_servers=2, users_per_server=1)
        deployment = build_deployment(config, "ttl")
        cohort = deployment.cohort
        victim = deployment.servers[0].node

        def storm(env):
            yield env.timeout(80.0)
            victim.mark_down()
            yield env.timeout(60.0)
            victim.mark_up()

        deployment.env.process(storm(deployment.env))
        metrics = deployment.run()
        assert cohort.total_failed_visits() > 0
        assert metrics.dropped_messages > 0
        # The victim's user kept its poll loop alive through the outage:
        # observations exist with timestamps after the revival.
        victim_slot = next(
            slot
            for slot, node in enumerate(cohort.nodes)
            if node.node_id.startswith(victim.node_id + "-user-")
        )
        times = [obs.time for obs in cohort.observations_of(victim_slot)]
        assert any(t > 140.0 for t in times)

    def test_mid_run_failure_matches_actor_arm(self):
        def run_with_storm():
            message_mod._SEQ = 0
            config = _config(n_servers=2, users_per_server=1)
            deployment = build_deployment(config, "ttl")
            victim = deployment.servers[0].node

            def storm(env):
                yield env.timeout(80.0)
                victim.mark_down()
                yield env.timeout(60.0)
                victim.mark_up()

            deployment.env.process(storm(deployment.env))
            return _comparable(deployment.run())

        cohort = run_with_storm()
        with _legacy_users():
            actors = run_with_storm()
        assert cohort == actors


# ----------------------------------------------------------------------
# array backend selection
# ----------------------------------------------------------------------
class TestArrayBackend:
    def test_pure_python_fallback_is_bit_identical(self, monkeypatch):
        numpy_metrics = _comparable(_run(_config())[1])
        monkeypatch.setattr(cohort_mod, "ARRAY_BACKEND", _PurePythonBackend())
        fallback_deployment, fallback = _run(_config())
        assert fallback_deployment.cohort.backend.name == "array"
        assert _comparable(fallback) == numpy_metrics

    def test_backend_env_forces_fallback(self, monkeypatch):
        monkeypatch.setenv(COHORT_BACKEND_ENV, "array")
        assert _select_backend().name == "array"
        monkeypatch.setenv(COHORT_BACKEND_ENV, "python")
        assert _select_backend().name == "array"
        monkeypatch.delenv(COHORT_BACKEND_ENV)
        # numpy is installed in the test environment, so the default
        # selection picks it.
        assert _select_backend().name == "numpy"

    def test_legacy_users_env_parsing(self, monkeypatch):
        monkeypatch.delenv(LEGACY_USERS_ENV, raising=False)
        assert not legacy_users_enabled()
        monkeypatch.setenv(LEGACY_USERS_ENV, "0")
        assert not legacy_users_enabled()
        monkeypatch.setenv(LEGACY_USERS_ENV, "1")
        assert legacy_users_enabled()


# ----------------------------------------------------------------------
# cohort user views
# ----------------------------------------------------------------------
class TestCohortViews:
    def test_views_mirror_cohort_state(self):
        deployment, metrics = _run(_config())
        cohort = deployment.cohort
        users = cohort.users
        assert len(users) == cohort.n_users == 8
        for slot, view in enumerate(users):
            assert view.node is cohort.nodes[slot]
            assert view.failed_visits == cohort.failed_visits_of(slot)
            assert list(view.observations) == cohort.observations_of(slot)
        # Deployment.users materialises the same views lazily.
        assert deployment.users is users

    def test_ttl_setter_writes_through(self):
        deployment, _ = _run(_config())
        view = deployment.cohort.users[0]
        view.user_ttl_s = 5.0
        assert deployment.cohort.users[0].user_ttl_s == 5.0
        with pytest.raises(ValueError):
            view.user_ttl_s = 0.0

    def test_aggregate_mode_has_no_per_user_observations(self):
        deployment, _ = _run(_config(user_metrics="aggregate"))
        cohort = deployment.cohort
        assert cohort.aggregate is not None
        with pytest.raises(RuntimeError, match="aggregate"):
            cohort.observations_of(0)


# ----------------------------------------------------------------------
# CallbackLane unit contract
# ----------------------------------------------------------------------
class TestCallbackLane:
    def _lane(self, env, dead=lambda payload: False):
        fired = []
        lane = CallbackLane(env, fired.append, dead)
        return lane, fired

    def test_expires_in_push_order(self):
        env = Environment()
        lane, fired = self._lane(env)
        for deadline, payload in ((1.0, "a"), (1.0, "b"), (3.0, "c")):
            lane.push(deadline, payload)
        env.run(until=2.0)
        assert fired == ["a", "b"]
        assert lane.pending == 1
        env.run()
        assert fired == ["a", "b", "c"]
        assert lane.sweeps == 2

    def test_rejects_non_monotone_deadlines(self):
        env = Environment()
        lane, _ = self._lane(env)
        lane.push(5.0, "later")
        with pytest.raises(ValueError):
            lane.push(4.0, "earlier")

    def test_dead_payloads_are_pruned_not_fired(self):
        env = Environment()
        dead = set()
        lane, fired = self._lane(env, dead=lambda p: p in dead)
        for index in range(6):
            lane.push(float(index + 1), index)
        dead.update({1, 2, 4})
        env.run()
        assert fired == [0, 3, 5]
        assert lane.cancelled == 3
        assert lane.expired == 3
        assert lane.pending == 0

    def test_push_while_running_rearms(self):
        env = Environment()
        lane, fired = self._lane(env)

        def chain(payload):
            fired.append(payload)
            if payload < 3:
                lane.push(env.now + 1.0, payload + 1)

        lane.on_expire = chain
        lane.push(1.0, 0)
        env.run()
        assert fired == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# LRU placement cache
# ----------------------------------------------------------------------
class TestPlacementCacheLRU:
    def _build(self, seed=0, **overrides):
        build_deployment(_config(seed, **overrides), "ttl")

    def test_hits_refresh_recency(self, monkeypatch):
        testbed_mod._PLACEMENT_CACHE.clear()
        monkeypatch.setattr(testbed_mod, "_PLACEMENT_CACHE_MAX", 2)
        self._build(seed=0)
        self._build(seed=1)
        self._build(seed=0)  # hit: seed 0 becomes most recent
        self._build(seed=2)  # evicts seed 1, the true LRU entry
        seeds = [key[0] for key in testbed_mod._PLACEMENT_CACHE]
        assert seeds == [0, 2]

    def test_env_tunes_capacity(self, monkeypatch):
        testbed_mod._PLACEMENT_CACHE.clear()
        monkeypatch.setenv(testbed_mod.PLACEMENT_CACHE_ENV, "1")
        self._build(seed=0)
        self._build(seed=1)
        assert len(testbed_mod._PLACEMENT_CACHE) == 1
        monkeypatch.setenv(testbed_mod.PLACEMENT_CACHE_ENV, "not-a-number")
        self._build(seed=2)  # falls back to the default capacity
        assert len(testbed_mod._PLACEMENT_CACHE) == 2

    def test_env_zero_disables_caching(self, monkeypatch):
        testbed_mod._PLACEMENT_CACHE.clear()
        monkeypatch.setenv(testbed_mod.PLACEMENT_CACHE_ENV, "0")
        self._build(seed=0)
        assert testbed_mod._PLACEMENT_CACHE == {}

    def test_shards_get_distinct_entries(self):
        """Shards share (seed, shape) but place different user subsets;
        without shard-aware keys shard 1 would reuse shard 0's users."""
        testbed_mod._PLACEMENT_CACHE.clear()
        for shard in (0, 1):
            self._build(
                user_metrics="aggregate", user_shards=2, user_shard=shard
            )
        assert len(testbed_mod._PLACEMENT_CACHE) == 2
        keys = list(testbed_mod._PLACEMENT_CACHE)
        assert keys[0] != keys[1]

    def test_shard_cache_reuse_is_bit_transparent(self):
        testbed_mod._PLACEMENT_CACHE.clear()
        config = _config(user_metrics="aggregate", user_shards=2, user_shard=1)
        message_mod._SEQ = 0
        miss = build_deployment(config, "ttl").run().to_dict()
        message_mod._SEQ = 0
        hit = build_deployment(config, "ttl").run().to_dict()
        assert miss == hit
