"""Tests for TTL inference, user-view analyses, causes, and tree tests."""

import numpy as np
import pytest

from repro.trace import (
    TraceSynthesizer,
    SynthesisConfig,
    consistency_vs_distance,
    deviation_curve,
    infer_ttl,
    isp_inconsistency_analysis,
    refinement_deviation,
    theory_rmse,
    tree_existence_analysis,
)
from repro.trace.synthesize import UserDaySeries
from repro.trace.user_view import continuous_times, observation_flags


class TestTtlRefinement:
    def test_uniform_sample_recovers_its_ttl(self):
        rng = np.random.RandomState(3)
        sample = rng.uniform(0, 60, 50000)
        inference = infer_ttl(sample, candidates=range(40, 81, 2))
        assert abs(inference.ttl_s - 60.0) <= 2.0
        assert inference.deviation < 0.05

    def test_deviation_curve_is_minimised_at_truth(self):
        rng = np.random.RandomState(4)
        sample = rng.uniform(0, 60, 50000)
        curve = dict(deviation_curve(sample, [40.0, 60.0, 80.0]))
        assert curve[60.0] < curve[40.0]
        assert curve[60.0] < curve[80.0]

    def test_refinement_deviation_validation(self):
        with pytest.raises(ValueError):
            refinement_deviation([1.0], 0.0)
        assert refinement_deviation([100.0], 50.0) == float("inf")

    def test_theory_rmse_empty_candidate(self):
        assert theory_rmse([100.0], 50.0) == float("inf")


class TestObservationFlags:
    def test_flags_and_runs(self):
        series = UserDaySeries(
            times=np.arange(0.0, 80.0, 10.0),
            versions=np.array([0, 1, 1, 0, 0, 2, 1, 3]),
            server_ids=list("aabbaacc"),
        )
        flags = observation_flags(series)
        assert flags.tolist() == [
            False, False, False, True, True, False, True, False,
        ]
        consistency, inconsistency = continuous_times(series)
        # inconsistency run from t=30 to t=50 (20 s), and t=60 to t=70 (10 s)
        assert inconsistency == [20.0, 10.0]
        # consistency runs: 0->30 and 50->60 (the trailing run is truncated)
        assert consistency == [30.0, 10.0]

    def test_empty_series(self):
        series = UserDaySeries(
            times=np.array([]), versions=np.array([], dtype=np.int64), server_ids=[]
        )
        assert observation_flags(series).size == 0
        assert continuous_times(series) == ([], [])

    def test_redirected_fraction(self):
        series = UserDaySeries(
            times=np.arange(0.0, 40.0, 10.0),
            versions=np.zeros(4, dtype=np.int64),
            server_ids=["a", "a", "b", "a"],
        )
        assert series.redirected_fraction() == pytest.approx(2 / 3)


@pytest.fixture(scope="module")
def small_trace():
    config = SynthesisConfig(n_servers=100, n_days=4, session_length_s=4500.0)
    return TraceSynthesizer(config, master_seed=21).synthesize()


class TestCauses:
    def test_distance_correlation_negligible(self, small_trace):
        analysis = consistency_vs_distance(small_trace)
        assert abs(analysis.pearson_r) < 0.45  # paper: 0.11 -- "little correlation"
        assert len(analysis.band_centres_km) == len(analysis.band_mean_ratios)
        assert all(0.0 < ratio <= 1.0 for ratio in analysis.band_mean_ratios)

    def test_isp_increments_positive_on_average(self, small_trace):
        results = isp_inconsistency_analysis(small_trace, min_cluster_size=3)
        assert results
        increments = [r.increment_mean_s for r in results]
        # inter-ISP measurement must exceed intra on average (Fig. 9)
        assert float(np.mean(increments)) > 0.0
        for result in results:
            assert result.n_servers >= 3
            assert result.inter.count > 0 and result.intra.count > 0

    def test_congested_isps_have_larger_intra_inconsistency(self, small_trace):
        results = isp_inconsistency_analysis(small_trace, min_cluster_size=3)
        means = sorted(r.intra.mean for r in results)
        # heterogeneous ISP severities -> visible spread across clusters
        assert means[-1] - means[0] > 5.0


class TestTreeInference:
    def test_no_tree_detected_in_unicast_trace(self, small_trace):
        evidence = tree_existence_analysis(small_trace)
        assert not evidence.tree_likely
        assert evidence.below_ttl_fraction > 0.5
        assert evidence.rank_churn > 0.25
        assert "contradicts" in evidence.summary()

    def test_synthetic_layered_trace_is_distinguishable(self):
        """A hand-built 'tree-like' trace (stable per-server offsets)
        must NOT look like the unicast trace: rank churn collapses."""
        from repro.network.geo import GeoPoint
        from repro.trace.records import CdnTrace, DayTrace, PollSeries, ServerInfo
        from repro.trace.tree_inference import normalized_rank_churn, rank_trajectories

        rng = np.random.RandomState(5)
        n_servers, n_days = 12, 6
        # fixed per-server delay tiers, as a static tree would produce
        tiers = np.linspace(2.0, 50.0, n_servers)
        servers = {
            "s%02d" % i: ServerInfo(
                "s%02d" % i, GeoPoint(40.0, -75.0 + i * 0.01), "isp", "NYC", 100.0
            )
            for i in range(n_servers)
        }
        days = []
        for day_index in range(n_days):
            updates = np.arange(100.0, 3000.0, 100.0)
            day = DayTrace(day_index=day_index, session_length_s=3200.0, update_times=updates)
            for i, sid in enumerate(sorted(servers)):
                apply_times = updates + tiers[i] + rng.uniform(0, 1.0, updates.size)
                times = np.arange(0.0, 3200.0, 10.0)
                versions = np.searchsorted(apply_times, times, side="right")
                day.polls[sid] = PollSeries(times=times, versions=versions)
            days.append(day)
        trace = CdnTrace(servers=servers, days=days, ttl_s=60.0)
        ranks = rank_trajectories(trace, sorted(servers))
        churn = normalized_rank_churn(ranks)
        assert churn < 0.25  # stable hierarchy: clearly below unicast churn
