"""Tests for processes, interrupts and condition events."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt


class TestProcess:
    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.process(lambda: None)

    def test_process_is_alive_until_done(self):
        env = Environment()

        def proc(env):
            yield env.timeout(5)

        process = env.process(proc(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_return_value_becomes_event_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            return 42

        process = env.process(proc(env))
        env.run()
        assert process.value == 42

    def test_waiting_on_another_process(self):
        env = Environment()

        def child(env):
            yield env.timeout(4)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            return (env.now, result)

        parent_proc = env.process(parent(env))
        assert env.run(until=parent_proc) == (4, "child-result")

    def test_exception_in_process_propagates(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise ValueError("inner")

        env.process(bad(env))
        with pytest.raises(ValueError, match="inner"):
            env.run()

    def test_exception_catchable_by_waiter(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise ValueError("inner")

        def waiter(env):
            try:
                yield env.process(bad(env))
            except ValueError as exc:
                return "caught %s" % exc

        process = env.process(waiter(env))
        assert env.run(until=process) == "caught inner"

    def test_yielding_non_event_fails_the_process(self):
        env = Environment()

        def bad(env):
            yield "not an event"

        env.process(bad(env))
        with pytest.raises(RuntimeError, match="invalid yield"):
            env.run()

    def test_yield_already_processed_event_resumes_immediately(self):
        env = Environment()

        def proc(env):
            timeout = env.timeout(1, "early")
            yield env.timeout(5)
            value = yield timeout  # already processed at t=1
            return (env.now, value)

        process = env.process(proc(env))
        assert env.run(until=process) == (5, "early")


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                return (env.now, interrupt.cause)

        process = env.process(sleeper(env))

        def killer(env):
            yield env.timeout(3)
            process.interrupt("reason")

        env.process(killer(env))
        assert env.run(until=process) == (3, "reason")

    def test_interrupted_process_can_keep_running(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(10)
            return env.now

        process = env.process(sleeper(env))

        def killer(env):
            yield env.timeout(5)
            process.interrupt()

        env.process(killer(env))
        assert env.run(until=process) == 15

    def test_cannot_interrupt_dead_process(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_self_interrupt_rejected(self):
        env = Environment()
        holder = {}

        def selfish(env):
            holder["me"].interrupt()
            yield env.timeout(1)

        holder["me"] = env.process(selfish(env))
        with pytest.raises(RuntimeError):
            env.run()


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()

        def proc(env):
            result = yield AllOf(env, [env.timeout(2, "a"), env.timeout(7, "b")])
            return (env.now, list(result.values()))

        process = env.process(proc(env))
        assert env.run(until=process) == (7, ["a", "b"])

    def test_any_of_returns_first(self):
        env = Environment()

        def proc(env):
            result = yield AnyOf(env, [env.timeout(9, "slow"), env.timeout(2, "fast")])
            return (env.now, list(result.values()))

        process = env.process(proc(env))
        assert env.run(until=process) == (2, ["fast"])

    def test_and_or_operators(self):
        env = Environment()

        def proc(env):
            both = yield env.timeout(1, "x") & env.timeout(2, "y")
            either = yield env.timeout(5, "p") | env.timeout(3, "q")
            return (list(both.values()), list(either.values()))

        process = env.process(proc(env))
        assert env.run(until=process) == (["x", "y"], ["q"])

    def test_empty_all_of_fires_immediately(self):
        env = Environment()

        def proc(env):
            yield AllOf(env, [])
            return env.now

        process = env.process(proc(env))
        assert env.run(until=process) == 0

    def test_condition_value_mapping_interface(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(1, "one")
            t2 = env.timeout(2, "two")
            result = yield AllOf(env, [t1, t2])
            assert t1 in result
            assert result[t1] == "one"
            assert dict(result.items())[t2] == "two"
            assert result == {t1: "one", t2: "two"}
            return True

        process = env.process(proc(env))
        assert env.run(until=process) is True

    def test_failed_member_fails_condition(self):
        env = Environment()

        def failer(env):
            yield env.timeout(1)
            raise RuntimeError("member failed")

        def waiter(env):
            try:
                yield AllOf(env, [env.process(failer(env)), env.timeout(10)])
            except RuntimeError as exc:
                return str(exc)

        process = env.process(waiter(env))
        assert env.run(until=process) == "member failed"
