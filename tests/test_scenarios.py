"""Tests for the scenario registry, cells, perturbations and rollups.

The load-bearing guarantees:

- ``paper-baseline`` is bit-identical to the legacy hard-wired testbed
  (differential fixture captured from the pre-scenario code);
- every registered scenario is bit-identical across two runs with the
  same seed (the determinism contract extends to perturbations);
- default-valued :class:`RunSpec` serialization is unchanged, so
  existing run-registry keys survive the API redesign.
"""

import json
import os

import pytest

from repro.experiments.config import smoke_scale
from repro.experiments.section4 import fig14_unicast_inconsistency, fig16_traffic_cost
from repro.experiments.testbed import build_deployment, build_system
from repro.runner import RunSpec
from repro.runner.spec import DEFAULT_SCENARIO as SPEC_DEFAULT_SCENARIO
from repro.scenarios import (
    DEFAULT_SCENARIO,
    CatalogScenario,
    CatalogSpec,
    DiurnalModulation,
    FailureStorm,
    FlashCrowd,
    Reconfiguration,
    Scenario,
    ScenarioEntry,
    ScenarioOutcome,
    SingleObjectScenario,
    compare_scenarios,
    register_scenario,
    resolve_scenario,
    run_scenario,
    scenario_choices,
    scenario_names,
    scenario_specs,
    zipf_weights,
)
from repro.sim.rng import StreamRegistry

FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "scenarios", "baseline_smoke.json"
)


@pytest.fixture(scope="module")
def baseline_fixture():
    with open(FIXTURE) as handle:
        return json.load(handle)


def figure_dict(figure):
    """FigureResult.to_dict() minus the timing-dependent stats block."""
    data = figure.to_dict()
    data.pop("stats", None)
    return data


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_at_least_six_scenarios(self):
        assert len(scenario_names()) >= 6

    def test_default_scenario_registered(self):
        assert DEFAULT_SCENARIO in scenario_names()

    def test_default_matches_runspec_literal(self):
        # runner.spec keeps a literal copy to avoid an import cycle.
        assert SPEC_DEFAULT_SCENARIO == DEFAULT_SCENARIO

    def test_aliases_resolve_to_canonical(self):
        assert resolve_scenario("baseline").name == "paper-baseline"
        assert resolve_scenario("storm").name == "failure-storm"
        assert resolve_scenario("catalog").name == "zipf-catalog"
        assert resolve_scenario("youlighter").name == "cdn-reconfig"

    def test_choices_include_aliases(self):
        choices = scenario_choices()
        assert "paper-baseline" in choices
        assert "baseline" in choices

    def test_unknown_scenario_lists_choices(self):
        with pytest.raises(ValueError, match="unknown scenario.*paper-baseline"):
            resolve_scenario("smoke-signals")

    def test_instances_pass_through(self):
        scenario = resolve_scenario("paper-baseline")
        assert resolve_scenario(scenario) is scenario

    def test_name_collision_rejected(self):
        entry = ScenarioEntry(
            name="collision-probe", factory=lambda: None, aliases=("baseline",)
        )
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(entry)

    def test_factories_build_fresh_instances(self):
        assert resolve_scenario("diurnal") is not resolve_scenario("diurnal")


# ----------------------------------------------------------------------
# paper-baseline bit-identity (the differential contract)
# ----------------------------------------------------------------------
class TestPaperBaselineBitIdentity:
    def test_scenario_path_equals_legacy_path(self, smoke_config):
        legacy = build_deployment(smoke_config, "ttl", "unicast").run()
        scenic = build_deployment(
            smoke_config, "ttl", "unicast", scenario="paper-baseline"
        ).run()
        assert scenic.to_dict() == legacy.to_dict()

    def test_all_deployments_match_seed_fixture(
        self, smoke_config, baseline_fixture
    ):
        for key, expected in baseline_fixture["deployments"].items():
            method, infrastructure = key.split("/")
            metrics = build_deployment(
                smoke_config, method, infrastructure, scenario="paper-baseline"
            ).run()
            assert metrics.to_dict() == expected, key

    def test_all_systems_match_seed_fixture(self, smoke_config, baseline_fixture):
        for system, expected in baseline_fixture["systems"].items():
            metrics = build_system(
                smoke_config, system, scenario="paper-baseline"
            ).run()
            assert metrics.to_dict() == expected, system

    def test_figures_match_seed_fixture(self, smoke_config, baseline_fixture):
        # Figure drivers go through default RunSpecs, whose scenario
        # field now defaults to paper-baseline: outputs must not move.
        assert (
            figure_dict(fig14_unicast_inconsistency(smoke_config))
            == baseline_fixture["figures"]["fig14"]
        )
        assert (
            figure_dict(fig16_traffic_cost(smoke_config))
            == baseline_fixture["figures"]["fig16"]
        )

    def test_run_scenario_matches_fixture_metrics(
        self, smoke_config, baseline_fixture
    ):
        figure = run_scenario("paper-baseline", smoke_config, method="ttl")
        expected = baseline_fixture["deployments"]["ttl/unicast"]
        assert figure.summary["cost_km_kb"] == expected["cost_km_kb"]
        assert figure.summary["update_messages"] == expected["update_messages"]
        assert figure.summary["light_messages"] == expected["light_messages"]


# ----------------------------------------------------------------------
# determinism: every scenario, bit-identical across two runs
# ----------------------------------------------------------------------
class TestScenarioDeterminism:
    @pytest.mark.parametrize("name", scenario_names())
    def test_two_runs_bit_identical(self, smoke_config, name):
        first = run_scenario(name, smoke_config, method="ttl")
        second = run_scenario(name, smoke_config, method="ttl")
        assert figure_dict(first) == figure_dict(second)

    def test_seed_changes_the_run(self, smoke_config):
        base = run_scenario("flash-crowd", smoke_config, method="ttl")
        other = run_scenario(
            "flash-crowd", smoke_scale(seed=1), method="ttl"
        )
        assert figure_dict(base) != figure_dict(other)


# ----------------------------------------------------------------------
# every scenario x method x infrastructure builds and runs
# ----------------------------------------------------------------------
class TestScenarioMethodGrid:
    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize(
        "method", ("push", "invalidation", "ttl", "self-adaptive",
                   "adaptive-ttl", "dynamic")
    )
    def test_every_method_unicast(self, smoke_config, name, method):
        metrics = build_deployment(
            smoke_config, method, "unicast", scenario=name
        ).run()
        assert metrics.events_processed > 0
        assert metrics.mean_user_lag >= 0.0

    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize("infrastructure", ("multicast", "broadcast"))
    def test_every_infrastructure(self, smoke_config, name, infrastructure):
        metrics = build_deployment(
            smoke_config, "ttl", infrastructure, scenario=name
        ).run()
        assert metrics.events_processed > 0

    @pytest.mark.parametrize("system", ("self", "hybrid", "hat"))
    def test_systems_under_perturbed_scenario(self, smoke_config, system):
        metrics = build_system(
            smoke_config, system, scenario="failure-storm"
        ).run()
        assert metrics.node_downtime_s > 0.0

    def test_scenario_suffix_in_deployment_name(self, smoke_config):
        deployment = build_deployment(
            smoke_config, "ttl", "unicast", scenario="flash-crowd"
        )
        assert deployment.name == "ttl/unicast@flash-crowd"
        catalog = build_deployment(
            smoke_config, "ttl", "unicast", scenario="zipf-catalog",
            scenario_cell=2,
        )
        assert catalog.name == "ttl/unicast@zipf-catalog/obj-02"

    def test_system_rename_keeps_scenario_suffix(self, smoke_config):
        deployment = build_system(smoke_config, "self", scenario="flash-crowd")
        assert deployment.name == "self@flash-crowd"

    def test_cell_requires_scenario(self, smoke_config):
        with pytest.raises(ValueError, match="requires an explicit scenario"):
            build_deployment(smoke_config, "ttl", "unicast", scenario_cell=1)

    def test_out_of_range_cell_rejected(self, smoke_config):
        with pytest.raises(IndexError):
            build_deployment(
                smoke_config, "ttl", "unicast", scenario="paper-baseline",
                scenario_cell=1,
            )


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_zipf_weights_normalised_and_decreasing(self):
        weights = zipf_weights(6, 0.9)
        assert sum(weights) == pytest.approx(1.0)
        assert list(weights) == sorted(weights, reverse=True)

    def test_zipf_zero_exponent_uniform(self):
        assert set(zipf_weights(4, 0.0)) == {0.25}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CatalogSpec(n_objects=0)
        with pytest.raises(ValueError):
            CatalogSpec(exponent=-0.1)
        with pytest.raises(ValueError):
            CatalogSpec(churn_stagger=1.0)
        with pytest.raises(ValueError):
            CatalogSpec(lifetime_fraction=0.0)
        with pytest.raises(ValueError):
            CatalogSpec(updates_scale=0.0)

    def test_cells_scale_audience_with_popularity(self, smoke_config):
        scenario = resolve_scenario("zipf-catalog")
        cells = scenario.cells(smoke_config)
        assert len(cells) == 6
        audiences = [c.config_overrides["users_per_server"] for c in cells]
        assert audiences == sorted(audiences, reverse=True)
        assert all(a >= 1 for a in audiences)

    def test_zero_audience_config_stays_zero(self):
        scenario = resolve_scenario("zipf-catalog")
        config = smoke_scale(users_per_server=0)
        for cell in scenario.cells(config):
            assert cell.config_overrides["users_per_server"] == 0

    def test_update_times_respect_lifetime(self, smoke_config):
        scenario = resolve_scenario("zipf-catalog")
        for index in range(scenario.n_cells(smoke_config)):
            birth, retirement = scenario.lifetime(smoke_config, index)
            assert 0.0 <= birth < retirement <= smoke_config.game_duration_s
            cell = scenario.cell(smoke_config, index)
            content = cell.content_factory(smoke_config, StreamRegistry(0))
            for t in content.update_times:
                offset = t - smoke_config.update_start_s
                assert birth <= offset <= retirement

    def test_cells_draw_independent_streams(self, smoke_config):
        # Building cell 3's content must not depend on whether other
        # cells were built from the same registry (per-object streams).
        scenario = resolve_scenario("zipf-catalog")
        registry_a = StreamRegistry(0)
        alone = scenario.cell(smoke_config, 3).content_factory(
            smoke_config, registry_a
        )
        registry_b = StreamRegistry(0)
        for index in (0, 1, 2):
            scenario.cell(smoke_config, index).content_factory(
                smoke_config, registry_b
            )
        together = scenario.cell(smoke_config, 3).content_factory(
            smoke_config, registry_b
        )
        assert alone.update_times == together.update_times

    def test_catalog_rollup_weights_cells(self, smoke_config):
        figure = run_scenario("zipf-catalog", smoke_config, method="ttl")
        outcome = figure.details
        assert isinstance(outcome, ScenarioOutcome)
        assert len(outcome.cells) == 6
        lags = [m.mean_user_lag for m in outcome.metrics]
        assert min(lags) <= figure.summary["mean_user_lag"] <= max(lags)
        assert figure.summary["update_messages"] == sum(
            m.update_messages for m in outcome.metrics
        )


# ----------------------------------------------------------------------
# perturbations
# ----------------------------------------------------------------------
class TestPerturbations:
    def test_flash_crowd_validation(self):
        with pytest.raises(ValueError):
            FlashCrowd(start_s=-1.0, duration_s=10.0)
        with pytest.raises(ValueError):
            FlashCrowd(start_s=0.0, duration_s=0.0)
        with pytest.raises(ValueError):
            FlashCrowd(start_s=0.0, duration_s=10.0, poll_accel=0.5)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            DiurnalModulation(period_s=0.0, step_s=1.0)
        with pytest.raises(ValueError):
            DiurnalModulation(period_s=10.0, step_s=1.0, amplitude=1.0)

    def test_failure_storm_validation(self):
        with pytest.raises(ValueError):
            FailureStorm(storms=())
        with pytest.raises(ValueError):
            FailureStorm(storms=((-1.0, 5.0),))
        with pytest.raises(ValueError):
            FailureStorm(storms=((0.0, 5.0),), fraction=0.0)

    def test_reconfiguration_validation(self):
        with pytest.raises(ValueError):
            Reconfiguration(event_times_s=())
        with pytest.raises(ValueError):
            Reconfiguration(event_times_s=(10.0,), migrate_fraction=1.5)

    def test_flash_crowd_increases_visits(self, smoke_config):
        baseline = build_deployment(
            smoke_config, "ttl", "unicast", scenario="paper-baseline"
        )
        crowd = build_deployment(
            smoke_config, "ttl", "unicast", scenario="flash-crowd"
        )
        baseline.run()
        crowd.run()
        def visits(d):
            return sum(len(u.observations) for u in d.users)

        assert visits(crowd) > visits(baseline)

    def test_failure_storm_downtime_is_exact(self, smoke_config):
        # smoke scale: 8 servers, fraction 0.25 -> 2 victims per storm;
        # 2 storms x 32 s outages = 128 s of scheduled downtime.
        metrics = build_deployment(
            smoke_config, "ttl", "unicast", scenario="failure-storm"
        ).run()
        assert metrics.node_downtime_s == pytest.approx(128.0)
        assert metrics.down_transitions == 4

    def test_reconfiguration_changes_outcome(self, smoke_config):
        baseline = build_deployment(
            smoke_config, "ttl", "unicast", scenario="paper-baseline"
        ).run()
        moved = build_deployment(
            smoke_config, "ttl", "unicast", scenario="cdn-reconfig"
        ).run()
        assert moved.user_lags != baseline.user_lags

    def test_perturbations_leave_update_schedule_alone(self, smoke_config):
        # Perturbations draw from their own stream: the content's update
        # times must match the unperturbed live-game schedule exactly.
        plain = build_deployment(
            smoke_config, "ttl", "unicast", scenario="paper-baseline"
        )
        stormy = build_deployment(
            smoke_config, "ttl", "unicast", scenario="failure-storm"
        )
        assert plain.content.update_times == stormy.content.update_times


# ----------------------------------------------------------------------
# RunSpec integration (hash stability, round-trip, labels)
# ----------------------------------------------------------------------
class TestRunSpecScenario:
    def test_default_spec_serialization_unchanged(self, smoke_config):
        spec = RunSpec(config=smoke_config, method="ttl")
        data = spec.to_dict()
        assert "scenario" not in data
        assert "scenario_cell" not in data
        assert spec.scenario == DEFAULT_SCENARIO

    def test_explicit_default_scenario_same_key(self, smoke_config):
        implicit = RunSpec(config=smoke_config, method="ttl")
        explicit = RunSpec(
            config=smoke_config, method="ttl", scenario=DEFAULT_SCENARIO,
            scenario_cell=0,
        )
        assert implicit.key() == explicit.key()

    def test_scenario_changes_key(self, smoke_config):
        base = RunSpec(config=smoke_config, method="ttl")
        storm = RunSpec(config=smoke_config, method="ttl", scenario="failure-storm")
        cell1 = RunSpec(
            config=smoke_config, method="ttl", scenario="zipf-catalog",
            scenario_cell=1,
        )
        assert len({base.key(), storm.key(), cell1.key()}) == 3

    def test_round_trip(self, smoke_config):
        spec = RunSpec(
            config=smoke_config, method="ttl", scenario="zipf-catalog",
            scenario_cell=3,
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec
        default = RunSpec(config=smoke_config, method="push")
        assert RunSpec.from_dict(default.to_dict()) == default

    def test_label_shows_scenario(self, smoke_config):
        spec = RunSpec(
            config=smoke_config, method="ttl", scenario="failure-storm"
        )
        assert "failure-storm" in spec.label
        assert "scenario" not in RunSpec(config=smoke_config, method="ttl").label

    def test_spec_validation(self, smoke_config):
        with pytest.raises(ValueError):
            RunSpec(config=smoke_config, method="ttl", scenario="")
        with pytest.raises(ValueError):
            RunSpec(config=smoke_config, method="ttl", scenario_cell=-1)

    def test_execute_runs_scenario_cell(self, smoke_config):
        spec = RunSpec(
            config=smoke_config, method="ttl", scenario="failure-storm"
        )
        metrics = spec.execute()
        assert metrics.node_downtime_s > 0.0

    def test_scenario_specs_expand_cells(self, smoke_config):
        specs = scenario_specs("zipf-catalog", smoke_config, "ttl")
        assert [s.scenario_cell for s in specs] == list(range(6))
        assert all(s.scenario == "zipf-catalog" for s in specs)


# ----------------------------------------------------------------------
# rollups and comparison
# ----------------------------------------------------------------------
class TestRollups:
    def test_outcome_requires_aligned_cells(self, smoke_config):
        scenario = resolve_scenario("paper-baseline")
        cells = scenario.cells(smoke_config)
        with pytest.raises(ValueError, match="align"):
            ScenarioOutcome(
                scenario="paper-baseline", method="ttl",
                infrastructure="unicast", kind="deployment",
                cells=cells, metrics=[],
            )

    def test_compare_scenarios_ranks_by_user_lag(self, smoke_config):
        figure = compare_scenarios(
            ["paper-baseline", "failure-storm"], smoke_config, method="ttl"
        )
        assert set(figure.series) == {"paper-baseline", "failure-storm"}
        ordering = figure.summary["user_lag_ordering"]
        lags = [figure.series[name]["mean_user_lag"] for name in ordering]
        assert lags == sorted(lags)
        assert figure.summary["best_scenario"] == ordering[0]
        assert figure.summary["worst_scenario"] == ordering[-1]

    def test_compare_requires_scenarios(self, smoke_config):
        with pytest.raises(ValueError, match="at least one"):
            compare_scenarios([], smoke_config)

    def test_all_zero_weight_rollup_is_zero(self, smoke_config):
        # Regression: _weighted divided by the summed cell weight with
        # no guard, so a pathological catalog whose weights collapse to
        # zero raised ZeroDivisionError instead of rolling up to 0.0.
        # (ScenarioCell validates weight > 0 at construction, so force
        # the state a buggy custom Scenario could hand over.)
        from repro.experiments.testbed import DeploymentMetrics

        scenario = resolve_scenario("paper-baseline")
        cells = scenario.cells(smoke_config)
        for cell in cells:
            object.__setattr__(cell, "weight", 0.0)
        stub = DeploymentMetrics(
            name="stub",
            server_lags={"server-0": 1.0},
            user_lags={"user-0": 2.0},
            user_stale_fractions={"user-0": 0.5},
            cost_km_kb=1.0,
            update_messages=1,
            light_messages=1,
            response_messages=0,
            provider_response_messages=0,
            update_load_km=0.0,
            light_load_km=0.0,
            response_load_km=0.0,
            request_load_km=0.0,
            provider_update_messages=0,
            provider_messages=0,
        )
        outcome = ScenarioOutcome(
            scenario="paper-baseline", method="ttl",
            infrastructure="unicast", kind="deployment",
            cells=cells, metrics=[stub for _ in cells],
        )
        assert outcome.mean_server_lag == 0.0
        assert outcome.mean_user_lag == 0.0
        assert outcome.mean_stale_fraction == 0.0
        rollup = outcome.rollup()  # must not raise
        assert rollup["mean_user_lag"] == 0.0


# ----------------------------------------------------------------------
# deprecation of workload-knob plumbing
# ----------------------------------------------------------------------
class TestWorkloadKnobDeprecation:
    def test_with_overrides_warns_for_workload_knobs(self, smoke_config):
        with pytest.warns(DeprecationWarning, match="n_updates.*scenario"):
            derived = smoke_config.with_overrides(n_updates=20)
        assert derived.n_updates == 20  # still honoured

    def test_with_alias_warns_too(self, smoke_config):
        with pytest.warns(DeprecationWarning, match="game_duration_s"):
            smoke_config.with_(game_duration_s=100.0)

    def test_non_workload_knobs_stay_silent(self, smoke_config, recwarn):
        smoke_config.with_overrides(server_ttl_s=30.0, seed=4)
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

    def test_constructor_path_stays_silent(self, recwarn):
        smoke_scale(n_updates=20)
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


# ----------------------------------------------------------------------
# custom scenario registration end-to-end
# ----------------------------------------------------------------------
class TestCustomScenario:
    def test_adhoc_scenario_runs_unregistered(self, smoke_config):
        from repro.trace.workload import PoissonWorkload

        scenario = SingleObjectScenario(
            name="adhoc-poisson",
            summary="test-only",
            workload_factory=lambda cfg: PoissonWorkload(
                rate_per_s=0.05, duration_s=cfg.game_duration_s
            ),
        )
        assert isinstance(scenario, Scenario)
        # Instances pass straight into the builder, no registration.
        metrics = build_deployment(
            smoke_config, "ttl", "unicast", scenario=scenario
        ).run()
        assert metrics.events_processed > 0

    def test_custom_catalog_scenario(self, smoke_config):
        scenario = CatalogScenario(
            name="tiny-catalog",
            summary="test-only",
            spec=CatalogSpec(n_objects=2, exponent=0.5),
        )
        cells = scenario.cells(smoke_config)
        assert [cell.label for cell in cells] == ["obj-00", "obj-01"]
        metrics = build_deployment(
            smoke_config, "ttl", "unicast", scenario=scenario, scenario_cell=1
        ).run()
        assert metrics.events_processed > 0
