"""Integration tests for provider / server / user actors."""

import pytest

from repro.cdn import (
    DnsDirectory,
    EndUserActor,
    FixedSelector,
    LiveContent,
    ProviderActor,
    ServerActor,
    SwitchEveryVisitSelector,
    schedule_absence,
)
from repro.consistency import PushPolicy, TTLPolicy, UnicastInfrastructure
from repro.network import NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry


def make_world(n_servers=3, updates=(50.0, 100.0, 150.0), seed=1, users_per_server=1):
    env = Environment()
    streams = StreamRegistry(seed)
    topology = TopologyBuilder(env, streams).build(
        n_servers=n_servers, users_per_server=users_per_server
    )
    fabric = NetworkFabric(env, streams=streams)
    content = LiveContent("game", update_times=list(updates))
    return env, streams, topology, fabric, content


class TestProvider:
    def test_update_loop_follows_schedule(self):
        env, streams, topology, fabric, content = make_world()
        provider = ProviderActor(env, topology.provider, fabric, content)
        checkpoints = []

        def observer(env):
            yield env.timeout(49)
            checkpoints.append(provider.current_version)
            yield env.timeout(2)
            checkpoints.append(provider.current_version)
            yield env.timeout(100)
            checkpoints.append(provider.current_version)

        env.process(observer(env))
        env.run(until=300)
        assert checkpoints == [0, 1, 3]

    def test_provider_staleness_delays_visibility(self):
        env, streams, topology, fabric, content = make_world(updates=(50.0,))
        provider = ProviderActor(env, topology.provider, fabric, content, staleness_s=5.0)
        seen = []

        def observer(env):
            yield env.timeout(52)
            seen.append(provider.current_version)
            yield env.timeout(4)
            seen.append(provider.current_version)

        env.process(observer(env))
        env.run(until=100)
        assert seen == [0, 1]

    def test_poll_answered_with_body_or_not_modified(self):
        env, streams, topology, fabric, content = make_world(updates=(10.0,))
        provider = ProviderActor(env, topology.provider, fabric, content)
        server = ServerActor(
            env, topology.servers[0], fabric, content, policy=TTLPolicy(30.0),
            upstream=topology.provider,
        )
        results = []

        def probe(env):
            yield env.timeout(20)  # after the update
            got = yield from server.policy.poll_once()
            results.append((got, server.cached_version))
            got = yield from server.policy.poll_once()
            results.append((got, server.cached_version))

        env.process(probe(env))
        env.run(until=60)
        assert results[0] == (True, 1)   # first poll fetched the body
        assert results[1] == (False, 1)  # second poll: not modified


class TestServerServing:
    def test_user_gets_current_cached_version(self):
        env, streams, topology, fabric, content = make_world(updates=(30.0,))
        provider = ProviderActor(env, topology.provider, fabric, content)
        server = ServerActor(
            env, topology.servers[0], fabric, content, policy=PushPolicy()
        )
        UnicastInfrastructure().wire(provider, [server])
        provider.use_push()
        user = EndUserActor(
            env,
            topology.users[0][0],
            fabric,
            content,
            FixedSelector(server.node),
            user_ttl_s=10.0,
        )
        server.start()
        user.start()
        env.run(until=65)
        versions = [obs.version for obs in user.observations]
        assert versions[0] == 0
        assert versions[-1] == 1
        assert versions == sorted(versions)

    def test_absence_interrupts_service(self):
        env, streams, topology, fabric, content = make_world(updates=())
        server = ServerActor(
            env, topology.servers[0], fabric, content, policy=PushPolicy()
        )
        user = EndUserActor(
            env,
            topology.users[0][0],
            fabric,
            content,
            FixedSelector(server.node),
            user_ttl_s=5.0,
            request_timeout_s=4.0,
        )
        schedule_absence(env, server.node, start=10.0, duration=20.0)
        server.start()
        user.start()
        env.run(until=60)
        assert user.failed_visits >= 2
        assert server.node.is_up  # recovered

    def test_absence_validation(self):
        env, streams, topology, fabric, content = make_world()
        with pytest.raises(ValueError):
            schedule_absence(env, topology.servers[0], start=0.0, duration=0.0)


class TestSelectors:
    def test_switch_selector_never_repeats(self):
        env, streams, topology, fabric, content = make_world(n_servers=4)
        stream = streams.stream("switch")
        selector = SwitchEveryVisitSelector(topology.servers, stream)
        previous = None
        for i in range(50):
            chosen = selector.select(topology.users[0][0], 0.0, i)
            assert chosen is not previous
            previous = chosen

    def test_switch_selector_single_server(self):
        env, streams, topology, fabric, content = make_world(n_servers=1)
        selector = SwitchEveryVisitSelector(
            topology.servers, streams.stream("switch")
        )
        assert selector.select(None, 0.0, 0) is topology.servers[0]
        assert selector.select(None, 0.0, 1) is topology.servers[0]


class TestDns:
    def test_cached_assignment_sticks_until_ttl(self):
        env, streams, topology, fabric, content = make_world(n_servers=5)
        dns = DnsDirectory(topology.servers, streams.stream("dns"), dns_ttl_s=60.0)
        user = topology.users[0][0]
        first = dns.resolve(user, now=0.0)
        assert dns.resolve(user, now=1.0) is first
        assert dns.cache_hits >= 1

    def test_reassignment_after_expiry_balances_load(self):
        env, streams, topology, fabric, content = make_world(n_servers=8)
        dns = DnsDirectory(
            topology.servers, streams.stream("dns"), dns_ttl_s=10.0, candidates=4
        )
        user = topology.users[0][0]
        seen = set()
        t = 0.0
        for _ in range(80):
            seen.add(dns.resolve(user, now=t).node_id)
            t += 20.0  # always past the lease
        assert len(seen) >= 2  # load-balanced across candidates

    def test_candidates_are_nearby(self):
        env, streams, topology, fabric, content = make_world(n_servers=10)
        dns = DnsDirectory(
            topology.servers, streams.stream("dns"), dns_ttl_s=1.0, candidates=3
        )
        user = topology.users[0][0]
        ranked = sorted(topology.servers, key=user.distance_km)
        allowed = {server.node_id for server in ranked[:3]}
        for t in range(0, 200, 7):
            assert dns.resolve(user, now=float(t)).node_id in allowed

    def test_down_server_skipped(self):
        env, streams, topology, fabric, content = make_world(n_servers=3)
        dns = DnsDirectory(topology.servers, streams.stream("dns"), dns_ttl_s=5.0)
        down = topology.servers[0]
        down.is_up = False
        user = topology.users[1][0]
        for t in range(0, 100, 10):
            assert dns.resolve(user, now=float(t)) is not down


class TestRequestResponse:
    def test_request_timeout_returns_none(self):
        env, streams, topology, fabric, content = make_world(updates=())
        provider = ProviderActor(env, topology.provider, fabric, content)
        server = ServerActor(
            env, topology.servers[0], fabric, content,
            policy=TTLPolicy(30.0), upstream=topology.provider,
        )
        provider.node.is_up = False
        results = []

        def probe(env):
            got = yield from server.policy.poll_once()
            results.append((got, env.now))

        env.process(probe(env))
        env.run(until=100)
        # poll_once times out after its TTL (30 s) and reports no update.
        assert results == [(False, 30.0)]
