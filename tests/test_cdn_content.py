"""Tests for LiveContent and the TTL cache."""

import pytest

from repro.cdn.cache import TTLCache
from repro.cdn.content import LiveContent


class TestLiveContent:
    def test_validation(self):
        with pytest.raises(ValueError):
            LiveContent("c", update_times=[5.0, 3.0])
        with pytest.raises(ValueError):
            LiveContent("c", update_times=[-1.0])

    def test_version_at(self):
        content = LiveContent("c", update_times=[10.0, 20.0, 30.0])
        assert content.version_at(0.0) == 0
        assert content.version_at(10.0) == 1
        assert content.version_at(15.0) == 1
        assert content.version_at(99.0) == 3
        assert content.last_version == 3

    def test_creation_time(self):
        content = LiveContent("c", update_times=[10.0, 20.0])
        assert content.creation_time(0) == 0.0
        assert content.creation_time(2) == 20.0
        with pytest.raises(ValueError):
            content.creation_time(3)

    def test_next_update_after(self):
        content = LiveContent("c", update_times=[10.0, 20.0])
        assert content.next_update_after(5.0) == 10.0
        assert content.next_update_after(10.0) == 20.0
        assert content.next_update_after(20.0) == float("inf")

    def test_staleness(self):
        content = LiveContent("c", update_times=[10.0, 20.0])
        assert content.staleness(0, 5.0) == 0.0       # still newest
        assert content.staleness(0, 15.0) == 5.0      # v1 appeared at 10
        assert content.staleness(1, 25.0) == 5.0      # v2 appeared at 20
        assert content.staleness(2, 100.0) == 0.0     # newest forever

    def test_versions_in_window(self):
        content = LiveContent("c", update_times=[10.0, 20.0, 30.0])
        assert list(content.versions_in(5.0, 25.0)) == [1, 2]
        assert list(content.versions_in(0.0, 100.0)) == [1, 2, 3]
        assert list(content.versions_in(30.0, 40.0)) == []


class TestTTLCache:
    def test_entry_starts_at_version_zero(self):
        cache = TTLCache()
        entry = cache.entry("c")
        assert entry.version == 0
        assert entry.apply_log == [(0.0, 0)]

    def test_store_newer_version(self):
        cache = TTLCache()
        assert cache.store("c", 3, now=100.0, ttl=60.0) is True
        entry = cache.entry("c")
        assert entry.version == 3
        assert entry.expires_at == 160.0
        assert entry.apply_log[-1] == (100.0, 3)

    def test_store_same_version_refreshes_ttl_only(self):
        cache = TTLCache()
        cache.store("c", 3, now=100.0, ttl=60.0)
        assert cache.store("c", 3, now=200.0, ttl=60.0) is False
        entry = cache.entry("c")
        assert entry.expires_at == 260.0
        assert len(entry.apply_log) == 2  # initial + one real write

    def test_store_clears_invalidation(self):
        cache = TTLCache()
        cache.invalidate("c", version=1)
        assert cache.entry("c").invalidated
        cache.store("c", 1, now=10.0, ttl=60.0)
        assert not cache.entry("c").invalidated

    def test_invalidate_skipped_when_already_newer(self):
        cache = TTLCache()
        cache.store("c", 5, now=1.0, ttl=60.0)
        cache.invalidate("c", version=4)
        assert not cache.entry("c").invalidated
        cache.invalidate("c", version=6)
        assert cache.entry("c").invalidated

    def test_freshness(self):
        cache = TTLCache()
        cache.store("c", 1, now=0.0, ttl=60.0)
        entry = cache.entry("c")
        assert entry.is_fresh(30.0)
        assert not entry.is_fresh(60.0)
        cache.invalidate("c", version=2)
        assert not entry.is_fresh(30.0)

    def test_version_monotonicity(self):
        cache = TTLCache()
        cache.store("c", 5, now=1.0, ttl=60.0)
        cache.store("c", 3, now=2.0, ttl=60.0)  # stale arrival ignored
        assert cache.version_of("c") == 5
        versions = [v for _, v in cache.apply_log("c")]
        assert versions == sorted(versions)
