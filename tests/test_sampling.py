"""Tests for planet-scale tracing (repro.obs.sampling):

- deterministic sampling: same seed -> bit-identical sampled event set;
  different seeds -> different sets; decisions are a pure function of
  (seed, kind, index), independent of interleaving across kinds;
- metrics invariance: the ISSUE 10 differential -- bit-identical
  DeploymentMetrics with sampling on/off (extending the PR 2 tracer
  on/off test), and the sampled set is a subset of the full recording;
- stratified reservoirs: rare kinds survive a flood of common kinds;
  per-kind memory stays bounded by the budget; exact per-kind totals
  are always kept;
- the rotating JSONL sink: bounded disk, rotation order, closed-sink
  errors;
- StreamTracer write-through filtering and limits;
- the streaming / sampling `repro trace` CLI surfaces.
"""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.experiments.config import TestbedConfig
from repro.experiments.testbed import build_deployment
from repro.obs.sampling import (
    JsonlTraceSink,
    SamplingTracer,
    StreamTracer,
    decision_index,
    decision_unit,
)
from repro.obs.tracer import RecordingTracer


class TestDecisionStream:
    def test_unit_deterministic_and_in_range(self):
        for kind in ("visit", "msg_send", "node_down"):
            for index in range(50):
                value = decision_unit(7, kind, index)
                assert 0.0 <= value < 1.0
                assert value == decision_unit(7, kind, index)

    def test_unit_varies_by_seed_kind_index(self):
        base = decision_unit(1, "visit", 3)
        assert base != decision_unit(2, "visit", 3)
        assert base != decision_unit(1, "msg_send", 3)
        assert base != decision_unit(1, "visit", 4)

    def test_index_range_and_determinism(self):
        for modulus in (1, 7, 256):
            for index in range(20):
                slot = decision_index(5, "visit", index, modulus)
                assert 0 <= slot < modulus
                assert slot == decision_index(5, "visit", index, modulus)

    def test_index_rejects_non_positive_modulus(self):
        with pytest.raises(ValueError):
            decision_index(0, "visit", 1, 0)


def _emit_mixed(tracer, n_common=500, n_rare=3):
    for index in range(n_common):
        tracer.emit(float(index), "visit", "u%d" % (index % 5), step=index)
        tracer.emit(float(index) + 0.5, "msg_send", "s0", kb=1.0)
    for index in range(n_rare):
        tracer.emit(100.0 + index, "node_down", "s%d" % index)


class TestSamplingTracer:
    def test_same_seed_same_sampled_set(self):
        one, two = SamplingTracer(seed=3, rate=0.4, per_kind_budget=32), \
            SamplingTracer(seed=3, rate=0.4, per_kind_budget=32)
        _emit_mixed(one)
        _emit_mixed(two)
        assert [e.to_json() for e in one.events()] == [
            e.to_json() for e in two.events()
        ]
        assert one.kind_counts() == two.kind_counts()
        assert one.admitted_counts() == two.admitted_counts()

    def test_different_seed_different_set(self):
        one, two = SamplingTracer(seed=1, rate=0.4, per_kind_budget=32), \
            SamplingTracer(seed=2, rate=0.4, per_kind_budget=32)
        _emit_mixed(one)
        _emit_mixed(two)
        assert [e.to_json() for e in one.events()] != [
            e.to_json() for e in two.events()
        ]

    def test_rare_kinds_never_starved(self):
        # 10k common events cannot evict the 3 rare ones: stratified
        # per-kind reservoirs, not one shared pool.
        tracer = SamplingTracer(seed=0, rate=1.0, per_kind_budget=8)
        _emit_mixed(tracer, n_common=10_000, n_rare=3)
        assert len(tracer.events(kinds=["node_down"])) == 3
        assert tracer.kind_counts()["node_down"] == 3

    def test_memory_bounded_by_kind_budget(self):
        tracer = SamplingTracer(seed=0, rate=1.0, per_kind_budget=16)
        _emit_mixed(tracer, n_common=5000)
        held = tracer.held_counts()
        assert all(count <= 16 for count in held.values())
        assert len(tracer) == sum(held.values())
        # Exact totals survive sampling.
        assert tracer.kind_counts()["visit"] == 5000

    def test_rate_filter_thins_per_kind(self):
        tracer = SamplingTracer(
            seed=0, rate=1.0, rates={"visit": 0.1}, per_kind_budget=10_000
        )
        _emit_mixed(tracer, n_common=2000, n_rare=3)
        admitted = tracer.admitted_counts()
        # ~10% of visits, every msg_send and node_down.
        assert 100 < admitted["visit"] < 300
        assert admitted["msg_send"] == 2000
        assert admitted["node_down"] == 3

    def test_events_filters_match_recording_tracer(self):
        sampler = SamplingTracer(seed=0, rate=1.0, per_kind_budget=10_000)
        recorder = RecordingTracer()
        for tracer in (sampler, recorder):
            _emit_mixed(tracer, n_common=50, n_rare=2)
        kwargs = dict(node="s0", kinds=["msg_send"], since=10.0, until=40.0)
        assert [e.to_json() for e in sampler.events(**kwargs)] == [
            e.to_json() for e in recorder.events(**kwargs)
        ]

    def test_sampled_set_is_subset_of_full_recording(self):
        sampler = SamplingTracer(seed=9, rate=0.25, per_kind_budget=64)
        recorder = RecordingTracer()
        for tracer in (sampler, recorder):
            _emit_mixed(tracer)
        full = {e.to_json() for e in recorder.events()}
        assert all(e.to_json() in full for e in sampler.events())

    def test_zero_budget_keeps_counts_only(self):
        tracer = SamplingTracer(seed=0, rate=1.0, per_kind_budget=0)
        _emit_mixed(tracer, n_common=100)
        assert len(tracer) == 0
        assert tracer.kind_counts()["visit"] == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingTracer(rate=1.5)
        with pytest.raises(ValueError):
            SamplingTracer(per_kind_budget=-1)
        with pytest.raises(ValueError):
            SamplingTracer(rates={"visit": 2.0})

    def test_summary_shape(self):
        tracer = SamplingTracer(seed=4, rate=0.5, per_kind_budget=8)
        _emit_mixed(tracer, n_common=100)
        summary = tracer.summary()
        assert summary["seed"] == 4
        assert summary["emitted"] == 203
        assert summary["held"] == len(tracer)
        assert summary["sink_rows"] == 0


class TestMetricsInvariance:
    def test_metrics_bit_identical_with_and_without_sampling(self):
        # The ISSUE 10 differential, extending the PR 2 on/off test:
        # a deterministic sampling tracer (with and without thinning)
        # must not move a single metric bit.
        config = TestbedConfig(
            n_servers=6, users_per_server=1, n_updates=8,
            game_duration_s=240.0, seed=11,
        )
        for method in ("ttl", "invalidation"):
            plain = build_deployment(config, method).run()
            for tracer in (
                SamplingTracer(seed=0, rate=1.0, per_kind_budget=64),
                SamplingTracer(seed=5, rate=0.05, per_kind_budget=8),
            ):
                sampled = build_deployment(
                    config, method, tracer=tracer
                ).run()
                assert plain.to_dict() == sampled.to_dict()

    def test_sampled_subset_of_recorded_on_real_deployment(self):
        config = TestbedConfig(
            n_servers=5, users_per_server=1, n_updates=6,
            game_duration_s=200.0, seed=2,
        )
        recorder = RecordingTracer()
        build_deployment(config, "ttl", tracer=recorder).run()
        sampler = SamplingTracer(seed=3, rate=0.3, per_kind_budget=32)
        build_deployment(config, "ttl", tracer=sampler).run()
        # Exact totals agree; the sampled rows all exist in the full dump.
        assert sampler.kind_counts() == recorder.kind_counts()
        full = {e.to_json() for e in recorder.events()}
        assert all(e.to_json() in full for e in sampler.events())


class TestJsonlTraceSink:
    def test_streams_admitted_events(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlTraceSink(path, rotate_kb=1024) as sink:
            tracer = SamplingTracer(seed=0, rate=1.0, per_kind_budget=4,
                                    sink=sink)
            _emit_mixed(tracer, n_common=20, n_rare=1)
        rows = [json.loads(line) for line in open(path)]
        # Every admitted event streamed, even ones later evicted from
        # the reservoir.
        assert len(rows) == 41
        assert {row["kind"] for row in rows} == {
            "visit", "msg_send", "node_down",
        }

    def test_rotation_bounds_disk(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlTraceSink(path, rotate_kb=1, keep=2)
        tracer = SamplingTracer(seed=0, rate=1.0, per_kind_budget=4,
                                sink=sink)
        _emit_mixed(tracer, n_common=500)
        sink.close()
        assert sink.rotations > 2
        files = sink.files()
        assert files[0] == path
        assert len(files) <= 3  # live file + keep rotated
        total = sum(os.path.getsize(f) for f in files)
        assert total <= 3 * 1024 + 4096  # bounded regardless of volume

    def test_keep_zero_truncates_in_place(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlTraceSink(path, rotate_kb=1, keep=0)
        tracer = SamplingTracer(seed=0, rate=1.0, per_kind_budget=4,
                                sink=sink)
        _emit_mixed(tracer, n_common=200)
        sink.close()
        assert sink.files() == [path]
        assert os.path.getsize(path) <= 2048

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"))
        sink.close()
        tracer = SamplingTracer(sink=sink)
        with pytest.raises(ValueError):
            tracer.emit(1.0, "visit", "u0")

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTraceSink(str(tmp_path / "t.jsonl"), rotate_kb=0)
        with pytest.raises(ValueError):
            JsonlTraceSink(str(tmp_path / "t.jsonl"), keep=-1)


class TestStreamTracer:
    def test_writes_through_with_filters(self, tmp_path):
        out = tmp_path / "stream.jsonl"
        with open(out, "w") as handle:
            tracer = StreamTracer(handle, kinds=["node_down"], since=100.0)
            _emit_mixed(tracer, n_common=50, n_rare=3)
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert [row["kind"] for row in rows] == ["node_down"] * 3
        assert tracer.written == 3
        # Exact counts are pre-filter.
        assert tracer.kind_counts()["visit"] == 50
        assert tracer.total_emitted() == 103

    def test_limit_caps_rows_not_counts(self, tmp_path):
        out = tmp_path / "stream.jsonl"
        with open(out, "w") as handle:
            tracer = StreamTracer(handle, limit=5)
            _emit_mixed(tracer, n_common=100)
        assert tracer.written == 5
        assert len(out.read_text().splitlines()) == 5
        assert tracer.total_emitted() == 203


class TestTraceCliStreaming:
    BIG = [
        "trace", "--servers", "40", "--users-per-server", "2",
        "--updates", "20", "--duration", "400",
    ]

    def test_limit_on_large_deployment(self, tmp_path, capsys):
        # The ISSUE 10 satellite: events stream incrementally, so a
        # capped dump of a large deployment writes exactly --limit rows
        # while still reporting exact totals on stderr.
        out = str(tmp_path / "big.jsonl")
        assert cli_main(self.BIG + ["--limit", "7", "--out", out]) == 0
        rows = [json.loads(line) for line in open(out)]
        assert len(rows) == 7
        err = capsys.readouterr().err
        assert "event(s) recorded, 7 written" in err

    def test_sampled_trace_cli(self, tmp_path, capsys):
        out = str(tmp_path / "sampled.jsonl")
        args = self.BIG + [
            "--sample-rate", "0.1", "--budget", "16",
            "--sample-seed", "5", "--out", out,
        ]
        assert cli_main(args) == 0
        first = open(out).read()
        err = capsys.readouterr().err
        assert "sampling: rate=0.1 budget=16 seed=5" in err
        # Deterministic: the same invocation reproduces the same rows.
        assert cli_main(args) == 0
        assert open(out).read() == first

    def test_stream_filters_on_stdout(self, capsys):
        assert cli_main(self.BIG + ["--kind", "poll_round", "--limit", "4"]) == 0
        captured = capsys.readouterr()
        rows = [json.loads(line) for line in captured.out.splitlines()]
        assert len(rows) == 4
        assert all(row["kind"] == "poll_round" for row in rows)
