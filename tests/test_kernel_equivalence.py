"""Differential tests: vectorized fast kernel vs legacy Timeout kernel.

The fast kernel (timer wheel, inline transport start, consumer dispatch,
sync-first server tasks, incremental staleness, placement memoization)
must be a pure performance change: every simulated outcome -- delivery
times, RNG draw order, metric values, fabric counters, message traces --
must be bit-identical to the legacy path (``REPRO_LEGACY_KERNEL=1``) for
every update method on every infrastructure, and under perturbation-heavy
scenarios.  Only the kernel-event *count* may differ (that is the point),
so ``events_processed`` is excluded from the metric comparison and
asserted strictly smaller instead.

Also covers the :class:`~repro.sim.timers.TimerWheel` unit contract and
the construction-time/live semantics of the ``REPRO_LEGACY_KERNEL``,
``REPRO_LEGACY_TRANSPORT``, and ``REPRO_TELEMETRY`` switches.
"""

import os
from contextlib import contextmanager

import pytest

import repro.experiments.testbed as testbed_mod
import repro.network.message as message_mod
from repro.experiments.config import TestbedConfig
from repro.experiments.testbed import INFRASTRUCTURES, METHODS, build_deployment
from repro.metrics.timeseries import fleet_staleness_series
from repro.network import NetworkFabric
from repro.network.link import LEGACY_TRANSPORT_ENV
from repro.obs.telemetry import MetricsRegistry, TELEMETRY_ENV
from repro.obs.tracer import RecordingTracer
from repro.sim import Environment, StreamRegistry
from repro.sim.engine import LEGACY_KERNEL_ENV

_MESSAGE_KINDS = ("msg_send", "msg_recv", "msg_drop")


@contextmanager
def _kernel(legacy):
    """Pin ``REPRO_LEGACY_KERNEL`` (a construction-time read) around a
    build."""
    old = os.environ.get(LEGACY_KERNEL_ENV)
    if legacy:
        os.environ[LEGACY_KERNEL_ENV] = "1"
    else:
        os.environ.pop(LEGACY_KERNEL_ENV, None)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(LEGACY_KERNEL_ENV, None)
        else:
            os.environ[LEGACY_KERNEL_ENV] = old


def _tiny_config(seed, **overrides):
    defaults = dict(
        n_servers=6,
        users_per_server=1,
        n_updates=6,
        game_duration_s=200.0,
        hat_clusters=3,
        seed=seed,
    )
    defaults.update(overrides)
    return TestbedConfig(**defaults)


def _run_cell(method, infrastructure, seed, legacy, scenario=None, **overrides):
    """One deployment run; returns (metrics, counters, message trace)."""
    # Message.seq is a process-global counter; reset it so the two runs
    # under comparison label their messages identically.
    message_mod._SEQ = 0
    tracer = RecordingTracer()
    with _kernel(legacy):
        deployment = build_deployment(
            _tiny_config(seed, **overrides),
            method,
            infrastructure,
            tracer=tracer,
            scenario=scenario,
        )
    assert deployment.env.legacy_kernel is legacy
    metrics = deployment.run()
    trace = tracer.events(kinds=_MESSAGE_KINDS)
    return metrics, deployment.fabric.counters.to_dict(), trace


def _cell_overrides(method, infrastructure):
    # invalidation/broadcast floods (quadratic re-broadcast storm); cut
    # the horizon shortly after the storm starts so the cell stays fast
    # while still exercising tens of thousands of transfers.
    if (method, infrastructure) == ("invalidation", "broadcast"):
        return {"horizon_s": 80.0}
    return {}


def _assert_identical(fast, legacy, label):
    fast_m, fast_c, fast_t = fast
    legacy_m, legacy_c, legacy_t = legacy
    fast_d = fast_m.to_dict()
    legacy_d = legacy_m.to_dict()
    fast_events = fast_d.pop("events_processed")
    legacy_events = legacy_d.pop("events_processed")
    assert fast_d == legacy_d, "DeploymentMetrics diverged (%s)" % label
    assert fast_c == legacy_c, "FabricCounters diverged (%s)" % label
    assert fast_t == legacy_t, "message traces diverged (%s)" % label
    # The same traffic must cost the fast kernel strictly fewer events.
    if fast_c["messages_sent"]:
        assert fast_events < legacy_events, label


# ----------------------------------------------------------------------
# the differential contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("infrastructure", INFRASTRUCTURES)
@pytest.mark.parametrize("method", METHODS)
def test_fast_kernel_bit_identical(method, infrastructure):
    """Fast and legacy kernel agree exactly, at three seeds."""
    overrides = _cell_overrides(method, infrastructure)
    for seed in (0, 1, 2):
        fast = _run_cell(method, infrastructure, seed, legacy=False, **overrides)
        legacy = _run_cell(method, infrastructure, seed, legacy=True, **overrides)
        _assert_identical(
            fast, legacy, "%s/%s seed %d" % (method, infrastructure, seed)
        )


@pytest.mark.parametrize(
    "scenario", ["paper-baseline", "failure-storm", "flash-crowd"]
)
def test_scenario_cells_bit_identical(scenario):
    """Perturbation-heavy scenarios match across kernels too."""
    for method in ("ttl", "push"):
        fast = _run_cell(method, "unicast", 0, legacy=False, scenario=scenario)
        legacy = _run_cell(method, "unicast", 0, legacy=True, scenario=scenario)
        _assert_identical(fast, legacy, "%s@%s" % (method, scenario))


def test_staleness_series_match_across_kernels():
    """The incremental/cached series path equals the legacy full-log
    derivation, both per-replica and fleet-wide."""
    results = {}
    for legacy in (False, True):
        message_mod._SEQ = 0
        with _kernel(legacy):
            deployment = build_deployment(_tiny_config(3), "ttl", "unicast")
        deployment.run()
        fleet = deployment.fleet_staleness_series()
        first = deployment.staleness_series_of(
            deployment.servers[0].node.node_id
        )
        results[legacy] = (fleet.times, fleet.values, first.times, first.values)
        # The cache must agree with the uncached module function.
        direct = fleet_staleness_series(
            deployment.content,
            [server.apply_log() for server in deployment.servers],
            deployment.config.run_horizon_s,
        )
        assert fleet.times == direct.times
        assert fleet.values == direct.values
        # Repeat queries come from the cache (same object, not a rerun).
        assert deployment.fleet_staleness_series() is fleet
        with pytest.raises(KeyError):
            deployment.staleness_series_of("no-such-server")
    assert results[False] == results[True]


# ----------------------------------------------------------------------
# placement memoization
# ----------------------------------------------------------------------
class TestPlacementCache:
    def test_cache_hit_is_bit_transparent(self):
        testbed_mod._PLACEMENT_CACHE.clear()
        message_mod._SEQ = 0
        miss = build_deployment(_tiny_config(0), "ttl", "unicast").run().to_dict()
        assert len(testbed_mod._PLACEMENT_CACHE) == 1
        message_mod._SEQ = 0
        hit = build_deployment(_tiny_config(0), "ttl", "unicast").run().to_dict()
        assert len(testbed_mod._PLACEMENT_CACHE) == 1  # reused, not re-added
        assert miss == hit

    def test_distinct_topologies_get_distinct_entries(self):
        testbed_mod._PLACEMENT_CACHE.clear()
        build_deployment(_tiny_config(0), "ttl", "unicast")
        build_deployment(_tiny_config(1), "ttl", "unicast")
        build_deployment(_tiny_config(0, n_servers=4), "ttl", "unicast")
        assert len(testbed_mod._PLACEMENT_CACHE) == 3
        # Same topology, different method: shared entry.
        build_deployment(_tiny_config(0), "push", "multicast")
        assert len(testbed_mod._PLACEMENT_CACHE) == 3

    def test_legacy_kernel_bypasses_cache(self):
        testbed_mod._PLACEMENT_CACHE.clear()
        with _kernel(True):
            build_deployment(_tiny_config(0), "ttl", "unicast")
        assert testbed_mod._PLACEMENT_CACHE == {}

    def test_cache_evicts_fifo_at_cap(self, monkeypatch):
        testbed_mod._PLACEMENT_CACHE.clear()
        monkeypatch.setattr(testbed_mod, "_PLACEMENT_CACHE_MAX", 2)
        for seed in (0, 1, 2):
            build_deployment(_tiny_config(seed), "ttl", "unicast")
        assert len(testbed_mod._PLACEMENT_CACHE) == 2
        seeds = [key[0] for key in testbed_mod._PLACEMENT_CACHE]
        assert seeds == [1, 2]  # seed 0 aged out first


# ----------------------------------------------------------------------
# timer wheel unit contract
# ----------------------------------------------------------------------
class TestTimerWheel:
    def test_fires_in_deadline_order_across_lanes(self):
        env = Environment()
        fired = []
        for delay in (5.0, 1.0, 3.0):
            waiter = env.event()
            waiter.callbacks.append(
                lambda ev, d=delay: fired.append((env.now, d))
            )
            env.timers.arm(delay, waiter)
        env.run()
        assert fired == [(1.0, 1.0), (3.0, 3.0), (5.0, 5.0)]

    def test_same_lane_is_fifo_and_sweeps_in_one_batch(self):
        env = Environment()
        fired = []
        for index in range(10):
            waiter = env.event()
            waiter.callbacks.append(lambda ev, i=index: fired.append(i))
            env.timers.arm(2.0, waiter)
        env.run()
        assert fired == list(range(10))
        assert env.timers.armed == 10
        assert env.timers.expired == 10
        assert env.timers.sweeps == 1  # one control event for the batch
        assert env.timers.pending == 0

    def test_cancelled_waiters_are_skipped_lazily(self):
        env = Environment()
        fired = []
        waiters = []
        for index in range(4):
            waiter = env.event()
            waiter.callbacks.append(lambda ev, i=index: fired.append(i))
            env.timers.arm(1.0, waiter)
            waiters.append(waiter)
        waiters[1].callbacks = None  # cancel, simpy-style
        env.run()
        assert fired == [0, 2, 3]
        assert env.timers.cancelled == 1
        assert env.timers.expired == 3

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError, match="negative"):
            env.timers.arm(-0.1, env.event())

    def test_lane_grows_past_initial_capacity(self):
        env = Environment()
        n = 300  # > _INITIAL_CAPACITY, forces growth/compaction
        fired = []

        def driver(env):
            for index in range(n):
                waiter = env.event()
                waiter.callbacks.append(lambda ev, i=index: fired.append(i))
                env.timers.arm(1.0, waiter)
                yield env.pooled_timeout(0.25)

        env.process(driver(env))
        env.run()
        assert fired == list(range(n))
        assert env.timers.armed == n
        assert env.timers.expired == n
        assert env.timers.pending == 0

    def test_deadline_matches_legacy_timeout_float(self):
        # The wheel computes `env._now + delay` -- the exact float a
        # legacy Timeout produces -- so both fire at the same instant
        # even where decimal arithmetic would disagree.
        env = Environment()
        out = []

        def driver(env):
            yield env.pooled_timeout(0.1)
            waiter = env.event()
            waiter.callbacks.append(lambda ev: out.append(env.now))
            env.timers.arm(0.2, waiter)
            timeout = env.timeout(0.2)
            timeout.callbacks.append(lambda ev: out.append(env.now))
            yield env.pooled_timeout(1.0)

        env.process(driver(env))
        env.run()
        assert len(out) == 2 and out[0] == out[1]

    def test_now_stays_builtin_float_after_rearm(self):
        # Sweep re-arms read deadlines out of a numpy array; env.now
        # must stay a builtin float (np.float64 breaks json.dump).
        env = Environment()
        env.timers.arm(1.0, env.event())

        def driver(env):
            yield env.pooled_timeout(0.5)
            env.timers.arm(1.0, env.event())

        env.process(driver(env))
        env.run()
        assert env.now == 1.5
        assert type(env.now) is float


# ----------------------------------------------------------------------
# environment switches
# ----------------------------------------------------------------------
class TestEnvSwitches:
    def test_legacy_kernel_read_at_construction(self, monkeypatch):
        monkeypatch.setenv(LEGACY_KERNEL_ENV, "1")
        assert Environment().legacy_kernel is True
        monkeypatch.setenv(LEGACY_KERNEL_ENV, "0")
        assert Environment().legacy_kernel is False
        monkeypatch.delenv(LEGACY_KERNEL_ENV)
        assert Environment().legacy_kernel is False
        # Explicit argument beats the environment.
        monkeypatch.setenv(LEGACY_KERNEL_ENV, "1")
        assert Environment(legacy_kernel=False).legacy_kernel is False

    def test_legacy_transport_read_at_construction(self, monkeypatch):
        monkeypatch.setenv(LEGACY_TRANSPORT_ENV, "1")
        fabric = NetworkFabric(Environment(), streams=StreamRegistry(0))
        assert fabric.legacy_transport is True
        monkeypatch.delenv(LEGACY_TRANSPORT_ENV)
        fabric = NetworkFabric(Environment(), streams=StreamRegistry(0))
        assert fabric.legacy_transport is False
        monkeypatch.setenv(LEGACY_TRANSPORT_ENV, "1")
        fabric = NetworkFabric(
            Environment(), streams=StreamRegistry(0), legacy_transport=False
        )
        assert fabric.legacy_transport is False

    def test_telemetry_env_read_live(self, monkeypatch):
        # The registry singleton is constructed at import, so the switch
        # must track the environment at call time for setenv to work.
        registry = MetricsRegistry()
        monkeypatch.setenv(TELEMETRY_ENV, "0")
        assert registry.enabled is False
        registry.count("probe")
        assert registry.snapshot()["counters"] == {}
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        assert registry.enabled is True
        registry.count("probe")
        assert registry.snapshot()["counters"] == {"probe": 1.0}

    def test_telemetry_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "0")
        assert MetricsRegistry(enabled=True).enabled is True
        registry = MetricsRegistry()
        registry.enabled = True  # direct assignment pins the switch
        assert registry.enabled is True
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        registry.enabled = False
        assert registry.enabled is False
