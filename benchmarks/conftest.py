"""Shared fixtures for the per-figure benchmarks.

Benchmarks run the real experiment drivers at a reduced-but-same-shape
scale (the full paper scale is available through
``examples/regenerate_experiments.py``).  Each benchmark asserts the
paper's qualitative claim for its figure -- who wins, in which order,
and roughly by what factor.
"""

import pytest

from repro.experiments.config import ci_scale
from repro.experiments.section3 import Section3Context
from repro.experiments.section5 import section5_config
from repro.trace.synthesize import SynthesisConfig


@pytest.fixture(scope="session")
def s3ctx():
    """Section 3 context at benchmark scale (~1/20 of the paper crawl)."""
    config = SynthesisConfig(n_servers=150, n_days=6)
    return Section3Context(config, seed=0, n_users=60)


@pytest.fixture(scope="session")
def s4cfg():
    """Section 4 testbed at benchmark scale (30 servers, 4 users each)."""
    return ci_scale(users_per_server=4)


@pytest.fixture(scope="session")
def sweep_cfg():
    """Shorter game for parameter sweeps (Figs. 17-20, 22, 24)."""
    return ci_scale(n_updates=30, game_duration_s=876.0, users_per_server=2)


@pytest.fixture(scope="session")
def s5cfg():
    """Section 5 testbed: server TTL 60 s, 6 HAT clusters at this scale."""
    return section5_config(ci_scale(users_per_server=2))


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic and expensive, so one round is
    both sufficient and honest.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
