"""True performance microbenchmarks: DES engine throughput, trace
synthesis throughput, and analysis throughput.

Unlike the figure benchmarks these run multiple rounds -- they are the
regression canaries for the substrate's performance.
"""

import numpy as np

from repro.sim import Environment, Resource, Store
from repro.trace import SynthesisConfig, TraceSynthesizer, all_inconsistencies


def test_engine_timeout_throughput(benchmark):
    """Schedule-and-run of 20k chained timeouts."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(20_000):
                yield env.timeout(1)

        env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 20_000


def test_engine_process_churn(benchmark):
    """Spawn 5k short-lived processes."""

    def run():
        env = Environment()
        done = []

        def worker(env, i):
            yield env.timeout(i % 7)
            done.append(i)

        for i in range(5_000):
            env.process(worker(env, i))
        env.run()
        return len(done)

    assert benchmark(run) == 5_000


def test_engine_resource_contention(benchmark):
    """2k processes contending for a capacity-2 resource."""

    def run():
        env = Environment()
        resource = Resource(env, capacity=2)
        completed = []

        def worker(env, i):
            with resource.request() as grant:
                yield grant
                yield env.timeout(1)
            completed.append(i)

        for i in range(2_000):
            env.process(worker(env, i))
        env.run()
        return len(completed)

    assert benchmark(run) == 2_000


def test_engine_store_pipeline(benchmark):
    """Producer/consumer pipeline moving 10k items."""

    def run():
        env = Environment()
        store = Store(env, capacity=64)
        moved = []

        def producer(env):
            for i in range(10_000):
                yield store.put(i)

        def consumer(env):
            for _ in range(10_000):
                item = yield store.get()
                moved.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        return len(moved)

    assert benchmark(run) == 10_000


def test_trace_synthesis_throughput(benchmark):
    """Generative model: one day of 200 servers (~180k poll records)."""

    config = SynthesisConfig(n_servers=200, n_days=1)

    def run():
        trace = TraceSynthesizer(config, master_seed=1).synthesize()
        return trace.total_polls()

    polls = benchmark(run)
    assert polls > 100_000


def test_trace_analysis_throughput(benchmark):
    """alpha/beta episode extraction over a full synthetic day."""

    config = SynthesisConfig(n_servers=200, n_days=1)
    trace = TraceSynthesizer(config, master_seed=1).synthesize()

    def run():
        return all_inconsistencies(trace)

    lengths = benchmark(run)
    assert lengths.size > 1_000
    assert np.isfinite(lengths).all()


def _transport_storm(legacy, n_servers=40, rounds=60):
    """Peer-exchange storm: every round each server messages its ring
    neighbour.  Distinct senders keep the output ports uncontended, the
    regime the fast path's synchronous port claim targets (a provider
    fan-out instead serialises on one port and measures the Resource
    queue, not the transport)."""
    from repro.network import Message, MessageKind, NetworkFabric, TopologyBuilder
    from repro.sim import StreamRegistry

    env = Environment()
    streams = StreamRegistry(0)
    topology = TopologyBuilder(env, streams).build(
        n_servers=n_servers, users_per_server=0
    )
    fabric = NetworkFabric(env, streams=streams, legacy_transport=legacy)
    servers = topology.servers

    def driver(env):
        for round_no in range(rounds):
            for i, server in enumerate(servers):
                fabric.send(
                    Message(
                        MessageKind.PUSH_UPDATE, server,
                        servers[(i + 1) % n_servers], 4.0,
                        version=round_no,
                    )
                )
            yield env.timeout(5.0)

    env.process(driver(env))
    env.run()
    assert fabric.counters.messages_delivered == n_servers * rounds
    return env.events_processed


def test_transport_fast_vs_legacy(benchmark):
    """The callback fast path must beat the generator path by >= 2x.

    The threshold is overridable (``REPRO_BENCH_MIN_SPEEDUP``) so noisy
    CI runners can gate only on gross regressions; the recorded
    ``extra_info`` in BENCH_engine.json keeps the honest numbers.
    """
    import os
    import time

    n_messages = 40 * 60
    events = benchmark(_transport_storm, legacy=False)

    legacy_times = []
    for _ in range(3):
        start = time.perf_counter()
        legacy_events = _transport_storm(legacy=True)
        legacy_times.append(time.perf_counter() - start)
    legacy_s = min(legacy_times)

    fast_s = benchmark.stats.stats.min
    speedup = legacy_s / fast_s
    benchmark.extra_info["messages"] = n_messages
    benchmark.extra_info["fast_events"] = events
    benchmark.extra_info["legacy_events"] = legacy_events
    benchmark.extra_info["fast_msgs_per_s"] = n_messages / fast_s
    benchmark.extra_info["legacy_msgs_per_s"] = n_messages / legacy_s
    benchmark.extra_info["fast_events_per_s"] = events / fast_s
    benchmark.extra_info["legacy_events_per_s"] = legacy_events / legacy_s
    benchmark.extra_info["transport_speedup"] = speedup

    assert events < legacy_events
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))
    assert speedup >= min_speedup, (
        "fast transport only %.2fx the legacy path (need >= %.2fx)"
        % (speedup, min_speedup)
    )


def _kernel_deployment(legacy):
    """One full TTL/unicast deployment run at CI scale under the chosen
    kernel.  The kernel flag is read at ``Environment`` construction, so
    it is pinned around ``build_deployment`` only."""
    import os

    import repro.network.message as message_mod
    from repro.experiments.config import ci_scale
    from repro.experiments.testbed import build_deployment

    message_mod._SEQ = 0
    prior = os.environ.get("REPRO_LEGACY_KERNEL")
    os.environ["REPRO_LEGACY_KERNEL"] = "1" if legacy else "0"
    try:
        deployment = build_deployment(ci_scale(users_per_server=2), "ttl")
    finally:
        if prior is None:
            os.environ.pop("REPRO_LEGACY_KERNEL", None)
        else:
            os.environ["REPRO_LEGACY_KERNEL"] = prior
    assert deployment.env.legacy_kernel is legacy
    metrics = deployment.run().to_dict()
    events = metrics.pop("events_processed")
    return metrics, events


def test_kernel_fast_vs_legacy(benchmark):
    """The fast kernel (timer wheel + sync dispatch + inline transport)
    must beat the legacy kernel on a whole deployment run.

    Also re-checks bit-identity of the resulting metrics here in the
    benchmark regime (CI scale), complementing the differential suite in
    ``tests/test_kernel_equivalence.py``.  The recorded ``extra_info``
    key is ``kernel_speedup`` (``transport_speedup`` is reserved for the
    transport storm's floor gate).
    """
    import os
    import time

    fast_metrics, fast_events = benchmark(_kernel_deployment, legacy=False)

    legacy_times = []
    for _ in range(3):
        start = time.perf_counter()
        legacy_metrics, legacy_events = _kernel_deployment(legacy=True)
        legacy_times.append(time.perf_counter() - start)
    legacy_s = min(legacy_times)

    fast_s = benchmark.stats.stats.min
    speedup = legacy_s / fast_s
    benchmark.extra_info["fast_events"] = fast_events
    benchmark.extra_info["legacy_events"] = legacy_events
    benchmark.extra_info["fast_events_per_s"] = fast_events / fast_s
    benchmark.extra_info["legacy_events_per_s"] = legacy_events / legacy_s
    benchmark.extra_info["kernel_speedup"] = speedup

    assert fast_metrics == legacy_metrics
    assert fast_events < legacy_events
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_KERNEL_SPEEDUP", "1.5"))
    assert speedup >= min_speedup, (
        "fast kernel only %.2fx the legacy kernel (need >= %.2fx)"
        % (speedup, min_speedup)
    )
