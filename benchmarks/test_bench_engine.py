"""True performance microbenchmarks: DES engine throughput, trace
synthesis throughput, and analysis throughput.

Unlike the figure benchmarks these run multiple rounds -- they are the
regression canaries for the substrate's performance.
"""

import numpy as np

from repro.sim import Environment, Resource, Store
from repro.trace import SynthesisConfig, TraceSynthesizer, all_inconsistencies


def test_engine_timeout_throughput(benchmark):
    """Schedule-and-run of 20k chained timeouts."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(20_000):
                yield env.timeout(1)

        env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 20_000


def test_engine_process_churn(benchmark):
    """Spawn 5k short-lived processes."""

    def run():
        env = Environment()
        done = []

        def worker(env, i):
            yield env.timeout(i % 7)
            done.append(i)

        for i in range(5_000):
            env.process(worker(env, i))
        env.run()
        return len(done)

    assert benchmark(run) == 5_000


def test_engine_resource_contention(benchmark):
    """2k processes contending for a capacity-2 resource."""

    def run():
        env = Environment()
        resource = Resource(env, capacity=2)
        completed = []

        def worker(env, i):
            with resource.request() as grant:
                yield grant
                yield env.timeout(1)
            completed.append(i)

        for i in range(2_000):
            env.process(worker(env, i))
        env.run()
        return len(completed)

    assert benchmark(run) == 2_000


def test_engine_store_pipeline(benchmark):
    """Producer/consumer pipeline moving 10k items."""

    def run():
        env = Environment()
        store = Store(env, capacity=64)
        moved = []

        def producer(env):
            for i in range(10_000):
                yield store.put(i)

        def consumer(env):
            for _ in range(10_000):
                item = yield store.get()
                moved.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        return len(moved)

    assert benchmark(run) == 10_000


def test_trace_synthesis_throughput(benchmark):
    """Generative model: one day of 200 servers (~180k poll records)."""

    config = SynthesisConfig(n_servers=200, n_days=1)

    def run():
        trace = TraceSynthesizer(config, master_seed=1).synthesize()
        return trace.total_polls()

    polls = benchmark(run)
    assert polls > 100_000


def test_trace_analysis_throughput(benchmark):
    """alpha/beta episode extraction over a full synthetic day."""

    config = SynthesisConfig(n_servers=200, n_days=1)
    trace = TraceSynthesizer(config, master_seed=1).synthesize()

    def run():
        return all_inconsistencies(trace)

    lengths = benchmark(run)
    assert lengths.size > 1_000
    assert np.isfinite(lengths).all()
