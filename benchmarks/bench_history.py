"""Append-only benchmark trajectory for BENCH_*.json.

``make bench`` used to overwrite ``BENCH_*.json`` with the latest
pytest-benchmark document, so there was never anything to compare a run
against.  Now each ``BENCH_*.json`` holds a trajectory::

    {
      "format": 1,
      "history": [
        {
          "recorded": "<ISO timestamp from pytest-benchmark>",
          "machine": "<node name>",
          "benchmarks": [
            {"name": ..., "stats": {"min": ..., "mean": ..., "stddev": ...},
             "extra_info": {...}},
            ...
          ]
        },
        ...  # newest last
      ]
    }

``load_trajectory`` also accepts the legacy single-snapshot shape (a
raw pytest-benchmark document) by treating it as a one-entry history,
so the recorded ~2.2x transport speedup from the original snapshot
survives as entry 0.

CLI: ``python benchmarks/bench_history.py append TRAJECTORY SNAPSHOT``
appends one pytest-benchmark JSON to a trajectory (creating or
migrating the trajectory as needed) -- this is what ``make bench`` runs
after each benchmark session.
"""

import argparse
import json
import os
import platform
import socket
import subprocess
import sys
import tempfile

FORMAT = 1

#: Entries kept per trajectory; oldest age out first.
MAX_ENTRIES = 200

#: Per-benchmark stats carried into the trajectory (the full
#: pytest-benchmark stats block is ~25 fields of mostly derivable data).
_KEPT_STATS = ("min", "max", "mean", "median", "stddev", "rounds")


def _git_commit():
    """The current commit hash, or "" when git/repo is unavailable.

    Best-effort by design: benchmarks must record fine from an export
    tarball or a machine without git.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    if out.returncode != 0:
        return ""
    return out.stdout.strip()


def _provenance(doc):
    """Who/where/what produced this entry: commit hash (best-effort),
    hostname, and Python version.  ``repro analyze`` groups trajectory
    entries cross-commit and cross-machine off these fields."""
    machine_info = doc.get("machine_info") or {}
    return {
        "commit": _git_commit(),
        "host": machine_info.get("node") or socket.gethostname(),
        "python": machine_info.get("python_version")
        or platform.python_version(),
    }


def _slim_entry(doc):
    """One trajectory entry from a pytest-benchmark document."""
    benchmarks = []
    for bench in doc.get("benchmarks", []):
        stats = bench.get("stats", {})
        benchmarks.append(
            {
                "name": bench.get("name", "?"),
                "stats": {k: stats[k] for k in _KEPT_STATS if k in stats},
                "extra_info": bench.get("extra_info") or {},
            }
        )
    entry = {
        "recorded": doc.get("datetime", ""),
        "machine": (doc.get("machine_info") or {}).get("node", ""),
        "benchmarks": benchmarks,
    }
    entry.update(_provenance(doc))
    return entry


def load_trajectory(path):
    """The trajectory at *path*; legacy snapshots become entry 0.

    Raises ``ValueError`` on unreadable/unrecognisable content; a
    missing file is an empty trajectory.
    """
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        return {"format": FORMAT, "history": []}
    except (OSError, ValueError) as exc:
        raise ValueError("cannot read %s: %s" % (path, exc))
    if isinstance(doc, dict) and isinstance(doc.get("history"), list):
        return {"format": FORMAT, "history": doc["history"]}
    if isinstance(doc, dict) and "benchmarks" in doc:
        # Legacy single pytest-benchmark snapshot.
        return {"format": FORMAT, "history": [_slim_entry(doc)]}
    raise ValueError(
        "%s is neither a benchmark trajectory nor a pytest-benchmark "
        "snapshot" % path
    )


def append_snapshot(trajectory_path, snapshot_doc):
    """Append *snapshot_doc* (a pytest-benchmark dict) to the trajectory.

    Returns the number of entries after appending.  The write is atomic
    (tempfile + replace) so a crash never truncates the history.
    """
    trajectory = load_trajectory(trajectory_path)
    trajectory["history"].append(_slim_entry(snapshot_doc))
    del trajectory["history"][:-MAX_ENTRIES]
    directory = os.path.dirname(os.path.abspath(trajectory_path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(trajectory_path) + ".", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(trajectory, handle, indent=1)
            handle.write("\n")
        os.replace(tmp_path, trajectory_path)
    finally:
        if os.path.exists(tmp_path):
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
    return len(trajectory["history"])


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    append = sub.add_parser(
        "append", help="append a pytest-benchmark JSON to a trajectory"
    )
    append.add_argument("trajectory", help="BENCH_*.json trajectory file")
    append.add_argument("snapshot", help="pytest-benchmark --benchmark-json output")
    append.add_argument(
        "--keep-snapshot", action="store_true",
        help="do not delete the snapshot file after appending",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.snapshot) as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError) as exc:
        print("bench_history: cannot read %s: %s" % (args.snapshot, exc),
              file=sys.stderr)
        return 2
    try:
        total = append_snapshot(args.trajectory, snapshot)
    except ValueError as exc:
        print("bench_history: %s" % exc, file=sys.stderr)
        return 2
    if not args.keep_snapshot:
        try:
            os.unlink(args.snapshot)
        except OSError:
            pass
    print(
        "bench_history: %s now holds %d entr%s"
        % (args.trajectory, total, "y" if total == 1 else "ies")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
