"""Ablation benchmarks beyond the paper's figures.

These quantify design choices the paper argues for qualitatively:

- self-adaptive vs the adaptive-TTL baseline it criticises (Sec 5.1);
- broadcast's redundant-message overhead (the reason Sec 4 excludes it);
- multicast-tree arity (the paper picks d=2 to stress depth effects);
- HAT cluster count (the supernode-push vs member-poll tradeoff);
- node failures: unicast keeps converging, an unrepaired tree strands
  whole subtrees (the Sec 1 argument against multicast).
"""


from repro.cdn import LiveContent, ProviderActor, ServerActor
from repro.consistency import MulticastTreeInfrastructure, PushPolicy, TTLPolicy
from repro.experiments.testbed import build_deployment, build_system
from repro.network import NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry


def test_self_adaptive_beats_adaptive_ttl_on_irregular_updates(run_once, s5cfg):
    """Sec 5.1: adaptive TTL mispredicts irregular updates; the
    self-adaptive switch stays consistent with fewer messages."""

    def run_pair():
        self_metrics = build_system(s5cfg, "self").run()
        adaptive = build_deployment(s5cfg, "adaptive-ttl", "unicast").run()
        return self_metrics, adaptive

    self_metrics, adaptive = run_once(run_pair)
    # The backoff baseline either polls more or goes stale longer.
    assert (
        self_metrics.mean_server_lag < adaptive.mean_server_lag
        or self_metrics.response_messages < adaptive.response_messages
    )
    # And self-adaptive keeps inconsistency bounded by ~TTL.
    assert self_metrics.mean_server_lag < 1.2 * s5cfg.server_ttl_s


def test_broadcast_redundancy(run_once, s4cfg):
    """Sec 1/2: flooding delivers duplicates -- strictly more update
    messages than the tree for the same coverage."""

    def run_pair():
        tree = build_deployment(s4cfg, "push", "multicast").run()
        flood = build_deployment(s4cfg, "push", "broadcast").run()
        return tree, flood

    tree, flood = run_once(run_pair)
    assert flood.update_messages > 1.5 * tree.update_messages
    # Both keep servers fresh (coverage is not the differentiator).
    assert flood.mean_server_lag < 5.0
    assert tree.mean_server_lag < 5.0


def test_tree_arity_tradeoff(run_once, sweep_cfg):
    """Higher arity => shallower tree => lower TTL depth amplification,
    at the cost of more per-node fan-out."""

    def run_arities():
        lags = {}
        for arity in (2, 4, 8):
            metrics = build_deployment(
                sweep_cfg.with_(tree_arity=arity), "ttl", "multicast"
            ).run()
            lags[arity] = metrics.mean_server_lag
        return lags

    lags = run_once(run_arities)
    assert lags[8] < lags[4] < lags[2]


def test_hat_cluster_count_tradeoff(run_once, s5cfg):
    """More clusters => more supernode pushes but shorter member polls;
    provider load stays bounded by the tree either way."""

    def run_counts():
        out = {}
        for n_clusters in (3, 10):
            metrics = build_system(
                s5cfg.with_(hat_clusters=n_clusters), "hat"
            ).run()
            out[n_clusters] = metrics
        return out

    results = run_once(run_counts)
    assert results[10].update_messages >= results[3].update_messages
    for metrics in results.values():
        assert metrics.provider_update_messages <= s5cfg.n_updates * s5cfg.hat_arity


def test_failure_unicast_vs_unrepaired_tree(run_once):
    """Kill an interior tree node mid-run: its subtree stops receiving
    pushes until repair, while unicast only loses the dead node itself."""

    def run_scenario():
        env = Environment()
        streams = StreamRegistry(17)
        topology = TopologyBuilder(env, streams).build(n_servers=24, users_per_server=0)
        fabric = NetworkFabric(env, streams=streams)
        content = LiveContent("game", update_times=[20.0 * i for i in range(1, 30)])
        provider = ProviderActor(env, topology.provider, fabric, content)
        servers = [
            ServerActor(env, node, fabric, content, policy=PushPolicy())
            for node in topology.servers
        ]
        tree = MulticastTreeInfrastructure(fabric, arity=2)
        tree.wire(provider, servers)
        provider.use_push()
        for server in servers:
            server.start()
        victim = max(servers, key=lambda s: len(tree.children_of(s)))

        def killer(env):
            yield env.timeout(100.0)
            victim.node.is_up = False

        env.process(killer(env))
        env.run(until=620.0)
        stranded = [
            server for server in servers
            if server is not victim and server.cached_version < content.last_version
        ]
        return tree, victim, stranded

    tree, victim, stranded = run_once(run_scenario)
    # every stranded server sits under the dead node
    assert stranded
    for server in stranded:
        node = server
        under_victim = False
        while True:
            parent = tree.parent_of(node)
            if parent is None:
                break
            if parent is victim:
                under_victim = True
                break
            node = parent
        assert under_victim


def test_tree_repair_restores_delivery(run_once):
    """With repair, orphans re-attach and catch up on later updates."""

    def run_scenario():
        env = Environment()
        streams = StreamRegistry(18)
        topology = TopologyBuilder(env, streams).build(n_servers=24, users_per_server=0)
        fabric = NetworkFabric(env, streams=streams)
        content = LiveContent("game", update_times=[20.0 * i for i in range(1, 30)])
        provider = ProviderActor(env, topology.provider, fabric, content)
        servers = [
            ServerActor(env, node, fabric, content, policy=PushPolicy())
            for node in topology.servers
        ]
        tree = MulticastTreeInfrastructure(fabric, arity=2)
        tree.wire(provider, servers)
        provider.use_push()
        for server in servers:
            server.start()
        victim = max(servers, key=lambda s: len(tree.children_of(s)))

        def kill_and_repair(env):
            yield env.timeout(100.0)
            victim.node.is_up = False
            yield env.timeout(30.0)  # detection delay
            tree.repair(victim)

        env.process(kill_and_repair(env))
        env.run(until=620.0)
        return [s for s in servers if s is not victim]

    survivors = run_once(run_scenario)
    final = max(s.cached_version for s in survivors)
    assert all(server.cached_version == final for server in survivors)


def test_incast_poll_synchronisation(run_once):
    """Sec 5.1's Incast argument: if all servers poll the provider at
    the same instant (as switch-back-on-push would cause), responses
    queue on the provider uplink; the self-adaptive design's
    visit-staggered switch-back keeps polls desynchronised and cheap."""

    def run_scenario(synchronised):
        env = Environment()
        streams = StreamRegistry(37)
        topology = TopologyBuilder(env, streams).build(n_servers=60, users_per_server=0)
        fabric = NetworkFabric(env, streams=streams)
        content = LiveContent(
            "game", update_times=[50.0], update_size_kb=200.0
        )
        provider = ProviderActor(env, topology.provider, fabric, content)
        servers = []
        phase = streams.stream("phase")
        for node in topology.servers:
            policy = TTLPolicy(
                60.0, stream=None if synchronised else phase
            )
            server = ServerActor(
                env, node, fabric, content, policy=policy, upstream=provider.node
            )
            servers.append(server)
        completion = {}

        def probe(env, server):
            # align every server's first poll to t=60 when synchronised
            yield env.timeout(60.0 if synchronised else 60.0 + phase.uniform(0.0, 60.0))
            started = env.now
            yield from server.policy.poll_once()
            completion[server.node.node_id] = env.now - started

        for server in servers:
            env.process(probe(env, server))
        env.run(until=400.0)
        values = sorted(completion.values())
        return values[int(0.95 * (len(values) - 1))]

    def run_both():
        return run_scenario(True), run_scenario(False)

    synchronised_p95, staggered_p95 = run_once(run_both)
    # the Incast burst queues ~60 x 200 KB on one uplink: an order of
    # magnitude worse at the tail than desynchronised polling
    assert synchronised_p95 > 3.0 * staggered_p95
