"""Benchmark-trajectory gate for BENCH_*.json files.

Reads the ``--benchmark-json`` output of ``make bench``, prints a
compact table (name, min/mean, any recorded throughput extra_info), and
enforces two soft gates meant for noisy CI runners:

- the transport fast path must not regress to worse than
  ``1 / --max-regression`` of the legacy path's throughput (default 3x:
  only a gross regression fails the job -- the >= 2x target is asserted
  at benchmark time and recorded in extra_info);
- optionally, against a ``--baseline`` JSON from an earlier run, no
  benchmark's min time may grow by more than ``--max-regression``.

Exit status 0 on pass, 1 on any gate failure, 2 on unreadable input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        print("check_bench: cannot read %s: %s" % (path, exc), file=sys.stderr)
        sys.exit(2)


def iter_benchmarks(doc):
    for bench in doc.get("benchmarks", []):
        yield bench["name"], bench


def report(path, doc):
    print("== %s ==" % path)
    for name, bench in iter_benchmarks(doc):
        stats = bench["stats"]
        line = "  %-40s min %8.2f ms  mean %8.2f ms" % (
            name, stats["min"] * 1e3, stats["mean"] * 1e3
        )
        extra = bench.get("extra_info") or {}
        if "transport_speedup" in extra:
            line += "  speedup %.2fx (%d msgs, %.0f msg/s fast)" % (
                extra["transport_speedup"],
                extra.get("messages", 0),
                extra.get("fast_msgs_per_s", 0.0),
            )
        print(line)


def check_transport(doc, max_regression):
    """The only intra-run gate: fast transport vs its legacy baseline."""
    failures = []
    for name, bench in iter_benchmarks(doc):
        extra = bench.get("extra_info") or {}
        speedup = extra.get("transport_speedup")
        if speedup is None:
            continue
        floor = 1.0 / max_regression
        if speedup < floor:
            failures.append(
                "%s: fast transport at %.2fx of legacy throughput "
                "(> %.1fx regression)" % (name, speedup, max_regression)
            )
    return failures


def check_baseline(doc, baseline, max_regression):
    base = {name: bench for name, bench in iter_benchmarks(baseline)}
    failures = []
    for name, bench in iter_benchmarks(doc):
        if name not in base:
            continue
        now = bench["stats"]["min"]
        then = base[name]["stats"]["min"]
        if then > 0 and now > max_regression * then:
            failures.append(
                "%s: %.2f ms vs baseline %.2f ms (> %.1fx slower)"
                % (name, now * 1e3, then * 1e3, max_regression)
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", nargs="+", help="BENCH_*.json files")
    parser.add_argument("--baseline", help="earlier BENCH json to compare against")
    parser.add_argument(
        "--max-regression", type=float, default=3.0,
        help="fail only when slower than this factor (default 3.0)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline) if args.baseline else None
    failures = []
    for path in args.bench_json:
        doc = load(path)
        report(path, doc)
        failures += check_transport(doc, args.max_regression)
        if baseline is not None:
            failures += check_baseline(doc, baseline, args.max_regression)

    if failures:
        for failure in failures:
            print("check_bench: FAIL %s" % failure, file=sys.stderr)
        return 1
    print("check_bench: OK (%d file(s), max regression %.1fx)"
          % (len(args.bench_json), args.max_regression))
    return 0


if __name__ == "__main__":
    sys.exit(main())
