"""Benchmark-trajectory gate for BENCH_*.json files.

Reads benchmark *trajectories* (see ``benchmarks/bench_history.py``;
the legacy single pytest-benchmark snapshot is still accepted), prints a
compact table for the latest entry (name, min/mean, any recorded
throughput extra_info), and enforces three soft gates meant for noisy
CI runners:

- the transport fast path in the latest entry must not regress to worse
  than ``1 / --max-regression`` of the legacy path's throughput
  (default 3x: only a gross regression fails the job -- the >= 2x
  target is asserted at benchmark time and recorded in extra_info);
- against the *trailing median*: each benchmark's latest min time may
  not exceed ``--max-regression`` times the median min over the earlier
  entries of the trajectory (single-entry trajectories skip this gate
  -- there is no history yet);
- optionally, against a ``--baseline`` JSON from an earlier run
  (trajectory or legacy snapshot; its latest entry is used).

A trajectory with no recorded entries yet (a fresh checkout before the
first ``make bench``) is skipped with a warning rather than failing:
the gate compares runs, and there is nothing to compare yet.

Exit status 0 on pass, 1 on any gate failure, 2 on unreadable input.
"""

import argparse
import sys

from bench_history import load_trajectory


def load(path):
    try:
        return load_trajectory(path)
    except ValueError as exc:
        print("check_bench: %s" % exc, file=sys.stderr)
        sys.exit(2)


def latest_entry(trajectory, path):
    """Latest recorded entry, or ``None`` (with a warning) when the
    trajectory is still empty -- first runs have nothing to gate."""
    history = trajectory["history"]
    if not history:
        print(
            "check_bench: WARNING %s has no recorded entries yet; skipping"
            % path,
            file=sys.stderr,
        )
        return None
    return history[-1]


def iter_benchmarks(entry):
    for bench in entry.get("benchmarks", []):
        yield bench["name"], bench


def report(path, trajectory):
    entry = trajectory["history"][-1]
    print(
        "== %s (%d entr%s; latest%s) =="
        % (
            path,
            len(trajectory["history"]),
            "y" if len(trajectory["history"]) == 1 else "ies",
            " " + entry["recorded"] if entry.get("recorded") else "",
        )
    )
    for name, bench in iter_benchmarks(entry):
        stats = bench["stats"]
        line = "  %-40s min %8.2f ms  mean %8.2f ms" % (
            name, stats["min"] * 1e3, stats["mean"] * 1e3
        )
        extra = bench.get("extra_info") or {}
        if "transport_speedup" in extra:
            line += "  speedup %.2fx (%d msgs, %.0f msg/s fast)" % (
                extra["transport_speedup"],
                extra.get("messages", 0),
                extra.get("fast_msgs_per_s", 0.0),
            )
        print(line)


def check_transport(entry, max_regression):
    """Intra-entry gate: fast transport vs its legacy baseline."""
    failures = []
    for name, bench in iter_benchmarks(entry):
        extra = bench.get("extra_info") or {}
        speedup = extra.get("transport_speedup")
        if speedup is None:
            continue
        floor = 1.0 / max_regression
        if speedup < floor:
            failures.append(
                "%s: fast transport at %.2fx of legacy throughput "
                "(> %.1fx regression)" % (name, speedup, max_regression)
            )
    return failures


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


def check_trailing_median(trajectory, max_regression):
    """Trajectory gate: latest min vs the median min of earlier entries.

    The median -- not the previous entry -- so one anomalously fast or
    slow run does not poison the reference, and not the all-time best so
    a machine change re-normalises within a few runs.
    """
    history = trajectory["history"]
    if len(history) < 2:
        return []
    latest = history[-1]
    failures = []
    for name, bench in iter_benchmarks(latest):
        earlier = [
            b["stats"]["min"]
            for entry in history[:-1]
            for n, b in iter_benchmarks(entry)
            if n == name and b["stats"].get("min", 0) > 0
        ]
        if not earlier:
            continue
        reference = _median(earlier)
        now = bench["stats"]["min"]
        if now > max_regression * reference:
            failures.append(
                "%s: %.2f ms vs trailing median %.2f ms over %d run(s) "
                "(> %.1fx slower)"
                % (name, now * 1e3, reference * 1e3, len(earlier), max_regression)
            )
    return failures


def check_baseline(entry, baseline_entry, max_regression):
    base = {name: bench for name, bench in iter_benchmarks(baseline_entry)}
    failures = []
    for name, bench in iter_benchmarks(entry):
        if name not in base:
            continue
        now = bench["stats"]["min"]
        then = base[name]["stats"]["min"]
        if then > 0 and now > max_regression * then:
            failures.append(
                "%s: %.2f ms vs baseline %.2f ms (> %.1fx slower)"
                % (name, now * 1e3, then * 1e3, max_regression)
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", nargs="+", help="BENCH_*.json trajectories")
    parser.add_argument("--baseline", help="earlier BENCH json to compare against")
    parser.add_argument(
        "--max-regression", type=float, default=3.0,
        help="fail only when slower than this factor (default 3.0)",
    )
    args = parser.parse_args(argv)

    baseline_entry = None
    if args.baseline:
        baseline_entry = latest_entry(load(args.baseline), args.baseline)
    failures = []
    checked = 0
    for path in args.bench_json:
        trajectory = load(path)
        entry = latest_entry(trajectory, path)
        if entry is None:
            continue
        checked += 1
        report(path, trajectory)
        failures += check_transport(entry, args.max_regression)
        failures += check_trailing_median(trajectory, args.max_regression)
        if baseline_entry is not None:
            failures += check_baseline(entry, baseline_entry, args.max_regression)

    if failures:
        for failure in failures:
            print("check_bench: FAIL %s" % failure, file=sys.stderr)
        return 1
    print("check_bench: OK (%d of %d file(s) gated, max regression %.1fx)"
          % (checked, len(args.bench_json), args.max_regression))
    return 0


if __name__ == "__main__":
    sys.exit(main())
