"""Benchmarks regenerating every Section 3 figure (Figs. 3-12).

Each benchmark times the analysis it regenerates and asserts the
paper's qualitative finding for that figure.
"""

import numpy as np

from repro.experiments.section3 import (
    fig10_absence,
    fig11_static_tree,
    fig12_dynamic_tree,
    fig3_inconsistency_cdf,
    fig4_user_perspective,
    fig5_inner_cluster,
    fig6_ttl_inference,
    fig7_provider_inconsistency,
    fig8_distance,
    fig9_isp,
)


def test_fig3_request_inconsistency_cdf(run_once, s3ctx):
    result = run_once(fig3_inconsistency_cdf, s3ctx)
    # Paper: 10.1% < 10 s, 20.3% > 50 s, mean ~40 s.
    assert 0.05 < result.frac_below_10s < 0.20
    assert 0.08 < result.frac_above_50s < 0.30
    assert 28.0 < result.mean_s < 42.0


def test_fig4_user_perspective(run_once, s3ctx):
    result = run_once(fig4_user_perspective, s3ctx, intervals=(10.0, 30.0, 60.0))
    # (a) most users see 13-17% of visits redirected.
    assert 0.05 < result.redirect_fraction_summary.median < 0.30
    # (b) on average ~11% of servers are inconsistent at any time.
    mean_stale = float(np.mean(result.daily_inconsistent_server_fractions))
    assert 0.03 < mean_stale < 0.35
    # (d) continuous inconsistency rarely outlives two polls.
    assert result.frac_incons_at_most_2_polls > 0.55
    # (e) 95th-pct continuous inconsistency grows with the poll period.
    assert result.per_interval[60.0].p95 > result.per_interval[10.0].p95


def test_fig5_inner_cluster_cdf(run_once, s3ctx):
    result = run_once(fig5_inner_cluster, s3ctx, min_cluster_size=8)
    # Paper: CDF approximately linear (uniform) on [0, TTL].  With few
    # servers per cluster the intra-cluster alpha is biased late, which
    # shifts episodes short; the bias shrinks as clusters grow, so we
    # assert closeness at the largest clusters plus the convergence
    # trend toward uniformity.
    small_clusters = fig5_inner_cluster(s3ctx, min_cluster_size=3)
    assert result.uniform_rmse_on_ttl < 0.25
    assert result.uniform_rmse_on_ttl < small_clusters.uniform_rmse_on_ttl
    assert result.n > 1000


def test_fig6_ttl_inference(run_once, s3ctx):
    result = run_once(fig6_ttl_inference, s3ctx)
    # Paper: recursive refinement recovers TTL = 60 s; theory RMSE is
    # smaller at 60 s than at 80 s (0.0462 vs 0.0955).
    assert 54.0 <= result.inference.ttl_s <= 68.0
    assert result.rmse_at_60 < result.rmse_at_80


def test_fig7_provider_inconsistency(run_once, s3ctx):
    result = run_once(fig7_provider_inconsistency, s3ctx)
    # Paper: 90.2% < 10 s, mean 3.43 s -- providers are near-fresh.
    assert result.frac_below_10s > 0.80
    assert result.mean_s < 8.0


def test_fig8_distance_correlation(run_once, s3ctx):
    result = run_once(fig8_distance, s3ctx)
    # Paper: r = 0.11 -- propagation distance has little effect.
    assert abs(result.pearson_r) < 0.45
    assert all(0.0 < ratio <= 1.0 for ratio in result.band_mean_ratios)


def test_fig9_inter_isp_increment(run_once, s3ctx):
    result = run_once(fig9_isp, s3ctx)
    # Paper: inter-ISP measurement exceeds intra by [3.69, 23.2] s.
    assert float(np.mean(result.increments)) > 0.0
    assert result.max_increment_s > 3.0
    assert result.max_increment_s < 40.0


def test_fig10_bandwidth_and_absence(run_once, s3ctx):
    result = run_once(fig10_absence, s3ctx)
    # Paper Fig 10a: responses within [0.5, 2.1] s, ~90% under 1.5 s.
    assert result.frac_responses_below_1_5s > 0.80
    assert result.response_time_summary.p95 <= 2.2
    # Paper Fig 10b: most absences below 50 s.
    assert result.frac_absences_below_50s > 0.7
    # Paper Fig 10c: absences raise inconsistency above the baseline.
    baseline = result.impact_by_absence_bin[0.0]
    affected = [v for k, v in result.impact_by_absence_bin.items() if k > 0]
    assert affected and max(affected) > baseline


def test_fig11_no_static_tree(run_once, s3ctx):
    result = run_once(fig11_static_tree, s3ctx)
    # Paper: server ranks churn wildly -- no stable hierarchy.
    assert result.mean_rank_churn > 0.25
    # Per-cluster day means fluctuate (max noticeably above min).
    spreads = [mx - mn for mn, mx in result.cluster_spreads.values()]
    assert float(np.mean(spreads)) > 1.0


def test_fig12_no_dynamic_tree(run_once, s3ctx):
    result = run_once(fig12_dynamic_tree, s3ctx)
    # Paper: 76.7% / 86.9% of servers have max inconsistency < TTL,
    # contradicting any multicast tree.
    assert min(result.daily_below_ttl_fractions) > 0.55
    assert not result.evidence.tree_likely
