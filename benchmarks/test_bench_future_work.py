"""Benchmarks for the Section 6 future-work system we built out:
the generic dynamic method and the method advisor.

The claim to check: a replica that *switches* methods based on measured
visit/update rates should track the best static method in each phase of
a phase-shifting workload -- fresher than static TTL during hot phases,
cheaper than static Push across silences.
"""

from repro.cdn import EndUserActor, FixedSelector, LiveContent, ProviderActor, ServerActor
from repro.consistency import PushPolicy, TTLPolicy, UnicastInfrastructure
from repro.core import DynamicPolicy, MethodAdvisor, WorkloadProfile
from repro.metrics.consistency import mean_update_lag
from repro.network import NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry
from repro.trace.workload import BurstSilenceWorkload


def run_phased(policy_factory, wire, seed=23, n_servers=20, horizon=4000.0):
    """Bursty updates + silences, two users per server."""
    env = Environment()
    streams = StreamRegistry(seed)
    topology = TopologyBuilder(env, streams).build(n_servers=n_servers, users_per_server=2)
    fabric = NetworkFabric(env, streams=streams)
    workload = BurstSilenceWorkload(
        n_bursts=6, updates_per_burst=20, burst_gap_mean_s=4.0,
        silence_mean_s=500.0, start_s=60.0,
    )
    content = LiveContent(
        "object", update_times=workload.generate(streams.stream("updates"))
    )
    provider = ProviderActor(env, topology.provider, fabric, content)
    servers = [
        ServerActor(env, node, fabric, content, policy=policy_factory(streams))
        for node in topology.servers
    ]
    UnicastInfrastructure().wire(provider, servers)
    wire(provider)
    users = []
    start = streams.stream("user.start")
    for index, server in enumerate(servers):
        for user_node in topology.users[index]:
            users.append(
                EndUserActor(
                    env, user_node, fabric, content, FixedSelector(server.node),
                    user_ttl_s=10.0, start_offset_s=start.uniform(0.0, 50.0),
                )
            )
    for server in servers:
        server.start()
    for user in users:
        user.start()
    env.run(until=horizon)
    lags = [
        mean_update_lag(content, s.apply_log(), censor_at=horizon) for s in servers
    ]
    return {
        "lag": sum(lags) / len(lags),
        "messages": fabric.ledger.response_message_count()
        + fabric.ledger.light_message_count(),
        "cost": fabric.ledger.consistency_cost_km_kb(),
    }


def test_dynamic_tracks_best_static(run_once):
    ttl = 20.0

    def run_all():
        return {
            "push": run_phased(lambda st: PushPolicy(), lambda p: p.use_push()),
            "ttl": run_phased(
                lambda st: TTLPolicy(ttl, stream=st.stream("phase")), lambda p: None
            ),
            "dynamic": run_phased(
                lambda st: DynamicPolicy(
                    ttl, staleness_tolerance_s=2.0, stream=st.stream("phase"),
                    decision_interval_s=60.0,
                ),
                lambda p: p.use_dynamic(),
            ),
        }

    results = run_once(run_all)
    # fresher than static TTL...
    assert results["dynamic"]["lag"] < 0.5 * results["ttl"]["lag"]
    # ...while costing far less than TTL's always-on polling across the
    # long silences (and in the same ballpark as pure Push).
    assert results["dynamic"]["messages"] < 0.5 * results["ttl"]["messages"]
    assert results["dynamic"]["messages"] < 2.0 * results["push"]["messages"]


def test_advisor_agrees_with_simulation(run_once):
    """The advisor's cost model must rank methods the same way the
    simulator does on a matching steady workload."""

    ttl = 20.0

    def run_pair():
        update_times = [60.0 + 30.0 * i for i in range(60)]

        def run(policy_factory, wire):
            env = Environment()
            streams = StreamRegistry(29)
            topology = TopologyBuilder(env, streams).build(n_servers=15, users_per_server=1)
            fabric = NetworkFabric(env, streams=streams)
            content = LiveContent("steady", update_times=update_times)
            provider = ProviderActor(env, topology.provider, fabric, content)
            servers = [
                ServerActor(env, node, fabric, content, policy=policy_factory(streams))
                for node in topology.servers
            ]
            UnicastInfrastructure().wire(provider, servers)
            wire(provider)
            for server in servers:
                server.start()
            env.run(until=2000.0)
            return (
                fabric.ledger.response_message_count()
                + fabric.ledger.light_message_count()
            )

        push_msgs = run(lambda st: PushPolicy(), lambda p: p.use_push())
        ttl_msgs = run(
            lambda st: TTLPolicy(ttl, stream=st.stream("phase")), lambda p: None
        )
        return push_msgs, ttl_msgs

    push_msgs, ttl_msgs = run_once(run_pair)

    # advisor's model for the same numbers: 2 msgs/poll vs 1 msg/update
    profile = WorkloadProfile(
        update_rate_per_s=1.0 / 30.0, visit_rate_per_s=0.0, n_servers=15
    )
    advisor = MethodAdvisor(min_ttl_s=ttl)
    model_push = advisor.expected_messages_per_hour(profile, "push")
    model_ttl = advisor.expected_messages_per_hour(profile, "ttl", ttl)
    # the model and the simulator must agree on which is heavier
    assert (model_push > model_ttl) == (push_msgs > ttl_msgs)
