"""Benchmarks regenerating every Section 4 figure (Figs. 14-20)."""

from repro.experiments.section4 import (
    fig14_unicast_inconsistency,
    fig15_multicast_inconsistency,
    fig16_traffic_cost,
    fig17_cost_vs_ttl,
    fig18_invalidation_user_ttl,
    fig19_packet_size,
    fig20_network_size,
)


def test_fig14_unicast_inconsistency(run_once, s4cfg):
    result = run_once(fig14_unicast_inconsistency, s4cfg)
    # Paper: server inconsistency orders Push < Invalidation < TTL, TTL
    # mean ~ TTL/2; user-side Push ~ Invalidation < TTL.
    assert result.server_lag_ordering() == ["push", "invalidation", "ttl"]
    ttl_lag = result.mean_server_lag("ttl")
    assert 0.35 * s4cfg.server_ttl_s < ttl_lag < 0.75 * s4cfg.server_ttl_s
    assert result.mean_user_lag("push") < result.mean_user_lag("ttl")
    assert result.mean_user_lag("invalidation") < result.mean_user_lag("ttl")
    # users poll every 10 s, so even Push users lag by ~user_ttl/2
    assert result.mean_user_lag("push") > 0.25 * s4cfg.user_ttl_s


def test_fig15_multicast_inconsistency(run_once, s4cfg):
    result = run_once(fig15_multicast_inconsistency, s4cfg)
    # Paper: same ordering as unicast, TTL depth-amplified (layer m sees
    # ~m times the layer-1 inconsistency).
    assert result.server_lag_ordering() == ["push", "invalidation", "ttl"]
    unicast = fig14_unicast_inconsistency(s4cfg)
    assert result.mean_server_lag("ttl") > 2.0 * unicast.mean_server_lag("ttl")
    # Push stays fast even through the tree.
    assert result.mean_server_lag("push") < 2.0


def test_fig16_traffic_cost(run_once, s4cfg):
    result = run_once(fig16_traffic_cost, s4cfg)
    # Paper: the proximity-aware multicast tree saves traffic for every
    # method, and cost orders Push < Invalidation < TTL.
    for method in ("push", "invalidation", "ttl"):
        assert result.multicast_saving(method) > 0
        assert (
            result.cost(method, "multicast") < 0.6 * result.cost(method, "unicast")
        )
    for infrastructure in ("unicast", "multicast"):
        assert (
            result.cost("push", infrastructure)
            < result.cost("invalidation", infrastructure)
            < result.cost("ttl", infrastructure)
        )


def test_fig17_cost_vs_ttl(run_once, sweep_cfg):
    result = run_once(fig17_cost_vs_ttl, sweep_cfg, ttls_s=(10.0, 30.0, 60.0))
    # Paper: consistency-maintenance cost falls as the TTL grows, on
    # both infrastructures.
    for infrastructure in ("unicast", "multicast"):
        costs = result[infrastructure]
        assert costs[10.0] > costs[30.0] > costs[60.0]


def test_fig18_invalidation_user_ttl(run_once, sweep_cfg):
    result = run_once(
        fig18_invalidation_user_ttl, sweep_cfg, user_ttls_s=(10.0, 60.0, 120.0)
    )
    # Paper: server inconsistency grows and traffic cost falls as the
    # end-user TTL grows, on both infrastructures.
    for infrastructure in ("unicast", "multicast"):
        points = result[infrastructure]
        lags = [point.server_lag.median for point in points]
        costs = [point.cost_km_kb for point in points]
        assert lags[0] < lags[-1]
        assert costs[0] > costs[-1]


def test_fig19_packet_size(run_once, sweep_cfg):
    result = run_once(fig19_packet_size, sweep_cfg, sizes_kb=(1.0, 500.0))
    # Paper: inconsistency grows with packet size; growth rate orders
    # Push > Invalidation > TTL; unicast grows faster than multicast
    # for Push (fan-out N vs fan-out 2).
    def growth(infra, method):
        per = result[infra][method]
        return per[500.0] - per[1.0]

    assert growth("unicast", "push") > 0.5
    assert growth("unicast", "push") > growth("unicast", "invalidation")
    assert growth("unicast", "push") > growth("unicast", "ttl")
    assert growth("unicast", "push") > growth("multicast", "push")


def test_fig20_network_size(run_once, sweep_cfg):
    n_small = sweep_cfg.n_servers
    sizes = (n_small, 3 * n_small, 5 * n_small)
    result = run_once(fig20_network_size, sweep_cfg, n_servers=sizes)
    # Paper (unicast): TTL stays flat; Push grows with N.
    push_uni = result["unicast"]["push"]
    ttl_uni = result["unicast"]["ttl"]
    assert push_uni[sizes[-1]] > 2.0 * push_uni[sizes[0]]
    assert ttl_uni[sizes[-1]] < 1.3 * ttl_uni[sizes[0]]
    # Paper (multicast): TTL grows fastest -- tree depth amplification.
    ttl_multi = result["multicast"]["ttl"]
    assert ttl_multi[sizes[-1]] > 1.5 * ttl_multi[sizes[0]]
    growth_ttl = ttl_multi[sizes[-1]] - ttl_multi[sizes[0]]
    growth_push = result["multicast"]["push"][sizes[-1]] - result["multicast"]["push"][sizes[0]]
    assert growth_ttl > growth_push
