"""Benchmarks for the parallel experiment runner.

Records serial-vs-parallel wall-clock for a fixed 8-deployment sweep and
checks the runner's two hard guarantees: parallel results are
bit-identical to serial, and a second registry-backed invocation
rebuilds zero deployments.

The speedup assertion only fires on hosts with enough CPUs -- on a
single-core box a process pool cannot beat serial execution, and the
numbers are recorded for inspection either way.
"""

import multiprocessing
import os
import time

import pytest

from repro.runner import Runner, RunSpec


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return multiprocessing.cpu_count()


@pytest.fixture(scope="module")
def sweep_specs():
    """The acceptance sweep: 8 deployments, 2 methods x 2 infras x 2 TTLs."""
    from repro.experiments.config import ci_scale

    config = ci_scale(users_per_server=2)
    return [
        RunSpec(
            config=config.with_overrides(server_ttl_s=ttl),
            method=method,
            infrastructure=infrastructure,
        )
        for method in ("push", "ttl")
        for infrastructure in ("unicast", "multicast")
        for ttl in (10.0, 20.0)
    ]


def test_serial_vs_parallel_wall_clock(benchmark, sweep_specs):
    serial_runner = Runner(workers=1, registry=False)
    started = time.perf_counter()
    serial = serial_runner.run(sweep_specs)
    serial_s = time.perf_counter() - started

    parallel_runner = Runner(workers=4, registry=False)
    started = time.perf_counter()
    parallel = parallel_runner.run(sweep_specs)
    parallel_s = time.perf_counter() - started

    # Record the parallel run (now warm) as the benchmark number and the
    # comparison in extra_info for the JSON output.
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["speedup"] = round(serial_s / max(parallel_s, 1e-9), 2)
    benchmark.extra_info["cpus"] = _usable_cpus()
    benchmark.pedantic(
        Runner(workers=4, registry=False).run,
        args=(sweep_specs,),
        rounds=1,
        iterations=1,
    )

    # Hard guarantee on any host: bit-identical results.
    for left, right in zip(serial.metrics, parallel.metrics):
        assert left.to_dict() == right.to_dict()

    # The >= 2x speedup claim needs real parallel hardware.
    if _usable_cpus() >= 4:
        assert serial_s > 2.0 * parallel_s


def test_registry_second_run_rebuilds_nothing(benchmark, sweep_specs, tmp_path):
    path = str(tmp_path / "runs.json")
    first = Runner(workers=1, registry=path).run(sweep_specs)
    assert first.stats.executed == len(sweep_specs)

    second = benchmark.pedantic(
        Runner(workers=1, registry=path).run,
        args=(sweep_specs,),
        rounds=1,
        iterations=1,
    )
    assert second.stats.executed == 0
    assert second.stats.cache_hits == len(sweep_specs)
    for fresh, cached in zip(first.metrics, second.metrics):
        assert fresh.to_dict() == cached.to_dict()
