"""Scale-smoke gate: wall-clock and peak-RSS budgets for planet runs.

Reads the harness-telemetry artifact a registry-backed ``repro sweep``
appends next to its run registry (``<registry>.telemetry.json``; see
``repro.obs.telemetry``), picks one run entry (latest by default), and
asserts:

- ``wall_time_s`` stays under ``--max-wall-s``;
- the rollup's ``peak_rss_kb`` (max over the sweep's main process and
  every worker) stays under ``--max-rss-kb``.

Budgets are deliberately loose -- this is a "planet scale still fits
CI" canary, not a performance benchmark (``make bench-user-plane``
owns throughput).  Either budget can be overridden via
``REPRO_SCALE_MAX_WALL_S`` / ``REPRO_SCALE_MAX_RSS_KB`` so slow CI
runners can relax the gate without editing the Makefile.

Exit status 0 on pass, 1 on a blown budget, 2 on unreadable input.
"""

import argparse
import json
import os
import sys


def _budget(env_name, cli_value):
    raw = os.environ.get(env_name, "")
    if raw:
        try:
            return float(raw)
        except ValueError:
            print(
                "check_scale: ignoring non-numeric %s=%r" % (env_name, raw),
                file=sys.stderr,
            )
    return cli_value


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", help="telemetry artifact JSON path")
    parser.add_argument(
        "--run", type=int, default=-1,
        help="which run entry to gate (default: -1 = latest)",
    )
    parser.add_argument(
        "--max-wall-s", type=float, required=True,
        help="wall-clock budget for the gated sweep, seconds",
    )
    parser.add_argument(
        "--max-rss-kb", type=float, required=True,
        help="peak-RSS budget across the sweep's processes, KiB",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.artifact) as handle:
            artifact = json.load(handle)
        runs = artifact["runs"]
        entry = runs[args.run]
    except (OSError, ValueError, KeyError, IndexError, TypeError) as exc:
        print(
            "check_scale: cannot read run %d from %s: %s"
            % (args.run, args.artifact, exc),
            file=sys.stderr,
        )
        return 2

    wall_s = float(entry.get("wall_time_s", 0.0))
    rollup = entry.get("rollup") or {}
    rss_kb = float(rollup.get("peak_rss_kb", 0))
    max_wall_s = _budget("REPRO_SCALE_MAX_WALL_S", args.max_wall_s)
    max_rss_kb = _budget("REPRO_SCALE_MAX_RSS_KB", args.max_rss_kb)

    print(
        "check_scale: %d spec(s), %d executed, %d worker(s): "
        "wall %.1f s (budget %.0f s), peak RSS %.0f MiB (budget %.0f MiB)"
        % (
            entry.get("n_specs", 0),
            entry.get("executed", 0),
            entry.get("workers", 0),
            wall_s,
            max_wall_s,
            rss_kb / 1024.0,
            max_rss_kb / 1024.0,
        )
    )
    failed = False
    if wall_s > max_wall_s:
        print(
            "check_scale: FAIL wall %.1f s > budget %.0f s" % (wall_s, max_wall_s),
            file=sys.stderr,
        )
        failed = True
    if rss_kb > max_rss_kb:
        print(
            "check_scale: FAIL peak RSS %.0f KiB > budget %.0f KiB"
            % (rss_kb, max_rss_kb),
            file=sys.stderr,
        )
        failed = True
    if rss_kb <= 0:
        print(
            "check_scale: WARNING no peak_rss_kb in rollup "
            "(telemetry disabled?); RSS budget not enforced",
            file=sys.stderr,
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
