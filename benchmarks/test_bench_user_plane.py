"""User-plane throughput: the struct-of-arrays cohort vs the actor path.

Three arms at one matched config (planet cadence, 200 servers x 25
users = 5k users):

- ``cohort``: the default planet path -- fast kernel, ``UserCohort``,
  aggregate user metrics;
- ``actors``: fast kernel with ``REPRO_LEGACY_USERS=1`` (per-user
  ``EndUserActor`` objects), aggregate metrics -- isolates the user
  plane's share, since kernel and metrics layout match the cohort arm;
- ``legacy``: the full pre-cohort path -- legacy kernel, actors,
  per-user metrics.

The recorded ``users_per_s`` numbers feed the BENCH_user_plane.json
trajectory.  At this (deliberately bench-sized) config the shared
network fabric dominates, so the honest single-process speedups are
moderate; they grow with population (allocation + GC pressure is what
the cohort removes) and with sharding across real cores -- see
docs/scalability.md for the planet-scale numbers.  Floors are
env-tunable so noisy CI runners gate only on gross regressions.
"""

import os
import time

import repro.network.message as message_mod
from repro.experiments.config import planet_scale
from repro.experiments.testbed import _PLACEMENT_CACHE, build_deployment

N_SERVERS = 200
USERS_PER_SERVER = 25
N_USERS = N_SERVERS * USERS_PER_SERVER


def _user_plane_run(arm):
    """Build and run one TTL/unicast deployment under the chosen arm.

    Both flags are read at construction time, so they are pinned around
    ``build_deployment`` only.  Returns ``(metrics_dict, sim_seconds)``
    with the timing covering only the simulation phase (topology build
    cost is identical across arms and benchmarked elsewhere).
    """
    message_mod._SEQ = 0
    _PLACEMENT_CACHE.clear()
    legacy_users = arm in ("actors", "legacy")
    legacy_kernel = arm == "legacy"
    metrics_mode = "per-user" if arm == "legacy" else "aggregate"
    prior = {
        name: os.environ.get(name)
        for name in ("REPRO_LEGACY_USERS", "REPRO_LEGACY_KERNEL")
    }
    os.environ["REPRO_LEGACY_USERS"] = "1" if legacy_users else "0"
    os.environ["REPRO_LEGACY_KERNEL"] = "1" if legacy_kernel else "0"
    try:
        deployment = build_deployment(
            planet_scale(
                n_servers=N_SERVERS,
                users_per_server=USERS_PER_SERVER,
                user_metrics=metrics_mode,
            ),
            "ttl",
        )
    finally:
        for name, value in prior.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    assert (deployment.cohort is not None) == (arm == "cohort")
    started = time.perf_counter()
    metrics = deployment.run().to_dict()
    return metrics, time.perf_counter() - started


def test_user_plane_throughput(benchmark):
    """Cohort must beat the actor arms; users_per_s goes on record.

    Also re-checks metric equality between the cohort and the
    matched-layout actor arm in the benchmark regime (the differential
    suite in ``tests/test_user_plane_equivalence.py`` owns the full
    method x infrastructure x seed grid).
    """
    cohort_metrics, cohort_s = benchmark(_user_plane_run, "cohort")

    arm_s = {}
    arm_metrics = {}
    for arm in ("actors", "legacy"):
        times = []
        for _ in range(2):
            metrics, elapsed = _user_plane_run(arm)
            times.append(elapsed)
        arm_s[arm] = min(times)
        arm_metrics[arm] = metrics

    cohort_ups = N_USERS / cohort_s
    actor_ups = N_USERS / arm_s["actors"]
    legacy_ups = N_USERS / arm_s["legacy"]
    speedup = cohort_ups / actor_ups
    legacy_speedup = cohort_ups / legacy_ups
    benchmark.extra_info["n_users"] = N_USERS
    benchmark.extra_info["cohort_users_per_s"] = cohort_ups
    benchmark.extra_info["actor_users_per_s"] = actor_ups
    benchmark.extra_info["legacy_users_per_s"] = legacy_ups
    benchmark.extra_info["user_plane_speedup"] = speedup
    benchmark.extra_info["user_plane_legacy_speedup"] = legacy_speedup

    expected = dict(cohort_metrics)
    actual = dict(arm_metrics["actors"])
    expected.pop("events_processed")
    actual.pop("events_processed")
    assert actual == expected

    min_speedup = float(
        os.environ.get("REPRO_BENCH_MIN_USER_PLANE_SPEEDUP", "1.2")
    )
    assert speedup >= min_speedup, (
        "cohort only %.2fx the actor user plane (need >= %.2fx)"
        % (speedup, min_speedup)
    )
    min_legacy = float(
        os.environ.get("REPRO_BENCH_MIN_USER_PLANE_LEGACY_SPEEDUP", "2.0")
    )
    assert legacy_speedup >= min_legacy, (
        "cohort only %.2fx the pre-cohort path (need >= %.2fx)"
        % (legacy_speedup, min_legacy)
    )
