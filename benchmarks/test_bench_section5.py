"""Benchmarks regenerating every Section 5 figure (Figs. 22-24)."""

from repro.experiments.section5 import (
    fig22a_update_messages,
    fig22b_provider_messages,
    fig23_network_load,
    fig24_inconsistency_observations,
)


def test_fig22a_update_messages(run_once, s5cfg):
    result = run_once(fig22a_update_messages, s5cfg, user_ttls_s=(10.0, 60.0))
    counts = {system: result.at(system, 10.0) for system in result.counts}
    # Paper ordering: Push > Invalidation > Hybrid ~ TTL > HAT > Self.
    assert counts["push"] >= counts["invalidation"]
    assert counts["invalidation"] > counts["ttl"]
    assert counts["self"] < counts["ttl"]
    assert counts["self"] <= counts["hat"]
    # Hybrid tracks TTL (same method for most servers, plus supernode
    # pushes); HAT tracks Self the same way.
    assert counts["hybrid"] < counts["invalidation"]
    assert counts["hat"] < counts["hybrid"]
    # Paper: Invalidation's counts fall as the end-user TTL grows
    # (fewer visits -> more skipped updates).
    assert result.at("invalidation", 60.0) <= result.at("invalidation", 10.0)


def test_fig22b_provider_messages(run_once, s5cfg):
    result = run_once(fig22b_provider_messages, s5cfg, server_ttls_s=(10.0, 60.0))
    # Paper: the provider's own update load is lightest for Hybrid/HAT
    # (it feeds only its tree children).
    for system in ("push", "invalidation", "ttl", "self"):
        assert result["hybrid"][60.0] < result[system][60.0]
        assert result["hat"][60.0] < result[system][60.0]
    # Paper: TTL/Self provider load grows as the server TTL shrinks.
    assert result["ttl"][10.0] > result["ttl"][60.0]
    assert result["self"][10.0] > result["self"][60.0]


def test_fig23_network_load(run_once, s5cfg):
    result = run_once(fig23_network_load, s5cfg)
    # Paper: HAT generates the lightest total network load; pull-based
    # methods pair each response with a request (light ~ update counts).
    assert result.lightest_total() == "hat"
    assert result.total_load_km("hat") < result.total_load_km("ttl")
    assert result.total_load_km("hat") < result.total_load_km("push")
    assert result.total_load_km("hat") < result.total_load_km("self")
    # Hybrid saves update load vs plain TTL through locality.
    assert result.update_load_km["hybrid"] < result.update_load_km["ttl"]


def test_fig24_inconsistency_observations(run_once, s5cfg):
    result = run_once(
        fig24_inconsistency_observations, s5cfg, user_ttls_s=(10.0, 60.0)
    )
    at10 = {system: result[system][10.0] for system in result}
    # Paper: TTL ~ Hybrid > HAT > Self > Push ~ Invalidation ~ 0.
    assert at10["push"] < 0.01
    assert at10["invalidation"] < 0.01
    assert at10["self"] < at10["ttl"]
    assert at10["hat"] <= at10["hybrid"]
    assert at10["ttl"] > 0.05
    # Paper: TTL-family curves fall as the end-user TTL grows.
    assert result["ttl"][60.0] < result["ttl"][10.0]
