"""Setup shim: enables legacy editable installs in the offline environment
(no `wheel` package is available, so PEP 660 editable installs fail)."""
from setuptools import setup

setup()
