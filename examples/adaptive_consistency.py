"""The paper's future work, built out: rate-driven method selection.

Section 6 proposes "a more generic hybrid and self-adaptive consistency
maintenance method that can change the update method ... by considering
more factors, such as varying visit frequencies and consistency
requirements from customers."  This example demonstrates the two pieces
this library adds on top of the paper:

1. :class:`~repro.core.advisor.MethodAdvisor` -- the paper's guidance
   table as an auditable cost model;
2. :class:`~repro.core.dynamic.DynamicPolicy` -- replicas that switch
   between TTL / Invalidation / Push from their own measured rates,
   shown on a workload that changes phase mid-run.

Run:  python examples/adaptive_consistency.py
"""

from collections import Counter

from repro.cdn import EndUserActor, FixedSelector, LiveContent, ProviderActor, ServerActor
from repro.consistency import UnicastInfrastructure
from repro.core import DynamicPolicy, MethodAdvisor, WorkloadProfile
from repro.network import NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry


def advisor_demo() -> None:
    print("== MethodAdvisor: the guidance table as code ==")
    advisor = MethodAdvisor(min_ttl_s=10.0)
    scenarios = [
        ("live game score, strict freshness", WorkloadProfile(0.05, 0.5, 170), 1.0),
        ("auction page, few watchers", WorkloadProfile(0.5, 0.01, 170), 1.0),
        ("news ticker, 30 s tolerance", WorkloadProfile(0.2, 0.5, 170), 30.0),
        ("social post, bursty", WorkloadProfile(0.05, 0.2, 170, silence_fraction=0.8), 30.0),
    ]
    for name, profile, tolerance in scenarios:
        rec = advisor.recommend(profile, tolerance)
        print(
            "  %-34s -> %-13s on %-9s (%.0f msg/h, ~%.1f s stale)"
            % (
                name,
                rec.method,
                rec.infrastructure,
                rec.expected_messages_per_hour,
                rec.expected_staleness_s,
            )
        )
        print("      reason: %s" % rec.reason)
    print()


def dynamic_demo() -> None:
    print("== DynamicPolicy: replicas re-deciding as the workload shifts ==")
    env = Environment()
    streams = StreamRegistry(13)
    topology = TopologyBuilder(env, streams).build(n_servers=12, users_per_server=1)
    fabric = NetworkFabric(env, streams=streams)
    # Three phases: hot burst (updates every 5 s), silence, sparse updates.
    updates = [60.0 + 5.0 * i for i in range(60)]          # hot: 60-360 s
    updates += [1500.0 + 120.0 * i for i in range(8)]      # sparse: 1500-2340 s
    content = LiveContent("shifting", update_times=updates)
    provider = ProviderActor(env, topology.provider, fabric, content)
    servers = [
        ServerActor(
            env, node, fabric, content,
            policy=DynamicPolicy(
                15.0, staleness_tolerance_s=2.0,
                stream=streams.stream("phase"), decision_interval_s=60.0,
            ),
        )
        for node in topology.servers
    ]
    UnicastInfrastructure().wire(provider, servers)
    provider.use_dynamic()
    users = [
        EndUserActor(
            env, topology.users[i][0], fabric, content,
            FixedSelector(servers[i].node), user_ttl_s=5.0,
        )
        for i in range(len(servers))
    ]
    for server in servers:
        server.start()
    for user in users:
        user.start()
    env.run(until=3000.0)

    # What mode was the fleet in at a few probe times?
    def fleet_modes(t):
        counts = Counter()
        for server in servers:
            mode = "ttl"
            for when, new_mode in server.policy.mode_history:
                if when <= t:
                    mode = new_mode
            counts[mode] += 1
        return dict(counts)

    for label, t in [("hot burst", 300.0), ("silence", 1200.0), ("sparse updates", 2800.0)]:
        print("  t=%6.0fs (%-14s): %s" % (t, label, fleet_modes(t)))
    final = max(s.cached_version for s in servers)
    print("  all replicas converged to version %d/%d" % (final, content.last_version))


if __name__ == "__main__":
    advisor_demo()
    dynamic_demo()
