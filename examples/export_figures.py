"""Export figure data as CSV files for external plotting.

Run:  python examples/export_figures.py [--out DIR] [--scale small|medium]

Writes one CSV per exportable figure (inconsistency CDFs, the TTL
deviation curve, per-server lag curves, cost/size sweeps, Section 5
message counts and stale-observation fractions) so the paper's plots
can be redrawn with any tool.
"""

import argparse
import os

from repro.experiments.figures import export_all
from repro.experiments.report import ReportScale


def micro_scale(seed: int) -> ReportScale:
    """A seconds-fast scale for smoke runs and CI."""
    from repro.experiments.config import smoke_scale
    from repro.experiments.section5 import section5_config
    from repro.trace.synthesize import SynthesisConfig

    return ReportScale(
        section3=SynthesisConfig(
            n_servers=40,
            n_days=2,
            session_length_s=3000.0,
            updates_per_day_low=12,
            updates_per_day_high=50,
        ),
        section4=smoke_scale(users_per_server=3, seed=seed),
        section5=section5_config(smoke_scale(seed=seed)),
        sweep=smoke_scale(n_updates=10, game_duration_s=300.0, seed=seed),
        n_users=16,
        label="micro",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="figure_data")
    parser.add_argument("--scale", choices=("micro", "small", "medium"), default="small")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.scale == "micro":
        scale = micro_scale(args.seed)
    elif args.scale == "small":
        scale = ReportScale.small(args.seed)
    else:
        scale = ReportScale.medium(args.seed)
    written = export_all(args.out, scale)
    print("wrote %d CSV files to %s:" % (len(written), os.path.abspath(args.out)))
    for path in written:
        print("  %s" % os.path.basename(path))


if __name__ == "__main__":
    main()
