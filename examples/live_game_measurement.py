"""Reproduce the paper's Section 3 measurement study on a synthetic crawl.

Synthesizes a multi-day crawl of live-game statistics pages across a
few hundred CDN servers (the real trace is unavailable), then runs the
paper's estimators:

- the inconsistency-length CDF (Fig. 3),
- TTL inference by recursive refinement (Fig. 6),
- the cause breakdown: provider staleness, distance, inter-ISP transit,
  absences (Figs. 7-10),
- the multicast-tree existence tests (Figs. 11-12).

Run:  python examples/live_game_measurement.py [--servers N] [--days D]
"""

import argparse

import numpy as np

from repro.metrics import Cdf
from repro.trace import (
    SynthesisConfig,
    TraceSynthesizer,
    all_inconsistencies,
    consistency_vs_distance,
    infer_ttl,
    isp_inconsistency_analysis,
    observed_absence_lengths,
    provider_inconsistencies,
    theory_rmse,
    tree_existence_analysis,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=200)
    parser.add_argument("--days", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", metavar="PATH", help="save the trace as JSON")
    args = parser.parse_args()

    config = SynthesisConfig(n_servers=args.servers, n_days=args.days)
    synthesizer = TraceSynthesizer(config, master_seed=args.seed)
    print("Synthesizing %d days x %d servers of crawl data..." % (args.days, args.servers))
    trace = synthesizer.synthesize()
    print("  %d poll records" % trace.total_polls())
    if args.save:
        trace.save(args.save)
        print("  saved to %s" % args.save)

    print()
    print("== Inconsistency of CDN-served content (Fig. 3) ==")
    lengths = all_inconsistencies(trace)
    cdf = Cdf(lengths)
    print("  episodes: %d   mean: %.1f s" % (len(cdf), lengths.mean()))
    print("  < 10 s: %.1f%%   (paper: 10.1%%)" % (100 * cdf.at(10.0)))
    print("  > 50 s: %.1f%%   (paper: 20.3%%)" % (100 * cdf.fraction_above(50.0)))

    print()
    print("== TTL inference (Fig. 6) ==")
    inference = infer_ttl(lengths)
    print("  inferred TTL: %.0f s  (planted: %.0f s, paper: 60 s)" % (
        inference.ttl_s, trace.ttl_s))
    print("  theory RMSE @60 s: %.4f   @80 s: %.4f  (paper: 0.046 vs 0.096)" % (
        theory_rmse(lengths, 60.0), theory_rmse(lengths, 80.0)))

    print()
    print("== Cause breakdown (Figs. 7-10) ==")
    provider = provider_inconsistencies(trace)
    print("  provider inconsistency: mean %.2f s, %.0f%% < 10 s (paper: 3.43 s, 90%%)" % (
        provider.mean(), 100 * float(np.mean(provider < 10.0))))
    distance = consistency_vs_distance(trace)
    print("  distance correlation r = %.3f (paper: 0.11 -- negligible)" % distance.pearson_r)
    isp = isp_inconsistency_analysis(trace, min_cluster_size=4)
    increments = [r.increment_mean_s for r in isp]
    print("  inter-ISP increment: +[%.1f, %.1f] s over %d ISP clusters (paper: +[3.7, 23.2] s)" % (
        min(increments), max(increments), len(isp)))
    absences = observed_absence_lengths(trace)
    if absences.size:
        print("  absences observed: %d, %.0f%% < 50 s (paper: 93%%)" % (
            absences.size, 100 * float(np.mean(absences < 50.0))))

    print()
    print("== Update-infrastructure deduction (Figs. 11-12) ==")
    evidence = tree_existence_analysis(trace)
    print("  " + evidence.summary())
    print("  => the CDN updates replicas by direct unicast TTL polling,")
    print("     exactly what the synthesizer planted.")


if __name__ == "__main__":
    main()
