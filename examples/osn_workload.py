"""Extension example: OSN-style burst/silence updates (TAO pattern).

Section 5 motivates the self-adaptive method with the observation that
online-social-network objects are updated in a burst right after a post
and then go quiet ([42], [43]).  This example builds that workload with
:class:`BurstSilenceWorkload` and shows why the self-adaptive switch
wins there: plain TTL keeps polling through silence, Push keeps pushing
to uninterested replicas, while the self-adaptive method pays one
invalidation per burst.

Run:  python examples/osn_workload.py
"""

from repro.cdn import EndUserActor, FixedSelector, LiveContent, ProviderActor, ServerActor
from repro.consistency import (
    InvalidationPolicy,
    PushPolicy,
    SelfAdaptivePolicy,
    TTLPolicy,
    UnicastInfrastructure,
)
from repro.network import NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry
from repro.metrics.consistency import mean_update_lag
from repro.trace.workload import BurstSilenceWorkload


def run_method(name, policy_factory, provider_wire, update_times, horizon,
               n_servers=40, seed=7):
    env = Environment()
    streams = StreamRegistry(seed)
    topology = TopologyBuilder(env, streams).build(n_servers=n_servers, users_per_server=2)
    fabric = NetworkFabric(env, streams=streams)
    content = LiveContent("osn-object", update_times=update_times)
    provider = ProviderActor(env, topology.provider, fabric, content)
    servers = [
        ServerActor(env, node, fabric, content, policy=policy_factory(streams))
        for node in topology.servers
    ]
    UnicastInfrastructure().wire(provider, servers)
    provider_wire(provider)
    start = streams.stream("user.start")
    users = []
    for index, server in enumerate(servers):
        for user_node in topology.users[index]:
            user = EndUserActor(
                env, user_node, fabric, content, FixedSelector(server.node),
                user_ttl_s=10.0, start_offset_s=start.uniform(0.0, 50.0),
            )
            users.append(user)
    for server in servers:
        server.start()
    for user in users:
        user.start()
    env.run(until=horizon)
    ledger = fabric.ledger
    lags = [
        mean_update_lag(content, server.apply_log(), censor_at=horizon)
        for server in servers
    ]
    return {
        "method": name,
        "server_lag": sum(lags) / len(lags),
        "responses": ledger.response_message_count(),
        "light": ledger.light_message_count(),
        "cost": ledger.consistency_cost_km_kb(),
    }


def main() -> None:
    workload = BurstSilenceWorkload(
        n_bursts=8, updates_per_burst=15, burst_gap_mean_s=4.0, silence_mean_s=700.0,
        start_s=60.0,
    )
    updates = workload.generate(StreamRegistry(1).stream("workload"))
    horizon = updates[-1] + 400.0
    print(
        "OSN object: %d updates in %d bursts over %.0f s (%.0f%% of the time silent)"
        % (
            len(updates),
            workload.n_bursts,
            horizon,
            100.0 * (1 - len(updates) * workload.burst_gap_mean_s / horizon),
        )
    )
    print()

    ttl = 30.0
    rows = [
        run_method(
            "push", lambda st: PushPolicy(), lambda p: p.use_push(), updates, horizon
        ),
        run_method(
            "invalidation",
            lambda st: InvalidationPolicy(),
            lambda p: p.use_invalidation(),
            updates,
            horizon,
        ),
        run_method(
            "ttl",
            lambda st: TTLPolicy(ttl, stream=st.stream("phase")),
            lambda p: None,
            updates,
            horizon,
        ),
        run_method(
            "self-adaptive",
            lambda st: SelfAdaptivePolicy(ttl, stream=st.stream("phase")),
            lambda p: p.use_self_adaptive(),
            updates,
            horizon,
        ),
    ]

    header = "%-14s %14s %12s %12s %14s" % (
        "method", "server lag (s)", "responses", "light msgs", "cost (km*KB)"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            "%-14s %14.2f %12d %12d %14.3e"
            % (row["method"], row["server_lag"], row["responses"], row["light"], row["cost"])
        )

    by_name = {row["method"]: row for row in rows}
    saved = 1.0 - by_name["self-adaptive"]["responses"] / by_name["ttl"]["responses"]
    print()
    print(
        "self-adaptive answers %.0f%% fewer poll/update responses than plain TTL"
        % (100.0 * saved)
    )
    print("while keeping server staleness bounded by the same TTL.")


if __name__ == "__main__":
    main()
