"""Section 4 style comparison: update methods x infrastructures.

Replays one live game against every {Push, Invalidation, TTL} x
{unicast, multicast-tree} combination and reports server/user freshness
plus the km*KB traffic cost -- the data behind the paper's Figs. 14-16
and its guidance table ("applications that require high consistency
... can use Push and unicast; applications that can tolerate small
periods of inconsistency but need to avoid heavy overhead can use
Invalidation or TTL").

Run:  python examples/method_comparison.py [--servers N] [--users-per-server U]
"""

import argparse

from repro.experiments import TestbedConfig, build_deployment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=60)
    parser.add_argument("--users-per-server", type=int, default=3)
    parser.add_argument("--updates", type=int, default=100)
    parser.add_argument("--duration", type=float, default=2920.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = TestbedConfig(
        n_servers=args.servers,
        users_per_server=args.users_per_server,
        n_updates=args.updates,
        game_duration_s=args.duration,
        seed=args.seed,
    )
    print(
        "Testbed: %d servers x %d users, %d updates over %.0f s, server TTL %.0f s"
        % (
            config.n_servers,
            config.users_per_server,
            config.n_updates,
            config.game_duration_s,
            config.server_ttl_s,
        )
    )
    print()
    header = "%-10s %-10s %14s %14s %16s %12s" % (
        "infra", "method", "server lag (s)", "user lag (s)", "cost (km*KB)", "msgs"
    )
    print(header)
    print("-" * len(header))
    for infrastructure in ("unicast", "multicast"):
        for method in ("push", "invalidation", "ttl"):
            metrics = build_deployment(config, method, infrastructure).run()
            print(
                "%-10s %-10s %14.2f %14.2f %16.3e %12d"
                % (
                    infrastructure,
                    method,
                    metrics.mean_server_lag,
                    metrics.mean_user_lag,
                    metrics.cost_km_kb,
                    metrics.update_messages + metrics.light_messages,
                )
            )
        print()

    print("Paper's guidance (Section 4.6):")
    print(" - Push on unicast: best consistency, worst provider scalability.")
    print(" - Invalidation: user-equivalent to Push, saves traffic when")
    print("   visits are rarer than updates.")
    print(" - TTL: weak consistency bounded by the TTL, best scalability.")
    print(" - The proximity multicast tree cuts km*KB for every method but")
    print("   multiplies TTL staleness by tree depth.")


if __name__ == "__main__":
    main()
