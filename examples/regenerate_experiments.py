"""Regenerate EXPERIMENTS.md by running every figure driver.

Run:  python examples/regenerate_experiments.py [--scale small|medium] [--out PATH]
                                                [--workers N|auto] [--registry PATH]

``medium`` (~1/3 paper scale) takes several minutes; ``small`` finishes
in about a minute.  The output is fully deterministic for a given scale
and seed -- including with ``--workers`` > 1 (the Section 4/5 sweeps
fan over a process pool) and with ``--registry`` (completed deployments
are memoized on disk and reused on the next run).
"""

import argparse
import os
import sys
import time

from repro.experiments.report import ReportScale, generate_report
from repro.runner import Runner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "medium"), default="medium")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "..", "EXPERIMENTS.md"),
    )
    parser.add_argument(
        "--workers",
        default=None,
        help='parallel workers; "auto" = one per CPU (default: $REPRO_WORKERS or 1)',
    )
    parser.add_argument(
        "--registry",
        default=None,
        metavar="PATH",
        help="run-registry JSON memoizing deployments (default: $REPRO_RUN_REGISTRY)",
    )
    args = parser.parse_args()

    scale = (
        ReportScale.small(args.seed) if args.scale == "small" else ReportScale.medium(args.seed)
    )
    runner = Runner(workers=args.workers, registry=args.registry)
    started = time.time()
    markdown = generate_report(scale, log=sys.stderr, runner=runner)
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as handle:
        handle.write(markdown)
    print("wrote %s (%.1f s, scale=%s)" % (out_path, time.time() - started, args.scale))


if __name__ == "__main__":
    main()
