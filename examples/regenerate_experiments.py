"""Regenerate EXPERIMENTS.md by running every figure driver.

Run:  python examples/regenerate_experiments.py [--scale small|medium] [--out PATH]

``medium`` (~1/3 paper scale) takes several minutes; ``small`` finishes
in about a minute.  The output is fully deterministic for a given scale
and seed.
"""

import argparse
import os
import sys
import time

from repro.experiments.report import ReportScale, generate_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "medium"), default="medium")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "..", "EXPERIMENTS.md"),
    )
    args = parser.parse_args()

    scale = (
        ReportScale.small(args.seed) if args.scale == "small" else ReportScale.medium(args.seed)
    )
    started = time.time()
    markdown = generate_report(scale, log=sys.stderr)
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as handle:
        handle.write(markdown)
    print("wrote %s (%.1f s, scale=%s)" % (out_path, time.time() - started, args.scale))


if __name__ == "__main__":
    main()
