"""Fleet staleness over time: watch the play/break phase structure.

Replays a live game (bursty updates during play, silent breaks) and
renders an ASCII timeline of the fleet's mean staleness under TTL
polling vs HAT.  Staleness saw-tooths during play (bounded by the TTL)
and collapses to zero in the breaks; HAT's supernode freshness keeps
the envelope lower.

Run:  python examples/staleness_timeline.py
"""

from repro.experiments import build_system, ci_scale
from repro.experiments.section5 import section5_config
from repro.metrics import fleet_staleness_series
from repro.trace.workload import LiveGameWorkload

BARS = " .:-=+*#%@"


def sparkline(values, width=72, cap=None):
    if not values:
        return ""
    step = max(1, len(values) // width)
    sampled = [max(values[i : i + step]) for i in range(0, len(values), step)]
    top = cap if cap is not None else (max(sampled) or 1.0)
    chars = []
    for value in sampled:
        level = min(len(BARS) - 1, int(round(value / top * (len(BARS) - 1))))
        chars.append(BARS[level])
    return "".join(chars)


def main() -> None:
    config = section5_config(ci_scale(seed=3, n_updates=80, game_duration_s=2400.0))
    horizon = config.run_horizon_s

    series = {}
    for system in ("ttl", "hat", "push"):
        deployment = build_system(config, system)
        deployment.run()
        logs = [server.apply_log() for server in deployment.servers]
        series[system] = fleet_staleness_series(
            deployment.content, logs, horizon_s=horizon, step_s=10.0
        )

    workload = LiveGameWorkload(n_updates=config.n_updates, duration_s=config.game_duration_s)
    phase_row = []
    for t in series["ttl"].times:
        in_play = not workload.is_break(max(0.0, t - config.update_start_s))
        within = config.update_start_s <= t <= config.update_start_s + config.game_duration_s
        phase_row.append("~" if (in_play and within) else " ")
    step = max(1, len(phase_row) // 72)
    phases = "".join(
        "~" if "~" in "".join(phase_row[i : i + step]) else " "
        for i in range(0, len(phase_row), step)
    )

    cap = max(series["ttl"].values) or 1.0
    print("fleet mean staleness over one game (left = t0, right = t%.0fs)" % horizon)
    print()
    print("  play: [%s]" % phases)
    for system in ("ttl", "hat", "push"):
        s = series[system]
        print("  %-5s [%s] mean=%5.1fs max=%5.1fs >30s for %4.1f%% of the run" % (
            system, sparkline(list(s.values), cap=cap), s.mean(), s.max(),
            100.0 * s.over(30.0),
        ))
    print()
    print("Staleness saw-tooths while the game is live (bounded by the")
    print("60 s TTL), vanishes in the breaks, and HAT's push-fed supernodes")
    print("keep the envelope below plain TTL; Push stays near zero always.")


if __name__ == "__main__":
    main()
