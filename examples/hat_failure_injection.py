"""Failure injection: how each dissemination design degrades.

The paper's Section 1 argument against multicast trees is that "node
failures break the structure connectivity and lead to unsuccessful
update propagation".  This example kills a fraction of the servers
mid-game under three designs and reports how stale the survivors get:

- unicast TTL (the measured CDN's design -- failures only hurt the
  failed node);
- Push over an *unrepaired* binary multicast tree (subtrees starve);
- the same tree with repair (orphans re-attach, at maintenance cost).

Run:  python examples/hat_failure_injection.py
"""

from repro.cdn import LiveContent, ProviderActor, ServerActor, schedule_absence
from repro.consistency import MulticastTreeInfrastructure, PushPolicy, TTLPolicy, UnicastInfrastructure
from repro.metrics.consistency import mean_update_lag
from repro.network import MessageKind, NetworkFabric, TopologyBuilder
from repro.sim import Environment, StreamRegistry


N_SERVERS = 40
KILL_FRACTION = 0.15
KILL_AT = 300.0
HORIZON = 1500.0


def build(seed=5):
    env = Environment()
    streams = StreamRegistry(seed)
    topology = TopologyBuilder(env, streams).build(n_servers=N_SERVERS, users_per_server=0)
    fabric = NetworkFabric(env, streams=streams)
    content = LiveContent("game", update_times=[60.0 + 20.0 * i for i in range(60)])
    provider = ProviderActor(env, topology.provider, fabric, content)
    return env, streams, topology, fabric, content, provider


def pick_victims(streams, servers):
    stream = streams.stream("failures")
    count = max(1, int(KILL_FRACTION * len(servers)))
    return stream.sample(servers, count)


def survivors_staleness(content, servers, victims, horizon):
    victims = set(victims)
    survivors = [s for s in servers if s not in victims]
    lags = [
        mean_update_lag(content, s.apply_log(), window=(KILL_AT, horizon), censor_at=horizon)
        for s in survivors
    ]
    return sum(lags) / len(lags)


def scenario_unicast_ttl():
    env, streams, topology, fabric, content, provider = build()
    servers = [
        ServerActor(env, node, fabric, content,
                    policy=TTLPolicy(30.0, stream=streams.stream("phase")))
        for node in topology.servers
    ]
    UnicastInfrastructure().wire(provider, servers)
    victims = pick_victims(streams, servers)
    for victim in victims:
        schedule_absence(env, victim.node, start=KILL_AT, duration=HORIZON)
    for server in servers:
        server.start()
    env.run(until=HORIZON)
    return survivors_staleness(content, servers, victims, HORIZON), 0


def scenario_tree(repair):
    env, streams, topology, fabric, content, provider = build()
    servers = [
        ServerActor(env, node, fabric, content, policy=PushPolicy())
        for node in topology.servers
    ]
    tree = MulticastTreeInfrastructure(fabric, arity=2)
    tree.wire(provider, servers)
    provider.use_push()
    victims = pick_victims(streams, servers)
    for victim in victims:
        schedule_absence(env, victim.node, start=KILL_AT, duration=HORIZON)

    if repair:
        def repairer(env):
            yield env.timeout(KILL_AT + 30.0)  # detection delay
            for victim in victims:
                tree.repair(victim)

        env.process(repairer(env))

    for server in servers:
        server.start()
    env.run(until=HORIZON)
    maintenance = fabric.ledger.kind_totals(MessageKind.TREE_MAINTENANCE).count
    return survivors_staleness(content, servers, victims, HORIZON), maintenance


def main() -> None:
    print(
        "Killing %.0f%% of %d servers at t=%.0f s; measuring surviving "
        "servers' staleness afterwards.\n" % (100 * KILL_FRACTION, N_SERVERS, KILL_AT)
    )
    rows = [
        ("unicast + TTL (the CDN's design)",) + scenario_unicast_ttl(),
        ("push tree, no repair",) + scenario_tree(repair=False),
        ("push tree, with repair",) + scenario_tree(repair=True),
    ]
    header = "%-36s %22s %18s" % ("design", "survivor staleness (s)", "repair msgs")
    print(header)
    print("-" * len(header))
    for name, staleness, maintenance in rows:
        print("%-36s %22.2f %18d" % (name, staleness, maintenance))
    print()
    print("Unicast isolates failures; an unrepaired tree strands whole")
    print("subtrees (exactly the paper's scalability-vs-robustness trade);")
    print("repair restores freshness at a small maintenance cost.")


if __name__ == "__main__":
    main()
