"""Quickstart: simulate a small CDN and compare update methods.

Builds a 30-server CDN (provider in Atlanta, servers across the US /
Europe / Asia, two end-users per server), replays a live game's update
schedule, and compares TTL polling, Push, Invalidation and the paper's
HAT proposal on freshness and network cost.

Run:  python examples/quickstart.py
"""

from repro.experiments import build_system, ci_scale
from repro.experiments.section5 import section5_config


def main() -> None:
    # Section 5 settings: 60 s content-server TTL, 10 s end-user polls.
    config = section5_config(ci_scale(seed=42))

    print("Simulating %d servers, %d updates over %.0f s of game time..." % (
        config.n_servers, config.n_updates, config.game_duration_s))
    print()
    header = "%-14s %14s %14s %16s %16s" % (
        "system", "server lag (s)", "user lag (s)", "update msgs", "provider msgs"
    )
    print(header)
    print("-" * len(header))

    for system in ("push", "invalidation", "ttl", "self", "hybrid", "hat"):
        metrics = build_system(config, system).run()
        print("%-14s %14.2f %14.2f %16d %16d" % (
            system,
            metrics.mean_server_lag,
            metrics.mean_user_lag,
            metrics.response_messages,
            metrics.provider_response_messages,
        ))

    print()
    print("Reading the table (the paper's Section 5 findings):")
    print(" - Push keeps replicas freshest but floods every replica on")
    print("   every update, all from the provider's uplink.")
    print(" - TTL bounds staleness by ~TTL/2 and spreads load, but polls")
    print("   even when nothing changed.")
    print(" - HAT pushes to a few supernodes over a proximity tree and")
    print("   lets nearby servers poll them self-adaptively: near-TTL")
    print("   freshness at a fraction of the provider load.")


if __name__ == "__main__":
    main()
