# Developer entry points.  `make smoke` is the pre-merge gate: a fast
# bytecode-compile lint plus the driver shape tests.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: smoke lint test bench bench-engine bench-section4 bench-all report trace-demo

lint:
	python -m compileall -q src

smoke: lint
	$(PYTEST) -q tests/test_section_drivers.py

test:
	$(PYTEST) -q tests/

# Benchmark trajectory: writes BENCH_engine.json / BENCH_section4.json
# at the repo root and gates on gross (>3x) regressions.  See
# docs/performance.md.
bench: bench-engine bench-section4
	python benchmarks/check_bench.py BENCH_engine.json BENCH_section4.json

bench-engine:
	$(PYTEST) benchmarks/test_bench_engine.py --benchmark-only \
		--benchmark-json=BENCH_engine.json

bench-section4:
	$(PYTEST) benchmarks/test_bench_section4.py --benchmark-only \
		--benchmark-json=BENCH_section4.json

bench-all:
	$(PYTEST) benchmarks/ --benchmark-only

report:
	PYTHONPATH=src python examples/regenerate_experiments.py --scale small

# One traced smoke deployment: poll rounds as JSONL plus the per-layer
# cause-attribution table (stderr).
trace-demo:
	PYTHONPATH=src python -m repro trace --method ttl --servers 8 \
		--users-per-server 1 --updates 12 --duration 400 \
		--kind poll_round msg_drop node_down node_up --attribution
