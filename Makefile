# Developer entry points.  `make smoke` is the pre-merge gate: a fast
# bytecode-compile lint plus the driver shape tests.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: smoke lint test bench report trace-demo

lint:
	python -m compileall -q src

smoke: lint
	$(PYTEST) -q tests/test_section_drivers.py

test:
	$(PYTEST) -q tests/

bench:
	$(PYTEST) benchmarks/ --benchmark-only

report:
	PYTHONPATH=src python examples/regenerate_experiments.py --scale small

# One traced smoke deployment: poll rounds as JSONL plus the per-layer
# cause-attribution table (stderr).
trace-demo:
	PYTHONPATH=src python -m repro trace --method ttl --servers 8 \
		--users-per-server 1 --updates 12 --duration 400 \
		--kind poll_round msg_drop node_down node_up --attribution
