# Developer entry points.  `make smoke` is the pre-merge gate: the full
# static-analysis stack plus the driver shape tests.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: smoke lint lint-compile lint-repro lint-ruff typecheck \
	test bench bench-engine bench-section4 bench-user-plane bench-all \
	report trace-demo scenario-smoke scale-smoke planet-scale \
	sanitize-smoke analyze-smoke

# Aggregate static-analysis gate.  lint-ruff and typecheck no-op with a
# notice when ruff/mypy are not installed (offline containers); CI
# installs both, so they are enforced there.
lint: lint-compile lint-repro lint-ruff typecheck

lint-compile:
	python -m compileall -q src

lint-repro:
	PYTHONPATH=src python -m repro.lint src

lint-ruff:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "lint-ruff: ruff not installed, skipping (enforced in CI)"; \
	fi

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	else \
		echo "typecheck: mypy not installed, skipping (enforced in CI)"; \
	fi

smoke: lint
	$(PYTEST) -q tests/test_section_drivers.py

test:
	$(PYTEST) -q tests/

# Schedule sanitizer: for every default method x infrastructure cell,
# perturb same-instant NORMAL-priority tie-breaking under a dedicated
# seeded stream and assert metrics/counters/traces stay bit-identical
# to the FIFO baseline -- under both kernels.  A failure means results
# depend on incidental event-queue order (see docs/static-analysis.md).
sanitize-smoke:
	PYTHONPATH=src python -m repro sanitize
	REPRO_LEGACY_KERNEL=1 PYTHONPATH=src python -m repro sanitize

# The scenario registry must enumerate and the paper-baseline scenario
# must run end to end (CI runs the same two commands as a gate).
scenario-smoke:
	PYTHONPATH=src python -m repro scenario run paper-baseline --scale small
	PYTHONPATH=src python -m repro scenario list --json

# Benchmark trajectory: each run appends a timestamped entry to the
# BENCH_engine.json / BENCH_section4.json histories at the repo root;
# check_bench gates the latest entry against the trailing median (and
# gross >3x transport regressions).  See docs/performance.md and
# docs/observability.md.
bench: bench-engine bench-section4 bench-user-plane
	python benchmarks/check_bench.py BENCH_engine.json BENCH_section4.json \
		BENCH_user_plane.json

bench-engine:
	$(PYTEST) benchmarks/test_bench_engine.py --benchmark-only \
		--benchmark-json=.bench_engine.snapshot.json
	python benchmarks/bench_history.py append BENCH_engine.json \
		.bench_engine.snapshot.json

bench-section4:
	$(PYTEST) benchmarks/test_bench_section4.py --benchmark-only \
		--benchmark-json=.bench_section4.snapshot.json
	python benchmarks/bench_history.py append BENCH_section4.json \
		.bench_section4.snapshot.json

bench-user-plane:
	$(PYTEST) benchmarks/test_bench_user_plane.py --benchmark-only \
		--benchmark-json=.bench_user_plane.snapshot.json
	python benchmarks/bench_history.py append BENCH_user_plane.json \
		.bench_user_plane.snapshot.json

bench-all:
	$(PYTEST) benchmarks/ --benchmark-only

# Fig. 20x at CI scale: 10k servers x 100k users through the sharded
# sweep path, with wall-clock and peak-RSS budgets asserted off the
# telemetry rollup (same job as CI's scale-smoke).  Sampled tracing is
# ON (REPRO_TRACE_*: 0.1% rate, rotating JSONL sinks under
# .scale-trace/) so the budgets also prove tracing fits at planet
# scale; the sweep writes live progress to .scale-runs.progress.json,
# tailable from another terminal with
# `python -m repro watch --registry .scale-runs.json`.
scale-smoke:
	REPRO_TRACE_DIR=.scale-trace REPRO_TRACE_RATE=0.001 \
	REPRO_TRACE_BUDGET=128 \
	PYTHONPATH=src python -m repro sweep --methods ttl --scale planet \
		--servers 10000 --users-per-server 10 --user-shards 4 \
		--workers 4 --registry .scale-runs.json
	python benchmarks/check_scale.py .scale-runs.telemetry.json \
		--max-wall-s 420 --max-rss-kb 4000000

# Opt-in planet-scale run: 100k servers x 1M users (aggregate metrics,
# 8 user shards).  Takes minutes and a few GB of RAM; not a CI target.
planet-scale:
	PYTHONPATH=src python -m repro sweep --methods ttl --scale planet \
		--servers 100000 --users-per-server 10 --user-shards 8 \
		--workers 8 --registry .planet-runs.json

# Cross-run analysis gate: `repro analyze` over the checked-in
# BENCH_*.json trajectories.  Fails hard (exit 2) on malformed history
# and renders the self-contained HTML report CI uploads as an artifact
# (see docs/analysis.md).
analyze-smoke:
	PYTHONPATH=src python -m repro analyze BENCH_engine.json \
		BENCH_section4.json BENCH_user_plane.json \
		--html .analysis-report.html
	@test -s .analysis-report.html

report:
	PYTHONPATH=src python examples/regenerate_experiments.py --scale small

# One traced smoke deployment: poll rounds as JSONL plus the per-layer
# cause-attribution table (stderr).
trace-demo:
	PYTHONPATH=src python -m repro trace --method ttl --servers 8 \
		--users-per-server 1 --updates 12 --duration 400 \
		--kind poll_round msg_drop node_down node_up --attribution
