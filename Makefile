# Developer entry points.  `make smoke` is the pre-merge gate: a fast
# bytecode-compile lint plus the driver shape tests.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: smoke lint test bench report

lint:
	python -m compileall -q src

smoke: lint
	$(PYTEST) -q tests/test_section_drivers.py

test:
	$(PYTEST) -q tests/

bench:
	$(PYTEST) benchmarks/ --benchmark-only

report:
	PYTHONPATH=src python examples/regenerate_experiments.py --scale small
