"""Consistency metrics for the trace-driven experiments (Sections 4-5).

Ground truth is the content's update schedule; measurements come from

- a server's *apply log*: (time, version) for every cache write, and
- a user's *observation log*: (time, version) for every visit.

The core metric is the **update lag**: for each update ``i`` created at
``u_i``, the first time the server (or user) holds/sees version ``>= i``
minus ``u_i``.  Averaged per server this is the paper's "inconsistency
of each content server" (Figs. 14-15, 19-20); per user it is the
end-user inconsistency (Figs. 14b, 15b); the Fig. 24 metric is the
fraction of observations strictly older than something already seen.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..cdn.client import Observation
from ..cdn.content import LiveContent

__all__ = [
    "update_lags",
    "mean_update_lag",
    "observation_update_lags",
    "stale_observation_fraction",
]


def _running_max(versions: Sequence[int]) -> np.ndarray:
    return np.maximum.accumulate(np.asarray(list(versions), dtype=np.int64))


def update_lags(
    content: LiveContent,
    log: Sequence[Tuple[float, int]],
    window: Optional[Tuple[float, float]] = None,
    censor_at: Optional[float] = None,
) -> List[float]:
    """Per-update lags from a (time, version) log.

    ``window`` restricts which updates are scored (by creation time);
    updates never realised in the log are censored at ``censor_at`` if
    given, otherwise skipped.
    """
    if not content.update_times:
        return []
    lo, hi = window if window is not None else (0.0, float("inf"))

    times = np.asarray([t for t, _ in log], dtype=float)
    versions = [v for _, v in log]
    max_versions = _running_max(versions) if versions else np.asarray([], dtype=np.int64)

    lags: List[float] = []
    for index, created in enumerate(content.update_times, start=1):
        if not lo <= created <= hi:
            continue
        pos = int(np.searchsorted(max_versions, index, side="left"))
        if pos >= len(times):
            if censor_at is not None:
                lags.append(max(0.0, censor_at - created))
            continue
        lags.append(max(0.0, float(times[pos]) - created))
    return lags


def mean_update_lag(
    content: LiveContent,
    log: Sequence[Tuple[float, int]],
    window: Optional[Tuple[float, float]] = None,
    censor_at: Optional[float] = None,
) -> float:
    """Mean update lag (0.0 when no update falls in the window)."""
    lags = update_lags(content, log, window=window, censor_at=censor_at)
    if not lags:
        return 0.0
    return float(np.mean(lags))


def observation_update_lags(
    content: LiveContent,
    observations: Iterable[Observation],
    window: Optional[Tuple[float, float]] = None,
    censor_at: Optional[float] = None,
) -> List[float]:
    """Update lags as experienced by one user (first *sight* of each
    update)."""
    log = [(obs.time, obs.version) for obs in observations]
    return update_lags(content, log, window=window, censor_at=censor_at)


def stale_observation_fraction(observations: Iterable[Observation]) -> float:
    """Fraction of observations showing content older than already seen.

    Fig. 24's "percentage of inconsistency observations": a visit is
    inconsistent if its version is strictly lower than the maximum
    version this user has observed before (e.g. the score goes
    2:3 -> 2:2 after a redirection to a stale server).
    """
    observations = list(observations)
    if not observations:
        return 0.0
    seen_max = -1
    stale = 0
    for obs in observations:
        if obs.version < seen_max:
            stale += 1
        seen_max = max(seen_max, obs.version)
    return stale / len(observations)
