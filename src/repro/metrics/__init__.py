"""Measurement infrastructure: statistics helpers and traffic accounting."""

from .stats import (
    Cdf,
    PercentileSummary,
    mean,
    pearson_r,
    percentile,
    rmse_against_uniform,
    rmse_between_cdfs,
    summarize,
    uniform_cdf_value,
)
from .incremental import ServerLagTracker, UserObservationTracker
from .timeseries import (
    StalenessSeries,
    StalenessSeriesCache,
    fleet_staleness_series,
    staleness_series,
)
from .traffic import KindTotals, TrafficLedger

__all__ = [
    "Cdf",
    "PercentileSummary",
    "mean",
    "pearson_r",
    "percentile",
    "rmse_against_uniform",
    "rmse_between_cdfs",
    "summarize",
    "uniform_cdf_value",
    "KindTotals",
    "TrafficLedger",
    "StalenessSeries",
    "StalenessSeriesCache",
    "staleness_series",
    "fleet_staleness_series",
    "ServerLagTracker",
    "UserObservationTracker",
]
