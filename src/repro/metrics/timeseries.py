"""Time-binned staleness series.

Figures 3-24 summarise whole runs; this module answers "how stale was
the fleet *over time*" -- which exposes the play/break phase structure
(staleness climbs during bursts, collapses in silences) and the effect
of failures mid-run.  Used by examples and ablation analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..cdn.content import LiveContent

__all__ = [
    "StalenessSeries",
    "StalenessSeriesCache",
    "staleness_series",
    "fleet_staleness_series",
]


@dataclass(frozen=True)
class StalenessSeries:
    """Staleness sampled on a regular time grid."""

    times: Tuple[float, ...]
    values: Tuple[float, ...]
    #: ``values`` as an ndarray, materialised once at construction so
    #: :meth:`over` / :meth:`mean` do not re-convert per call.
    _values_arr: "np.ndarray" = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ValueError("times and values must have equal length")
        object.__setattr__(self, "_values_arr", np.asarray(self.values, dtype=np.float64))

    def __len__(self) -> int:
        return len(self.times)

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def mean(self) -> float:
        return float(np.mean(self._values_arr)) if self.values else 0.0

    def over(self, threshold: float) -> float:
        """Fraction of sampled instants with staleness above *threshold*."""
        if not self.values:
            return 0.0
        return float(np.mean(self._values_arr > threshold))


def staleness_series(
    content: LiveContent,
    apply_log: Sequence[Tuple[float, int]],
    horizon_s: float,
    step_s: float = 10.0,
) -> StalenessSeries:
    """One replica's staleness over time.

    At each grid instant ``t`` the staleness is how long the replica's
    cached version has been superseded (0 if it is current).
    """
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    grid = np.arange(0.0, horizon_s, step_s)
    if not apply_log:
        apply_log = [(0.0, 0)]
    log_times = np.asarray([t for t, _ in apply_log])
    log_versions = np.maximum.accumulate(
        np.asarray([v for _, v in apply_log], dtype=np.int64)
    )
    idx = np.searchsorted(log_times, grid, side="right") - 1
    held = np.where(idx >= 0, log_versions[np.maximum(idx, 0)], 0)
    values = content.staleness_grid(held, grid)
    return StalenessSeries(
        times=tuple(float(t) for t in grid),
        values=tuple(float(v) for v in values),
    )


def fleet_staleness_series(
    content: LiveContent,
    apply_logs: Iterable[Sequence[Tuple[float, int]]],
    horizon_s: float,
    step_s: float = 10.0,
) -> StalenessSeries:
    """Mean staleness across a fleet of replicas, over time."""
    series_list: List[StalenessSeries] = [
        staleness_series(content, log, horizon_s, step_s) for log in apply_logs
    ]
    if not series_list:
        raise ValueError("need at least one apply log")
    stacked = np.asarray([s.values for s in series_list])
    return StalenessSeries(
        times=series_list[0].times,
        values=tuple(float(v) for v in stacked.mean(axis=0)),
    )


class StalenessSeriesCache:
    """Memoizes staleness-series derivations for one content object.

    Apply logs are append-only (the cache layer only records strictly
    newer versions), so ``(replica key, len(log), horizon, step)``
    uniquely identifies a series: any later apply grows the log and
    naturally misses the stale entry.  The testbed keeps one of these
    per deployment so repeated series queries (reports, figures, tests)
    vectorise each grid exactly once.
    """

    __slots__ = ("content", "_cache")

    def __init__(self, content: LiveContent) -> None:
        self.content = content
        self._cache: dict = {}

    def series(
        self,
        key: str,
        apply_log: Sequence[Tuple[float, int]],
        horizon_s: float,
        step_s: float = 10.0,
    ) -> StalenessSeries:
        """Memoized :func:`staleness_series` for the replica *key*."""
        cache_key = (key, len(apply_log), horizon_s, step_s)
        hit = self._cache.get(cache_key)
        if hit is None:
            hit = staleness_series(self.content, apply_log, horizon_s, step_s)
            self._cache[cache_key] = hit
        return hit

    def fleet(
        self,
        keyed_logs: Sequence[Tuple[str, Sequence[Tuple[float, int]]]],
        horizon_s: float,
        step_s: float = 10.0,
    ) -> StalenessSeries:
        """Memoized :func:`fleet_staleness_series` over ``(key, log)``
        pairs, reusing each replica's cached series."""
        if not keyed_logs:
            raise ValueError("need at least one apply log")
        cache_key = (
            "__fleet__",
            tuple(key for key, _ in keyed_logs),
            tuple(len(log) for _, log in keyed_logs),
            horizon_s,
            step_s,
        )
        hit = self._cache.get(cache_key)
        if hit is None:
            series_list = [
                self.series(key, log, horizon_s, step_s) for key, log in keyed_logs
            ]
            stacked = np.asarray([s.values for s in series_list])
            hit = StalenessSeries(
                times=series_list[0].times,
                values=tuple(float(v) for v in stacked.mean(axis=0)),
            )
            self._cache[cache_key] = hit
        return hit
