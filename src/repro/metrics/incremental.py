"""Incremental staleness accounting (the fast kernel's metric path).

The legacy collection pass re-derives every lag metric from scratch at
the end of a run: it walks each server's full apply log and each user's
full observation log through :func:`~repro.metrics.consistency.update_lags`
(a ``searchsorted`` per update per replica).  These trackers maintain
the same quantities *incrementally* -- a few float operations per
version-change or visit event, hooked into
:attr:`~repro.cdn.server.ServerActor.on_apply_hooks` and
:attr:`~repro.cdn.client.EndUserActor.on_observation` -- so collection
is a cheap read of running state.

Bit-identity with the legacy pass is structural, not approximate:

- Apply logs record strictly increasing versions (the cache layer only
  appends strictly newer writes), so the first log entry whose running
  max reaches update ``i`` is exactly the apply that covered ``i``; the
  tracker scores ``i`` at that moment with the same float subtraction.
- Covered updates form a prefix ``1..V_final`` and censored updates the
  tail, in both implementations, so the lag list feeding ``np.mean``
  has the same values in the same order (pairwise summation is
  order-sensitive, so order is part of the contract).
- The stale-visit count compares each observation against the running
  maximum seen *before* it, with the same strict ``<``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports (the cdn
    # package imports the metrics package at module load, so importing
    # back at runtime would be circular)
    from ..cdn.client import Observation
    from ..cdn.content import LiveContent

__all__ = ["ServerLagTracker", "UserObservationTracker"]


class ServerLagTracker:
    """Running per-update lags of one server replica.

    ``on_apply(now, version)`` must be called exactly when a strictly
    newer *version* lands in the replica's cache (wire it to
    ``ServerActor.on_apply_hooks``); versions across calls are therefore
    strictly increasing.
    """

    __slots__ = ("_times", "_lags", "_covered")

    def __init__(self, content: LiveContent) -> None:
        self._times = list(content.update_times)
        self._lags: List[float] = []
        #: Highest update index already scored (covered prefix).
        self._covered = 0

    def on_apply(self, now: float, version: int) -> None:
        times = self._times
        top = min(version, len(times))
        covered = self._covered
        if top <= covered:
            return
        lags = self._lags
        for index in range(covered + 1, top + 1):
            lags.append(max(0.0, now - times[index - 1]))
        self._covered = top

    def mean_lag(self, censor_at: float) -> float:
        """Mean update lag with never-covered updates censored at
        *censor_at* -- equals ``mean_update_lag(content, apply_log,
        censor_at=censor_at)`` on the replica's full log.  Non-destructive."""
        times = self._times
        lags = self._lags + [
            max(0.0, censor_at - times[index - 1])
            for index in range(self._covered + 1, len(times) + 1)
        ]
        if not lags:
            return 0.0
        return float(np.mean(lags))


class UserObservationTracker:
    """Running per-update lags and stale-visit count of one end user.

    ``on_observe`` must be called once per recorded
    :class:`~repro.cdn.client.Observation`, in observation order (wire
    :meth:`observe` to ``EndUserActor.on_observation``).  Unlike server
    applies, observed versions may regress (a redirection to a stale
    server); regressions below the running maximum count as stale visits
    and never advance coverage.
    """

    __slots__ = ("_times", "_lags", "_seen", "_stale", "_total")

    def __init__(self, content: LiveContent) -> None:
        self._times = list(content.update_times)
        self._lags: List[float] = []
        #: Running maximum observed version (-1 before any visit).
        self._seen = -1
        self._stale = 0
        self._total = 0

    def observe(self, observation: Observation) -> None:
        """``EndUserActor.on_observation``-shaped adapter."""
        self.on_observe(observation.time, observation.version)

    def on_observe(self, now: float, version: int) -> None:
        self._total += 1
        seen = self._seen
        if version < seen:
            self._stale += 1
            return
        if version > seen:
            times = self._times
            lags = self._lags
            for index in range(max(seen, 0) + 1, min(version, len(times)) + 1):
                lags.append(max(0.0, now - times[index - 1]))
            self._seen = version

    def mean_lag(self, censor_at: float) -> float:
        """Mean first-sight update lag, censored at *censor_at* -- equals
        ``mean_update_lag`` on the user's full observation log."""
        times = self._times
        covered = min(max(self._seen, 0), len(times))
        lags = self._lags + [
            max(0.0, censor_at - times[index - 1])
            for index in range(covered + 1, len(times) + 1)
        ]
        if not lags:
            return 0.0
        return float(np.mean(lags))

    def stale_fraction(self) -> float:
        """Equals ``stale_observation_fraction`` on the observation log."""
        if not self._total:
            return 0.0
        return self._stale / self._total
