"""Incremental staleness accounting (the fast kernel's metric path).

The legacy collection pass re-derives every lag metric from scratch at
the end of a run: it walks each server's full apply log and each user's
full observation log through :func:`~repro.metrics.consistency.update_lags`
(a ``searchsorted`` per update per replica).  These trackers maintain
the same quantities *incrementally* -- a few float operations per
version-change or visit event, hooked into
:attr:`~repro.cdn.server.ServerActor.on_apply_hooks` and
:attr:`~repro.cdn.client.EndUserActor.on_observation` -- so collection
is a cheap read of running state.

Bit-identity with the legacy pass is structural, not approximate:

- Apply logs record strictly increasing versions (the cache layer only
  appends strictly newer writes), so the first log entry whose running
  max reaches update ``i`` is exactly the apply that covered ``i``; the
  tracker scores ``i`` at that moment with the same float subtraction.
- Covered updates form a prefix ``1..V_final`` and censored updates the
  tail, in both implementations, so the lag list feeding ``np.mean``
  has the same values in the same order (pairwise summation is
  order-sensitive, so order is part of the contract).
- The stale-visit count compares each observation against the running
  maximum seen *before* it, with the same strict ``<``.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports (the cdn
    # package imports the metrics package at module load, so importing
    # back at runtime would be circular)
    from ..cdn.client import Observation
    from ..cdn.content import LiveContent

__all__ = [
    "ServerLagTracker",
    "UserObservationTracker",
    "AggregateUserMetrics",
    "aggregate_user_rollup",
]


class ServerLagTracker:
    """Running per-update lags of one server replica.

    ``on_apply(now, version)`` must be called exactly when a strictly
    newer *version* lands in the replica's cache (wire it to
    ``ServerActor.on_apply_hooks``); versions across calls are therefore
    strictly increasing.

    *times* lets many trackers share one update-times list (the cohort
    plane builds hundreds of thousands of trackers per run); when given
    it must equal ``list(content.update_times)`` and is never mutated.
    """

    __slots__ = ("_times", "_lags", "_covered")

    def __init__(
        self, content: LiveContent, times: Optional[List[float]] = None
    ) -> None:
        self._times = times if times is not None else list(content.update_times)
        self._lags: List[float] = []
        #: Highest update index already scored (covered prefix).
        self._covered = 0

    def on_apply(self, now: float, version: int) -> None:
        times = self._times
        top = min(version, len(times))
        covered = self._covered
        if top <= covered:
            return
        lags = self._lags
        for index in range(covered + 1, top + 1):
            lags.append(max(0.0, now - times[index - 1]))
        self._covered = top

    def mean_lag(self, censor_at: float) -> float:
        """Mean update lag with never-covered updates censored at
        *censor_at* -- equals ``mean_update_lag(content, apply_log,
        censor_at=censor_at)`` on the replica's full log.  Non-destructive."""
        times = self._times
        lags = self._lags + [
            max(0.0, censor_at - times[index - 1])
            for index in range(self._covered + 1, len(times) + 1)
        ]
        if not lags:
            return 0.0
        return float(np.mean(lags))


class UserObservationTracker:
    """Running per-update lags and stale-visit count of one end user.

    ``on_observe`` must be called once per recorded
    :class:`~repro.cdn.client.Observation`, in observation order (wire
    :meth:`observe` to ``EndUserActor.on_observation``).  Unlike server
    applies, observed versions may regress (a redirection to a stale
    server); regressions below the running maximum count as stale visits
    and never advance coverage.
    """

    __slots__ = ("_times", "_lags", "_seen", "_stale", "_total")

    def __init__(
        self, content: LiveContent, times: Optional[List[float]] = None
    ) -> None:
        self._times = times if times is not None else list(content.update_times)
        self._lags: List[float] = []
        #: Running maximum observed version (-1 before any visit).
        self._seen = -1
        self._stale = 0
        self._total = 0

    def observe(self, observation: Observation) -> None:
        """``EndUserActor.on_observation``-shaped adapter."""
        self.on_observe(observation.time, observation.version)

    def on_observe(self, now: float, version: int) -> None:
        self._total += 1
        seen = self._seen
        if version < seen:
            self._stale += 1
            return
        if version > seen:
            times = self._times
            lags = self._lags
            for index in range(max(seen, 0) + 1, min(version, len(times)) + 1):
                lags.append(max(0.0, now - times[index - 1]))
            self._seen = version

    def mean_lag(self, censor_at: float) -> float:
        """Mean first-sight update lag, censored at *censor_at* -- equals
        ``mean_update_lag`` on the user's full observation log."""
        times = self._times
        covered = min(max(self._seen, 0), len(times))
        lags = self._lags + [
            max(0.0, censor_at - times[index - 1])
            for index in range(covered + 1, len(times) + 1)
        ]
        if not lags:
            return 0.0
        return float(np.mean(lags))

    def stale_fraction(self) -> float:
        """Equals ``stale_observation_fraction`` on the observation log."""
        if not self._total:
            return 0.0
        return self._stale / self._total


class AggregateUserMetrics:
    """O(1)-per-user staleness accumulators for planet-scale runs.

    The per-user tracker keeps a lag *list* per user (and the testbed
    keys one metrics-dict entry per user), which is the wrong memory
    shape for a million users.  This class keeps four unboxed scalars
    per user slot -- running max version, lag sum, stale count, visit
    count -- in :mod:`array` storage, and the collection pass groups
    slots by home server (:func:`aggregate_user_rollup`).

    The aggregate mode is its own metrics layout, not a bit-compatible
    re-expression of the per-user mode: lag sums accumulate left to
    right (the per-user tracker feeds ``np.mean``'s pairwise
    summation), and the reported dicts are keyed by home server.  What
    *is* exact is arm equality: the cohort plane, the actor plane and
    the legacy-kernel replay all funnel observations through this same
    class in the same order, so a differential run compares equal, and
    sharded runs merge deterministically (see
    ``repro.experiments.sharding``).

    ``on_observe`` mirrors :meth:`UserObservationTracker.on_observe`
    exactly (same strict comparisons, same censor clamping); versions
    may regress and count as stale visits.
    """

    __slots__ = ("_times", "_seen", "_lag_sum", "_stale", "_total")

    def __init__(
        self,
        content: LiveContent,
        n_slots: int,
        times: Optional[List[float]] = None,
    ) -> None:
        if n_slots < 0:
            raise ValueError("n_slots must be >= 0")
        self._times = times if times is not None else list(content.update_times)
        self._seen = array("q", [-1]) * n_slots
        self._lag_sum = array("d", [0.0]) * n_slots
        self._stale = array("q", [0]) * n_slots
        self._total = array("q", [0]) * n_slots

    @property
    def n_slots(self) -> int:
        return len(self._seen)

    def observer(self, slot: int):
        """``EndUserActor.on_observation``-shaped adapter for *slot*
        (the actor arm of the differential suite wires this where the
        cohort plane calls :meth:`on_observe` directly)."""
        on_observe = self.on_observe

        def hook(observation: "Observation") -> None:
            on_observe(slot, observation.time, observation.version)

        return hook

    def on_observe(self, slot: int, now: float, version: int) -> None:
        self._total[slot] += 1
        seen = self._seen[slot]
        if version < seen:
            self._stale[slot] += 1
            return
        if version > seen:
            times = self._times
            lag = self._lag_sum[slot]
            for index in range(max(seen, 0) + 1, min(version, len(times)) + 1):
                lag += max(0.0, now - times[index - 1])
            self._lag_sum[slot] = lag
            self._seen[slot] = version

    def mean_lags(self, censor_at: float) -> List[float]:
        """Per-slot mean first-sight lag, never-seen updates censored at
        *censor_at*.  Non-destructive; the censor loop only walks each
        slot's uncovered tail (empty for users that saw every update)."""
        times = self._times
        n_times = len(times)
        out: List[float] = []
        for slot in range(len(self._seen)):
            covered = min(max(self._seen[slot], 0), n_times)
            total = self._lag_sum[slot]
            for index in range(covered + 1, n_times + 1):
                total += max(0.0, censor_at - times[index - 1])
            out.append(total / n_times if n_times else 0.0)
        return out

    def stale_fractions(self) -> List[float]:
        return [
            self._stale[slot] / total if total else 0.0
            for slot, total in enumerate(self._total)
        ]


def aggregate_user_rollup(
    aggregate: AggregateUserMetrics,
    node_ids: Sequence[str],
    censor_at: float,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Group per-slot aggregates by home server.

    *node_ids* are the user node ids in slot order; the home server is
    recovered from the testbed's ``<server>-user-<i>`` naming, so the
    grouping is identical however the users were built (cohort, actors,
    or a legacy-kernel replay) and stable under population sharding.
    Returns ``(user_lags, user_stale_fractions)`` keyed by server node
    id, both plain per-group means accumulated in slot order.
    """
    means = aggregate.mean_lags(censor_at)
    fracs = aggregate.stale_fractions()
    lag_sums: Dict[str, float] = {}
    frac_sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for slot, node_id in enumerate(node_ids):
        group = node_id.rsplit("-user-", 1)[0]
        if group in counts:
            counts[group] += 1
            lag_sums[group] += means[slot]
            frac_sums[group] += fracs[slot]
        else:
            counts[group] = 1
            lag_sums[group] = means[slot]
            frac_sums[group] = fracs[slot]
    user_lags = {group: lag_sums[group] / counts[group] for group in counts}
    stale = {group: frac_sums[group] / counts[group] for group in counts}
    return user_lags, stale
