"""Traffic accounting.

The paper measures consistency-maintenance *efficiency* two ways:

- Section 4 (Fig. 16-18): traffic cost in ``km * KB`` summed over every
  consistency packet (following [41]).
- Section 5 (Fig. 22-23): message *counts* (update vs light) and network
  load as total transmission distance in ``km``.

:class:`TrafficLedger` records every message the fabric carries and can
answer all of those queries, broken down by message kind and by sender.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..network.message import Message, MessageKind

__all__ = ["TrafficLedger", "KindTotals"]


@dataclass
class KindTotals:
    """Aggregated totals for one message kind."""

    count: int = 0
    km_kb: float = 0.0
    km: float = 0.0
    kb: float = 0.0

    def add(self, distance_km: float, size_kb: float) -> None:
        self.count += 1
        self.km_kb += distance_km * size_kb
        self.km += distance_km
        self.kb += size_kb


class TrafficLedger:
    """Accumulates per-message traffic statistics for one experiment run."""

    def __init__(self) -> None:
        self._by_kind: Dict[MessageKind, KindTotals] = defaultdict(KindTotals)
        self._by_sender_kind: Dict[str, Dict[MessageKind, KindTotals]] = defaultdict(
            lambda: defaultdict(KindTotals)
        )

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, message: Message, distance_km: float) -> None:
        """Record one delivered *message* that travelled *distance_km*."""
        if distance_km < 0:
            raise ValueError("distance_km must be >= 0")
        # ``KindTotals.add`` inlined twice: this runs once per simulated
        # message, and the call overhead is measurable at CDN scale.
        kind = message.kind
        size_kb = message.size_kb
        km_kb = distance_km * size_kb
        totals = self._by_kind[kind]
        totals.count += 1
        totals.km_kb += km_kb
        totals.km += distance_km
        totals.kb += size_kb
        src = message.src
        try:
            sender = src.node_id
        except AttributeError:
            sender = str(src)
        totals = self._by_sender_kind[sender][kind]
        totals.count += 1
        totals.km_kb += km_kb
        totals.km += distance_km
        totals.kb += size_kb

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def totals(self, kinds: Optional[Iterable[MessageKind]] = None) -> KindTotals:
        """Aggregate totals over *kinds* (all kinds if ``None``)."""
        result = KindTotals()
        selected = set(kinds) if kinds is not None else None
        for kind, totals in self._by_kind.items():
            if selected is not None and kind not in selected:
                continue
            result.count += totals.count
            result.km_kb += totals.km_kb
            result.km += totals.km
            result.kb += totals.kb
        return result

    def kind_totals(self, kind: MessageKind) -> KindTotals:
        """Totals for a single message kind (zeros if never seen)."""
        return self._by_kind.get(kind, KindTotals())

    def consistency_cost_km_kb(self) -> float:
        """Fig. 16/17-style cost: km*KB over all consistency messages."""
        from ..network.message import LIGHT_KINDS, UPDATE_KINDS

        return self.totals(UPDATE_KINDS | LIGHT_KINDS).km_kb

    def update_message_count(self) -> int:
        """Fig. 22a-style count of body-carrying update messages."""
        from ..network.message import UPDATE_KINDS

        return self.totals(UPDATE_KINDS).count

    def light_message_count(self) -> int:
        """Count of light consistency-maintenance messages."""
        from ..network.message import LIGHT_KINDS

        return self.totals(LIGHT_KINDS).count

    def update_load_km(self) -> float:
        """Fig. 23-style network load (km) of update messages."""
        from ..network.message import UPDATE_KINDS

        return self.totals(UPDATE_KINDS).km

    def light_load_km(self) -> float:
        """Fig. 23-style network load (km) of light messages."""
        from ..network.message import LIGHT_KINDS

        return self.totals(LIGHT_KINDS).km

    def response_message_count(self) -> int:
        """The paper's Fig. 22 metric: bodies *plus* poll responses.

        Section 5.3 "use[s] the number of update messages to indicate the
        network load including the polling responses and update
        messages" -- i.e. not-modified poll answers count too.
        """
        from ..network.message import MessageKind, UPDATE_KINDS

        kinds = set(UPDATE_KINDS) | {MessageKind.POLL_NOT_MODIFIED}
        return self.totals(kinds).count

    def updates_sent_by(self, sender_id: str) -> int:
        """Update messages whose sender is *sender_id* (Fig. 22b:
        provider load)."""
        from ..network.message import UPDATE_KINDS

        per_kind = self._by_sender_kind.get(sender_id)
        if not per_kind:
            return 0
        return sum(t.count for k, t in per_kind.items() if k in UPDATE_KINDS)

    def responses_sent_by(self, sender_id: str) -> int:
        """Fig. 22 metric restricted to one sender (bodies + poll
        responses)."""
        from ..network.message import MessageKind, UPDATE_KINDS

        per_kind = self._by_sender_kind.get(sender_id)
        if not per_kind:
            return 0
        kinds = set(UPDATE_KINDS) | {MessageKind.POLL_NOT_MODIFIED}
        return sum(t.count for k, t in per_kind.items() if k in kinds)

    def response_load_km(self) -> float:
        """Fig. 23 'update message' network load (km), using the same
        response-inclusive definition as :meth:`response_message_count`."""
        from ..network.message import MessageKind, UPDATE_KINDS

        kinds = set(UPDATE_KINDS) | {MessageKind.POLL_NOT_MODIFIED}
        return self.totals(kinds).km

    def request_load_km(self) -> float:
        """Fig. 23 'light message' load (km): everything consistency-
        related that is not a response (polls, fetch requests,
        invalidations, switch notices, tree maintenance)."""
        from ..network.message import LIGHT_KINDS, MessageKind

        kinds = set(LIGHT_KINDS) - {MessageKind.POLL_NOT_MODIFIED}
        return self.totals(kinds).km

    def messages_sent_by(self, sender_id: str) -> int:
        """All consistency messages sent by *sender_id*."""
        from ..network.message import LIGHT_KINDS, UPDATE_KINDS

        per_kind = self._by_sender_kind.get(sender_id)
        if not per_kind:
            return 0
        interesting = UPDATE_KINDS | LIGHT_KINDS
        return sum(t.count for k, t in per_kind.items() if k in interesting)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A plain-dict view (for reports and serialisation)."""
        return {
            kind.value: {
                "count": totals.count,
                "km_kb": totals.km_kb,
                "km": totals.km,
                "kb": totals.kb,
            }
            for kind, totals in sorted(self._by_kind.items(), key=lambda kv: kv[0].value)
        }
