"""Statistical helpers used throughout the trace analysis and experiments.

These mirror the estimators the paper uses: empirical CDFs, the 5th /
median / 95th percentile summaries (Figs. 4e, 9b-c, 18a), root-mean-square
error between CDFs (Fig. 6b) and Pearson correlation (Fig. 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "Cdf",
    "PercentileSummary",
    "percentile",
    "summarize",
    "rmse_between_cdfs",
    "pearson_r",
    "mean",
]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on empty input (explicit is better than NaN)."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return float(sum(values)) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0-100) with linear interpolation."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100], got %r" % (q,))
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class PercentileSummary:
    """The paper's standard 5th / median / 95th percentile summary."""

    p5: float
    median: float
    p95: float
    mean: float
    count: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "p5": self.p5,
            "median": self.median,
            "p95": self.p95,
            "mean": self.mean,
            "count": self.count,
        }


def summarize(values: Sequence[float]) -> PercentileSummary:
    """Build a :class:`PercentileSummary` of *values*."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("summarize of empty sequence")
    return PercentileSummary(
        p5=float(np.percentile(arr, 5)),
        median=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        mean=float(arr.mean()),
        count=int(arr.size),
    )


class Cdf:
    """An empirical cumulative distribution function."""

    def __init__(self, values: Iterable[float]) -> None:
        self._sorted = np.sort(np.asarray(list(values), dtype=float))
        if self._sorted.size == 0:
            raise ValueError("Cdf of empty sequence")

    def __len__(self) -> int:
        return int(self._sorted.size)

    @property
    def values(self) -> np.ndarray:
        """The sorted sample (read-only view)."""
        view = self._sorted.view()
        view.flags.writeable = False
        return view

    def at(self, x: float) -> float:
        """P(X <= x)."""
        return float(np.searchsorted(self._sorted, x, side="right")) / self._sorted.size

    def fraction_below(self, x: float) -> float:
        """P(X < x)."""
        return float(np.searchsorted(self._sorted, x, side="left")) / self._sorted.size

    def fraction_above(self, x: float) -> float:
        """P(X > x)."""
        return 1.0 - self.at(x)

    def quantile(self, q: float) -> float:
        """Inverse CDF at ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        return float(np.quantile(self._sorted, q))

    def points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """``(x, F(x))`` pairs suitable for plotting or table output."""
        n = self._sorted.size
        if n <= max_points:
            idx = np.arange(n)
        else:
            idx = np.linspace(0, n - 1, max_points).astype(int)
        return [(float(self._sorted[i]), float(i + 1) / n) for i in idx]

    def summary(self) -> PercentileSummary:
        return summarize(self._sorted)


def rmse_between_cdfs(a: Cdf, b: Cdf, grid: Sequence[float]) -> float:
    """Root-mean-square difference between two CDFs on an x-*grid*.

    This is the paper's Fig. 6b statistic comparing the trace CDF with
    the theoretical uniform-[0, TTL] CDF.
    """
    grid = list(grid)
    if not grid:
        raise ValueError("grid must be non-empty")
    sq = [(a.at(x) - b.at(x)) ** 2 for x in grid]
    return math.sqrt(sum(sq) / len(sq))


def uniform_cdf_value(x: float, low: float, high: float) -> float:
    """CDF of Uniform(low, high) at *x* -- the Fig. 6b theory curve."""
    if high <= low:
        raise ValueError("high must exceed low")
    if x <= low:
        return 0.0
    if x >= high:
        return 1.0
    return (x - low) / (high - low)


def rmse_against_uniform(sample: Sequence[float], ttl: float, grid_step: float = 1.0) -> float:
    """RMSE between the empirical CDF of *sample* and Uniform(0, ttl)."""
    cdf = Cdf(sample)
    xs = np.arange(0.0, ttl + grid_step / 2.0, grid_step)
    sq = [(cdf.at(float(x)) - uniform_cdf_value(float(x), 0.0, ttl)) ** 2 for x in xs]
    return math.sqrt(sum(sq) / len(sq))


def pearson_r(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (Fig. 8: r = 0.11)."""
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    if x.size != y.size:
        raise ValueError("sequences must have equal length")
    if x.size < 2:
        raise ValueError("need at least two points")
    xs_std = x.std()
    ys_std = y.std()
    if xs_std == 0.0 or ys_std == 0.0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (xs_std * ys_std))


__all__.append("uniform_cdf_value")
__all__.append("rmse_against_uniform")
