"""Command-line interface.

Thirteen subcommands mirroring the paper's workflow::

    python -m repro measure    # Section 3: synthesize + analyse a crawl
    python -m repro evaluate   # Section 4: one method on one infrastructure
    python -m repro sweep      # a grid of deployments through the runner
    python -m repro scenario   # list/describe/run/compare workload scenarios
    python -m repro advise     # guidance: recommend a method from rates
    python -m repro report     # regenerate the EXPERIMENTS.md report
    python -m repro trace      # run one traced deployment, dump JSONL events
    python -m repro watch      # tail a running sweep's live progress
    python -m repro analyze    # cross-run stats over BENCH_*.json + HTML
    python -m repro lint       # determinism/purity static analysis (REPxxx)
    python -m repro sanitize   # schedule sanitizer: tie-order perturbation
    python -m repro metrics    # harness-telemetry rollup (JSON / Prometheus)
    python -m repro profile    # top-N span table from a run's telemetry

``sweep`` and ``report`` accept ``--workers`` (or ``REPRO_WORKERS``) to
fan deployments over a process pool, and ``--registry`` (or
``REPRO_RUN_REGISTRY``) to memoize completed runs on disk.  Runs with a
registry also append a harness-telemetry rollup to
``<registry>.telemetry.json``, which ``metrics`` and ``profile`` read
back (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Optional

__all__ = ["main", "build_parser"]


def _workers_argument(value: str) -> str:
    if value.strip().lower() != "auto":
        try:
            int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                "expected an integer or 'auto', got %r" % value
            )
    return value


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        default=None,
        type=_workers_argument,
        help='parallel worker count; "auto" or 0 = one per CPU '
        "(default: $REPRO_WORKERS or 1 = serial)",
    )
    parser.add_argument(
        "--registry",
        default=None,
        metavar="PATH",
        help="run-registry JSON file memoizing completed deployments "
        "(default: $REPRO_RUN_REGISTRY, unset = no memoization)",
    )


def _add_telemetry_source_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "artifact", nargs="?", default=None, metavar="TELEMETRY_JSON",
        help="telemetry artifact path (default: derived from --registry "
        "or $REPRO_RUN_REGISTRY as <registry>.telemetry.json)",
    )
    parser.add_argument(
        "--registry", default=None, metavar="PATH",
        help="run-registry path whose telemetry artifact to read "
        "(default: $REPRO_RUN_REGISTRY)",
    )
    parser.add_argument(
        "--run", type=int, default=-1, metavar="N",
        help="which recorded run entry to show; negative counts from the "
        "end (default: -1 = latest)",
    )


def _resolve_telemetry_artifact(args: argparse.Namespace) -> str:
    import os

    from .obs.telemetry import default_artifact_path
    from .runner.registry import REGISTRY_ENV

    if args.artifact:
        return args.artifact
    registry = args.registry or os.environ.get(REGISTRY_ENV)
    if not registry:
        raise SystemExit(
            "no telemetry source: pass TELEMETRY_JSON, --registry, or set "
            "$%s" % REGISTRY_ENV
        )
    return default_artifact_path(registry)


def _load_run_entry(path: str, run: int):
    """(artifact, entry) for entry index *run*; exits with code 2 on error."""
    from .obs.telemetry import load_artifact

    try:
        artifact = load_artifact(path)
    except ValueError as error:
        raise SystemExit(str(error))
    runs = artifact["runs"]
    if not runs:
        print("telemetry artifact %s has no recorded runs" % path, file=sys.stderr)
        raise SystemExit(2)
    try:
        entry = runs[run]
    except IndexError:
        print(
            "run index %d out of range (%d run(s) recorded)" % (run, len(runs)),
            file=sys.stderr,
        )
        raise SystemExit(2)
    return artifact, entry


def build_parser() -> argparse.ArgumentParser:
    from .consistency.registry import infrastructure_choices, method_choices
    from .obs.tracer import EVENT_KINDS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Measuring and Evaluating Live Content "
        "Consistency in a Large-Scale CDN' (ICDCS'14 / TPDS'15)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    measure = sub.add_parser(
        "measure", help="synthesize a CDN crawl and run the Section 3 analyses"
    )
    measure.add_argument("--servers", type=int, default=150)
    measure.add_argument("--days", type=int, default=5)
    measure.add_argument("--seed", type=int, default=0)
    measure.add_argument("--save", metavar="PATH", help="save the trace as JSON")

    evaluate = sub.add_parser(
        "evaluate", help="run one update method on one infrastructure (Section 4)"
    )
    evaluate.add_argument("--method", default="ttl", choices=method_choices())
    evaluate.add_argument(
        "--infrastructure", default="unicast", choices=infrastructure_choices()
    )
    evaluate.add_argument("--servers", type=int, default=60)
    evaluate.add_argument("--users-per-server", type=int, default=3)
    evaluate.add_argument("--updates", type=int, default=100)
    evaluate.add_argument("--duration", type=float, default=2920.0)
    evaluate.add_argument("--server-ttl", type=float, default=10.0)
    evaluate.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep",
        help="run a (method x infrastructure x TTL x seed) grid through "
        "the parallel runner",
    )
    sweep.add_argument(
        "--methods", nargs="+", default=["push", "invalidation", "ttl"],
        choices=method_choices(), metavar="METHOD",
    )
    sweep.add_argument(
        "--infrastructures", nargs="+", default=["unicast"],
        choices=infrastructure_choices(), metavar="INFRA",
    )
    sweep.add_argument(
        "--systems", nargs="+", default=None, metavar="SYSTEM",
        help="sweep full Section 5 systems (push/invalidation/ttl/self/"
        "hybrid/hat) instead of method x infrastructure cells",
    )
    sweep.add_argument("--seeds", nargs="+", type=int, default=[0])
    sweep.add_argument(
        "--server-ttls", nargs="+", type=float, default=None, metavar="SECONDS",
        help="sweep the content-server TTL over these values",
    )
    sweep.add_argument(
        "--scenarios", nargs="+", default=None, metavar="SCENARIO",
        help="also sweep these workload scenarios (names or aliases from "
        "'repro scenario list'); catalog scenarios expand into one run "
        "per object cell",
    )
    sweep.add_argument(
        "--scale", choices=("smoke", "ci", "paper", "planet"), default="smoke",
        help="base config scale; 'planet' uses aggregate user metrics "
        "and Section-5 cadence (see docs/scalability.md)",
    )
    sweep.add_argument(
        "--servers", type=int, default=None, metavar="N",
        help="override the scale's server count",
    )
    sweep.add_argument(
        "--users-per-server", type=int, default=None, metavar="N",
        help="override the scale's users-per-server count",
    )
    sweep.add_argument(
        "--user-shards", type=int, default=1, metavar="K",
        help="split each cell's user population over K shard runs "
        "(requires --user-metrics aggregate; shard metrics merge "
        "exactly back into one row)",
    )
    sweep.add_argument(
        "--user-metrics", choices=("per-user", "aggregate"), default=None,
        help="user-metrics layout (default: the scale's; 'aggregate' "
        "keys user metrics by home server and is required for "
        "--user-shards > 1)",
    )
    _add_runner_arguments(sweep)

    scenario = sub.add_parser(
        "scenario",
        help="list, describe, run or compare workload scenarios "
        "(workload + catalog + perturbations bundles)",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scn_list = scenario_sub.add_parser(
        "list", help="list the registered scenarios"
    )
    scn_list.add_argument("--json", action="store_true", help="machine-readable")
    scn_describe = scenario_sub.add_parser(
        "describe", help="show one scenario's cells and perturbations"
    )
    scn_describe.add_argument("name", metavar="SCENARIO")
    scn_describe.add_argument(
        "--scale", choices=("smoke", "small", "ci", "paper"), default="smoke",
        help="config scale the cells are expanded for (default: smoke; "
        "'small' is an alias of smoke)",
    )
    scn_describe.add_argument("--json", action="store_true", help="machine-readable")
    scn_run = scenario_sub.add_parser(
        "run", help="run one scenario end to end and print its rollup"
    )
    scn_run.add_argument("name", metavar="SCENARIO")
    scn_run.add_argument("--method", default="ttl", choices=method_choices())
    scn_run.add_argument(
        "--infrastructure", default="unicast", choices=infrastructure_choices()
    )
    scn_run.add_argument(
        "--system", default=None,
        choices=("push", "invalidation", "ttl", "self", "hybrid", "hat"),
        help="run a full Section 5 system under the scenario instead of "
        "a method x infrastructure cell",
    )
    scn_run.add_argument(
        "--scale", choices=("smoke", "small", "ci", "paper"), default="smoke",
        help="config scale (default: smoke; 'small' is an alias of smoke)",
    )
    scn_run.add_argument("--seed", type=int, default=0)
    scn_run.add_argument("--json", action="store_true", help="machine-readable")
    _add_runner_arguments(scn_run)
    scn_compare = scenario_sub.add_parser(
        "compare",
        help="run several scenarios under one method and rank them "
        "(Section-5-style cross-scenario figure)",
    )
    scn_compare.add_argument(
        "names", nargs="*", metavar="SCENARIO",
        help="scenarios to compare (default: every registered scenario)",
    )
    scn_compare.add_argument("--method", default="ttl", choices=method_choices())
    scn_compare.add_argument(
        "--infrastructure", default="unicast", choices=infrastructure_choices()
    )
    scn_compare.add_argument(
        "--scale", choices=("smoke", "small", "ci", "paper"), default="smoke",
        help="config scale (default: smoke; 'small' is an alias of smoke)",
    )
    scn_compare.add_argument("--seed", type=int, default=0)
    scn_compare.add_argument("--json", action="store_true", help="machine-readable")
    _add_runner_arguments(scn_compare)

    advise = sub.add_parser(
        "advise", help="recommend an update method from workload rates"
    )
    advise.add_argument("--update-rate", type=float, required=True,
                        help="updates per second at the origin")
    advise.add_argument("--visit-rate", type=float, required=True,
                        help="visits per second per edge server")
    advise.add_argument("--servers", type=int, required=True)
    advise.add_argument("--tolerance", type=float, required=True,
                        help="staleness tolerance in seconds")
    advise.add_argument("--silence-fraction", type=float, default=0.0)
    advise.add_argument("--update-size-kb", type=float, default=10.0)

    trace = sub.add_parser(
        "trace",
        help="run one traced deployment and dump its structured events "
        "as JSON Lines",
    )
    trace.add_argument("--method", default="ttl", choices=method_choices())
    trace.add_argument(
        "--infrastructure", default="unicast", choices=infrastructure_choices()
    )
    trace.add_argument(
        "--system", default=None,
        choices=("push", "invalidation", "ttl", "self", "hybrid", "hat"),
        help="trace a full Section 5 system instead of a "
        "method x infrastructure cell",
    )
    trace.add_argument("--servers", type=int, default=20)
    trace.add_argument("--users-per-server", type=int, default=2)
    trace.add_argument("--updates", type=int, default=30)
    trace.add_argument("--duration", type=float, default=876.0)
    trace.add_argument("--server-ttl", type=float, default=10.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--node", default=None, metavar="NODE_ID",
        help="only events attributed to this node",
    )
    trace.add_argument(
        "--kind", nargs="+", default=None, choices=sorted(EVENT_KINDS),
        metavar="KIND", help="only these event kinds (see repro.obs.tracer)",
    )
    trace.add_argument(
        "--since", type=float, default=None, metavar="SECONDS",
        help="only events at or after this simulated time",
    )
    trace.add_argument(
        "--until", type=float, default=None, metavar="SECONDS",
        help="only events strictly before this simulated time",
    )
    trace.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="write at most N events",
    )
    trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="write JSONL here instead of stdout",
    )
    trace.add_argument(
        "--attribution", action="store_true",
        help="also print the per-layer cause-attribution table (stderr)",
    )

    trace.add_argument(
        "--sample-rate", type=float, default=None, metavar="RATE",
        help="deterministic sampled tracing at this per-kind keep rate "
        "(0..1) instead of a full dump; exact kind totals are always kept",
    )
    trace.add_argument(
        "--sample-seed", type=int, default=None, metavar="SEED",
        help="seed of the sampling decision stream (default: --seed)",
    )
    trace.add_argument(
        "--budget", type=int, default=256, metavar="N",
        help="per-kind reservoir budget under --sample-rate (default: 256)",
    )

    report = sub.add_parser("report", help="regenerate the EXPERIMENTS.md report")
    report.add_argument("--scale", choices=("small", "medium"), default="small")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--out", default="EXPERIMENTS.md")
    report.add_argument(
        "--html", default=None, metavar="PATH",
        help="also write the cross-run HTML analysis report here (the "
        "repro-analyze renderer over the repo's BENCH_*.json)",
    )
    _add_runner_arguments(report)

    watch = sub.add_parser(
        "watch",
        help="tail a running sweep's live progress "
        "(<registry>.progress.json + per-shard worker heartbeats)",
    )
    watch.add_argument(
        "progress", nargs="?", default=None, metavar="PROGRESS_JSON",
        help="progress file path (default: derived from --registry or "
        "$REPRO_RUN_REGISTRY as <registry>.progress.json)",
    )
    watch.add_argument(
        "--registry", default=None, metavar="PATH",
        help="run-registry path whose progress file to tail "
        "(default: $REPRO_RUN_REGISTRY)",
    )
    watch.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period (default: 2s)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="render one snapshot and exit (no tailing)",
    )

    analyze = sub.add_parser(
        "analyze",
        help="cross-run statistical analysis of BENCH_*.json "
        "trajectories: Mann-Whitney U comparisons, bootstrap CIs, "
        "trajectory anomaly detection, HTML report",
    )
    analyze.add_argument(
        "trajectories", nargs="*", metavar="BENCH_JSON",
        help="benchmark trajectory files (default: BENCH_*.json in the "
        "working directory)",
    )
    analyze.add_argument(
        "--html", default=None, metavar="PATH",
        help="write the self-contained HTML report here",
    )
    analyze.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="write the raw analysis dict as JSON here",
    )
    analyze.add_argument(
        "--telemetry", default=None, metavar="TELEMETRY_JSON",
        help="also screen a telemetry artifact's wall/RSS trajectories",
    )
    analyze.add_argument(
        "--seed", type=int, default=0,
        help="bootstrap resampling seed (default: 0)",
    )
    analyze.add_argument(
        "--resamples", type=int, default=2000,
        help="bootstrap resample count (default: 2000)",
    )
    analyze.add_argument(
        "--window", type=int, default=5,
        help="trailing-median window (default: 5)",
    )
    analyze.add_argument(
        "--threshold", type=float, default=1.5,
        help="outlier ratio threshold against the trailing median "
        "(default: 1.5)",
    )

    # `repro lint` and `repro sanitize` own their argument surfaces
    # (lint is also runnable as `python -m repro.lint`): main() forwards
    # everything after the subcommand name before this parser ever runs,
    # so the entries here only exist for `repro --help`.
    sub.add_parser(
        "lint",
        help="determinism & purity static analysis (rules REP001-REP010; "
        "see docs/static-analysis.md)",
        add_help=False,
    )
    sub.add_parser(
        "sanitize",
        help="schedule sanitizer: perturb same-instant event ties and "
        "assert metrics/traces stay bit-identical "
        "(see docs/static-analysis.md)",
        add_help=False,
    )

    metrics = sub.add_parser(
        "metrics",
        help="print a run's harness-telemetry rollup (JSON or Prometheus "
        "text exposition)",
    )
    _add_telemetry_source_arguments(metrics)
    metrics.add_argument(
        "--format", choices=("json", "prom"), default="json",
        help="output format (default: json)",
    )
    metrics.add_argument(
        "--merged", action="store_true",
        help="merge every recorded run's rollup instead of showing one run",
    )
    metrics.add_argument(
        "--check", action="store_true",
        help="smoke mode: exit 0 iff the artifact holds at least one "
        "run with a non-empty rollup (prints a one-line summary)",
    )

    profile = sub.add_parser(
        "profile",
        help="top-N telemetry span table (self/cumulative wall time) for "
        "a run",
    )
    _add_telemetry_source_arguments(profile)
    profile.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the top N spans (default: all)",
    )
    profile.add_argument(
        "--sort", choices=("self", "cum", "count"), default="cum",
        help="ranking column (default: cum)",
    )
    profile.add_argument(
        "--compare", default=None, metavar="RUN",
        help="delta view against another run: an entry index into the "
        "same artifact, or a path to another telemetry artifact "
        "(its latest run)",
    )

    return parser


def _cmd_measure(args: argparse.Namespace) -> int:
    import numpy as np

    from .metrics import Cdf
    from .trace import (
        SynthesisConfig,
        TraceSynthesizer,
        all_inconsistencies,
        infer_ttl,
        provider_inconsistencies,
        theory_rmse,
        tree_existence_analysis,
    )

    config = SynthesisConfig(n_servers=args.servers, n_days=args.days)
    trace = TraceSynthesizer(config, master_seed=args.seed).synthesize()
    if args.save:
        trace.save(args.save)
    lengths = all_inconsistencies(trace)
    cdf = Cdf(lengths)
    inference = infer_ttl(lengths)
    provider = provider_inconsistencies(trace)
    evidence = tree_existence_analysis(trace)
    print("trace: %d servers x %d days, %d polls" % (
        trace.n_servers, trace.n_days, trace.total_polls()))
    print("inconsistency: mean %.1f s, %.1f%% < 10 s, %.1f%% > 50 s" % (
        lengths.mean(), 100 * cdf.at(10.0), 100 * cdf.fraction_above(50.0)))
    print("inferred TTL: %.0f s (rmse@60=%.3f, rmse@80=%.3f)" % (
        inference.ttl_s, theory_rmse(lengths, 60.0), theory_rmse(lengths, 80.0)))
    print("provider inconsistency: mean %.2f s (%.0f%% < 10 s)" % (
        provider.mean(), 100 * float(np.mean(provider < 10.0))))
    print("infrastructure: %s" % evidence.summary())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .experiments import TestbedConfig, build_deployment

    config = TestbedConfig(
        n_servers=args.servers,
        users_per_server=args.users_per_server,
        n_updates=args.updates,
        game_duration_s=args.duration,
        server_ttl_s=args.server_ttl,
        seed=args.seed,
    )
    metrics = build_deployment(config, args.method, args.infrastructure).run()
    print("deployment: %s" % metrics.name)
    print("mean server inconsistency: %.2f s" % metrics.mean_server_lag)
    print("mean end-user inconsistency: %.2f s" % metrics.mean_user_lag)
    print("traffic cost: %.3e km*KB" % metrics.cost_km_kb)
    print("messages: %d update bodies, %d light" % (
        metrics.update_messages, metrics.light_messages))
    print("provider sent: %d update/response messages" % (
        metrics.provider_response_messages))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.config import ci_scale, paper_scale, planet_scale, smoke_scale
    from .runner import Runner, RunSpec

    base = {
        "smoke": smoke_scale,
        "ci": ci_scale,
        "paper": paper_scale,
        "planet": planet_scale,
    }[args.scale]()
    size_overrides = {}
    if args.servers is not None:
        size_overrides["n_servers"] = args.servers
    if args.users_per_server is not None:
        size_overrides["users_per_server"] = args.users_per_server
    if args.user_metrics is not None:
        size_overrides["user_metrics"] = args.user_metrics
    if size_overrides:
        base = base.with_overrides(**size_overrides)
    ttls = args.server_ttls if args.server_ttls else [base.server_ttl_s]

    # No --scenarios keeps the legacy spec shape (default scenario, not
    # serialized), so existing registry entries still hit the cache.
    scenario_cells = [{}]
    if getattr(args, "scenarios", None):
        from .scenarios import resolve_scenario

        scenario_cells = []
        for name in args.scenarios:
            resolved = resolve_scenario(name)
            for index in range(resolved.n_cells(base)):
                scenario_cells.append(
                    {"scenario": resolved.name, "scenario_cell": index}
                )

    specs = []
    if args.systems:
        for system in args.systems:
            for ttl in ttls:
                for seed in args.seeds:
                    for extra in scenario_cells:
                        specs.append(
                            RunSpec(
                                config=base.with_overrides(
                                    server_ttl_s=ttl, seed=seed
                                ),
                                method=system,
                                kind="system",
                                **extra,
                            )
                        )
    else:
        for method in args.methods:
            for infrastructure in args.infrastructures:
                for ttl in ttls:
                    for seed in args.seeds:
                        for extra in scenario_cells:
                            specs.append(
                                RunSpec(
                                    config=base.with_overrides(
                                        server_ttl_s=ttl, seed=seed
                                    ),
                                    method=method,
                                    infrastructure=infrastructure,
                                    **extra,
                                )
                            )

    runner = Runner(workers=args.workers, registry=args.registry)
    if args.user_shards > 1:
        from .experiments.sharding import (
            merge_shard_metrics,
            shard_specs,
            shard_user_counts,
        )

        weights = shard_user_counts(base.users_per_server, args.user_shards)
        expanded = [shard_specs(spec, args.user_shards) for spec in specs]
        outcome = runner.run(
            [shard for cell in expanded for shard in cell]
        )
        rows = []
        cursor = 0
        for spec, cell in zip(specs, expanded):
            merged = merge_shard_metrics(
                outcome.metrics[cursor : cursor + len(cell)], weights
            )
            cursor += len(cell)
            rows.append((spec, merged))
    else:
        outcome = runner.run(specs)
        rows = outcome.pairs()

    header = ("spec", "ttl_s", "server_lag_s", "user_lag_s", "cost_km_kb")
    print("%-48s %8s %14s %12s %14s" % header)
    for spec, metrics in rows:
        print(
            "%-48s %8g %14.3f %12.3f %14.4g"
            % (
                spec.label,
                spec.config.server_ttl_s,
                metrics.mean_server_lag,
                metrics.mean_user_lag,
                metrics.cost_km_kb,
            )
        )
    print(outcome.stats.summary())
    return 0


def _scenario_scale_config(scale: str, seed: int):
    """Config for a scenario CLI scale name ('small' aliases smoke)."""
    from .experiments.config import ci_scale, paper_scale, smoke_scale

    factory = {
        "smoke": smoke_scale,
        "small": smoke_scale,
        "ci": ci_scale,
        "paper": paper_scale,
    }[scale]
    return factory(seed=seed)


def _cmd_scenario(args: argparse.Namespace) -> int:
    import json

    from .scenarios import resolve_scenario, scenario_names
    from .scenarios.registry import SCENARIO_REGISTRY

    if args.scenario_command == "list":
        rows = []
        for name in scenario_names():
            entry = SCENARIO_REGISTRY[name]
            rows.append(
                {
                    "name": name,
                    "aliases": list(entry.aliases),
                    "tags": list(entry.tags),
                    "summary": entry.summary,
                }
            )
        if args.json:
            json.dump(rows, sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            print("%-16s %-22s %s" % ("scenario", "aliases", "summary"))
            for row in rows:
                print(
                    "%-16s %-22s %s"
                    % (row["name"], ", ".join(row["aliases"]) or "-", row["summary"])
                )
        return 0

    if args.scenario_command == "describe":
        try:
            resolved = resolve_scenario(args.name)
        except ValueError as error:
            raise SystemExit(str(error))
        config = _scenario_scale_config(args.scale, seed=0)
        description = resolved.describe(config)
        if args.json:
            json.dump(description, sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            print("%s: %s" % (description["name"], description["summary"]))
            print("tags: %s" % (", ".join(description["tags"]) or "-"))
            print("cells (%s scale): %d" % (args.scale, description["n_cells"]))
            for cell in description["cells"]:
                overrides = ", ".join(
                    "%s=%s" % kv for kv in sorted(cell["config_overrides"].items())
                )
                perturbations = "; ".join(cell["perturbations"]) or "none"
                print(
                    "  [%d] %-14s weight=%.3f overrides={%s} perturbations: %s"
                    % (
                        cell["index"],
                        cell["label"],
                        cell["weight"],
                        overrides,
                        perturbations,
                    )
                )
        return 0

    from .runner import Runner

    runner = Runner(workers=args.workers, registry=args.registry)
    config = _scenario_scale_config(args.scale, seed=args.seed)

    if args.scenario_command == "run":
        from .scenarios import run_scenario

        kind = "system" if args.system else "deployment"
        method = args.system if args.system else args.method
        try:
            figure = run_scenario(
                args.name,
                config,
                method=method,
                infrastructure=args.infrastructure,
                kind=kind,
                runner=runner,
            )
        except ValueError as error:
            raise SystemExit(str(error))
        if args.json:
            json.dump(figure.to_dict(), sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
            return 0
        target = (
            "system:%s" % method
            if kind == "system"
            else "%s/%s" % (method, args.infrastructure)
        )
        print("scenario: %s (%s)" % (figure.params["scenario"], target))
        print(
            "cells: %d; mean server lag %.3f s; mean user lag %.3f s; "
            "stale fraction %.4f"
            % (
                figure.summary["n_cells"],
                figure.summary["mean_server_lag"],
                figure.summary["mean_user_lag"],
                figure.summary["mean_stale_fraction"],
            )
        )
        print(
            "traffic: %.4g km*KB; %d update, %d light, %d dropped message(s)"
            % (
                figure.summary["cost_km_kb"],
                figure.summary["update_messages"],
                figure.summary["light_messages"],
                figure.summary["dropped_messages"],
            )
        )
        if figure.summary["node_downtime_s"]:
            print("node downtime: %.1f s" % figure.summary["node_downtime_s"])
        if figure.stats is not None:
            print(figure.stats.summary())
        return 0

    # compare
    from .scenarios import compare_scenarios

    names = list(args.names) if args.names else list(scenario_names())
    try:
        figure = compare_scenarios(
            names,
            config,
            method=args.method,
            infrastructure=args.infrastructure,
            runner=runner,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    if args.json:
        json.dump(figure.to_dict(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    print(
        "%-18s %6s %14s %12s %10s %14s"
        % ("scenario", "cells", "server_lag_s", "user_lag_s", "stale", "cost_km_kb")
    )
    for name in figure.summary["user_lag_ordering"]:
        rollup = figure.series[name]
        print(
            "%-18s %6d %14.3f %12.3f %10.4f %14.4g"
            % (
                name,
                rollup["n_cells"],
                rollup["mean_server_lag"],
                rollup["mean_user_lag"],
                rollup["mean_stale_fraction"],
                rollup["cost_km_kb"],
            )
        )
    print(
        "best: %s; worst: %s (by mean user lag)"
        % (figure.summary["best_scenario"], figure.summary["worst_scenario"])
    )
    if figure.stats is not None:
        print(figure.stats.summary())
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .core import MethodAdvisor, WorkloadProfile

    profile = WorkloadProfile(
        update_rate_per_s=args.update_rate,
        visit_rate_per_s=args.visit_rate,
        n_servers=args.servers,
        silence_fraction=args.silence_fraction,
    )
    advisor = MethodAdvisor(update_size_kb=args.update_size_kb)
    rec = advisor.recommend(profile, staleness_tolerance_s=args.tolerance)
    print("recommendation: %s on %s" % (rec.method, rec.infrastructure))
    if rec.ttl_s is not None:
        print("ttl: %.0f s" % rec.ttl_s)
    print("expected replica staleness: %.1f s" % rec.expected_staleness_s)
    print("expected load: %.0f messages/h, %.0f KB/h" % (
        rec.expected_messages_per_hour, rec.expected_kb_per_hour))
    print("reason: %s" % rec.reason)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .experiments import TestbedConfig, build_deployment, build_system
    from .obs.attribution import format_attribution_table
    from .obs.sampling import SamplingTracer, StreamTracer

    config = TestbedConfig(
        n_servers=args.servers,
        users_per_server=args.users_per_server,
        n_updates=args.updates,
        game_duration_s=args.duration,
        server_ttl_s=args.server_ttl,
        seed=args.seed,
    )
    # Events stream to the output as they are emitted -- nothing buffers
    # the full event list, so a planet-scale dump's memory stays flat.
    # Under --sample-rate a deterministic SamplingTracer keeps a bounded
    # stratified reservoir instead (dumped after the run).
    handle = open(args.out, "w") if args.out else sys.stdout
    filters = dict(
        node=args.node,
        kinds=args.kind,
        since=args.since,
        until=args.until,
    )
    sampling = args.sample_rate is not None
    tracer: Any
    if sampling:
        tracer = SamplingTracer(
            seed=args.sample_seed if args.sample_seed is not None else args.seed,
            rate=args.sample_rate,
            per_kind_budget=args.budget,
        )
    else:
        tracer = StreamTracer(handle, limit=args.limit, **filters)
    try:
        if args.system is not None:
            deployment = build_system(config, args.system, tracer=tracer)
        else:
            deployment = build_deployment(
                config, args.method, args.infrastructure, tracer=tracer
            )
        metrics = deployment.run()
        if sampling:
            written = 0
            for event in tracer.events(**filters):
                if args.limit is not None and written >= args.limit:
                    break
                handle.write(event.to_json())
                handle.write("\n")
                written += 1
        else:
            written = tracer.written
    finally:
        if args.out:
            handle.close()

    log = sys.stderr
    log.write("deployment: %s\n" % metrics.name)
    total = sum(tracer.kind_counts().values())
    log.write(
        "trace: %d event(s) recorded, %d written%s\n"
        % (total, written, " to %s" % args.out if args.out else "")
    )
    if sampling:
        held = len(tracer)
        log.write(
            "sampling: rate=%g budget=%d seed=%d; %d event(s) held\n"
            % (tracer.rate, tracer.per_kind_budget, tracer.seed, held)
        )
    counts = tracer.kind_counts()
    log.write(
        "kinds: %s\n"
        % ", ".join("%s=%d" % (kind, counts[kind]) for kind in sorted(counts))
    )
    if args.attribution:
        for line in format_attribution_table({metrics.name: metrics}):
            log.write(line + "\n")
    return 0


def _resolve_progress_path(args: argparse.Namespace) -> str:
    import os

    from .obs.live import default_progress_path
    from .runner.registry import REGISTRY_ENV

    if args.progress:
        return args.progress
    registry = args.registry or os.environ.get(REGISTRY_ENV)
    if not registry:
        raise SystemExit(
            "no progress source: pass PROGRESS_JSON, --registry, or set "
            "$%s" % REGISTRY_ENV
        )
    return default_progress_path(registry)


def _cmd_watch(args: argparse.Namespace) -> int:
    import time

    from .obs.live import (
        heartbeat_dir,
        read_heartbeats,
        read_progress,
        render_watch,
    )

    path = _resolve_progress_path(args)
    beats_dir = heartbeat_dir(path)
    while True:
        progress = read_progress(path)
        beats = read_heartbeats(beats_dir)
        for line in render_watch(progress, beats):
            print(line)
        if args.once:
            return 0
        if progress is not None and progress.get("status") in (
            "done", "failed",
        ):
            return 0 if progress.get("status") == "done" else 1
        print()
        sys.stdout.flush()
        time.sleep(max(0.1, args.interval))


def _default_trajectories() -> List[str]:
    import glob

    return sorted(glob.glob("BENCH_*.json"))


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from .experiments.analysis import (
        analyze_trajectories,
        render_html,
        render_text,
    )

    paths = args.trajectories or _default_trajectories()
    if not paths:
        print("analyze: no BENCH_*.json trajectories found", file=sys.stderr)
        return 2
    try:
        analysis = analyze_trajectories(
            paths,
            seed=args.seed,
            resamples=args.resamples,
            window=args.window,
            threshold=args.threshold,
            telemetry_path=args.telemetry,
        )
    except ValueError as error:
        print("analyze: %s" % error, file=sys.stderr)
        return 2
    for line in render_text(analysis):
        print(line)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(analysis, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.json_out, file=sys.stderr)
    if args.html:
        with open(args.html, "w") as handle:
            handle.write(render_html(analysis))
        print("wrote %s" % args.html, file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import ReportScale, generate_report
    from .runner import Runner

    scale = (
        ReportScale.small(args.seed)
        if args.scale == "small"
        else ReportScale.medium(args.seed)
    )
    runner = Runner(workers=args.workers, registry=args.registry)
    markdown = generate_report(scale, log=sys.stderr, runner=runner)
    with open(args.out, "w") as handle:
        handle.write(markdown)
    print("wrote %s" % args.out)
    if args.html:
        from .experiments.analysis import analyze_trajectories, render_html

        trajectories = _default_trajectories()
        if trajectories:
            analysis = analyze_trajectories(trajectories, seed=args.seed)
            with open(args.html, "w") as handle:
                handle.write(render_html(analysis))
            print("wrote %s" % args.html)
        else:
            print(
                "report: no BENCH_*.json trajectories; skipping --html",
                file=sys.stderr,
            )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from .obs.telemetry import merged_rollup, prometheus_exposition

    path = _resolve_telemetry_artifact(args)
    artifact, entry = _load_run_entry(path, args.run)
    if args.check:
        rollup = entry.get("rollup") or {}
        populated = bool(rollup.get("spans") or rollup.get("counters"))
        print(
            "telemetry %s: %d run(s); latest: %d spec(s), %d worker(s), "
            "%.2f s wall, rollup %s"
            % (
                path,
                len(artifact["runs"]),
                entry.get("n_specs", 0),
                entry.get("workers", 0),
                entry.get("wall_time_s", 0.0),
                "ok" if populated else "EMPTY",
            )
        )
        return 0 if populated else 2
    snapshot = merged_rollup(artifact) if args.merged else entry.get("rollup") or {}
    if args.format == "prom":
        sys.stdout.write(prometheus_exposition(snapshot))
    else:
        json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs.telemetry import format_span_table, span_total_s

    path = _resolve_telemetry_artifact(args)
    artifact, entry = _load_run_entry(path, args.run)
    rollup = entry.get("rollup") or {}
    if args.compare is not None:
        try:
            other_entry = _load_run_entry(path, int(args.compare))[1]
        except ValueError:
            other_entry = _load_run_entry(args.compare, -1)[1]
        base = other_entry.get("rollup") or {}
        print(
            "span deltas (this run minus baseline; negative self = faster):"
        )
        print(
            "%-38s %8s %12s %12s"
            % ("span", "dcount", "dself (s)", "dcum (s)")
        )
        names = sorted(
            set(rollup.get("spans", {})) | set(base.get("spans", {}))
        )
        zero = {"count": 0, "cum_s": 0.0, "self_s": 0.0}
        for name in names:
            ours = rollup.get("spans", {}).get(name, zero)
            theirs = base.get("spans", {}).get(name, zero)
            print(
                "%-38s %+8d %+12.4f %+12.4f"
                % (
                    name,
                    ours["count"] - theirs["count"],
                    ours["self_s"] - theirs["self_s"],
                    ours["cum_s"] - theirs["cum_s"],
                )
            )
        print(
            "total self: %.4f s vs %.4f s"
            % (span_total_s(rollup), span_total_s(base))
        )
        return 0
    for line in format_span_table(rollup, top=args.top, sort=args.sort):
        print(line)
    print(
        "recorded wall time: %.4f s (%d spec(s), %d worker(s))"
        % (
            entry.get("wall_time_s", 0.0),
            entry.get("n_specs", 0),
            entry.get("workers", 0),
        )
    )
    return 0


_COMMANDS = {
    "measure": _cmd_measure,
    "evaluate": _cmd_evaluate,
    "sweep": _cmd_sweep,
    "scenario": _cmd_scenario,
    "advise": _cmd_advise,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "watch": _cmd_watch,
    "analyze": _cmd_analyze,
    "metrics": _cmd_metrics,
    "profile": _cmd_profile,
}


def main(argv: Optional[List[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        from .lint.cli import main as lint_main

        return lint_main(arguments[1:])
    if arguments and arguments[0] == "sanitize":
        from .experiments.sanitize import main as sanitize_main

        return sanitize_main(arguments[1:])
    args = build_parser().parse_args(arguments)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
