"""Command-line interface.

Four subcommands mirroring the paper's workflow::

    python -m repro measure    # Section 3: synthesize + analyse a crawl
    python -m repro evaluate   # Section 4: one method on one infrastructure
    python -m repro advise     # guidance: recommend a method from rates
    python -m repro report     # regenerate the EXPERIMENTS.md report
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Measuring and Evaluating Live Content "
        "Consistency in a Large-Scale CDN' (ICDCS'14 / TPDS'15)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    measure = sub.add_parser(
        "measure", help="synthesize a CDN crawl and run the Section 3 analyses"
    )
    measure.add_argument("--servers", type=int, default=150)
    measure.add_argument("--days", type=int, default=5)
    measure.add_argument("--seed", type=int, default=0)
    measure.add_argument("--save", metavar="PATH", help="save the trace as JSON")

    evaluate = sub.add_parser(
        "evaluate", help="run one update method on one infrastructure (Section 4)"
    )
    evaluate.add_argument(
        "--method",
        default="ttl",
        choices=("push", "invalidation", "ttl", "self-adaptive", "adaptive-ttl", "dynamic"),
    )
    evaluate.add_argument(
        "--infrastructure", default="unicast", choices=("unicast", "multicast", "broadcast")
    )
    evaluate.add_argument("--servers", type=int, default=60)
    evaluate.add_argument("--users-per-server", type=int, default=3)
    evaluate.add_argument("--updates", type=int, default=100)
    evaluate.add_argument("--duration", type=float, default=2920.0)
    evaluate.add_argument("--server-ttl", type=float, default=10.0)
    evaluate.add_argument("--seed", type=int, default=0)

    advise = sub.add_parser(
        "advise", help="recommend an update method from workload rates"
    )
    advise.add_argument("--update-rate", type=float, required=True,
                        help="updates per second at the origin")
    advise.add_argument("--visit-rate", type=float, required=True,
                        help="visits per second per edge server")
    advise.add_argument("--servers", type=int, required=True)
    advise.add_argument("--tolerance", type=float, required=True,
                        help="staleness tolerance in seconds")
    advise.add_argument("--silence-fraction", type=float, default=0.0)
    advise.add_argument("--update-size-kb", type=float, default=10.0)

    report = sub.add_parser("report", help="regenerate the EXPERIMENTS.md report")
    report.add_argument("--scale", choices=("small", "medium"), default="small")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--out", default="EXPERIMENTS.md")

    return parser


def _cmd_measure(args: argparse.Namespace) -> int:
    import numpy as np

    from .metrics import Cdf
    from .trace import (
        SynthesisConfig,
        TraceSynthesizer,
        all_inconsistencies,
        infer_ttl,
        provider_inconsistencies,
        theory_rmse,
        tree_existence_analysis,
    )

    config = SynthesisConfig(n_servers=args.servers, n_days=args.days)
    trace = TraceSynthesizer(config, master_seed=args.seed).synthesize()
    if args.save:
        trace.save(args.save)
    lengths = all_inconsistencies(trace)
    cdf = Cdf(lengths)
    inference = infer_ttl(lengths)
    provider = provider_inconsistencies(trace)
    evidence = tree_existence_analysis(trace)
    print("trace: %d servers x %d days, %d polls" % (
        trace.n_servers, trace.n_days, trace.total_polls()))
    print("inconsistency: mean %.1f s, %.1f%% < 10 s, %.1f%% > 50 s" % (
        lengths.mean(), 100 * cdf.at(10.0), 100 * cdf.fraction_above(50.0)))
    print("inferred TTL: %.0f s (rmse@60=%.3f, rmse@80=%.3f)" % (
        inference.ttl_s, theory_rmse(lengths, 60.0), theory_rmse(lengths, 80.0)))
    print("provider inconsistency: mean %.2f s (%.0f%% < 10 s)" % (
        provider.mean(), 100 * float(np.mean(provider < 10.0))))
    print("infrastructure: %s" % evidence.summary())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .experiments import TestbedConfig, build_deployment

    config = TestbedConfig(
        n_servers=args.servers,
        users_per_server=args.users_per_server,
        n_updates=args.updates,
        game_duration_s=args.duration,
        server_ttl_s=args.server_ttl,
        seed=args.seed,
    )
    metrics = build_deployment(config, args.method, args.infrastructure).run()
    print("deployment: %s" % metrics.name)
    print("mean server inconsistency: %.2f s" % metrics.mean_server_lag)
    print("mean end-user inconsistency: %.2f s" % metrics.mean_user_lag)
    print("traffic cost: %.3e km*KB" % metrics.cost_km_kb)
    print("messages: %d update bodies, %d light" % (
        metrics.update_messages, metrics.light_messages))
    print("provider sent: %d update/response messages" % (
        metrics.provider_response_messages))
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .core import MethodAdvisor, WorkloadProfile

    profile = WorkloadProfile(
        update_rate_per_s=args.update_rate,
        visit_rate_per_s=args.visit_rate,
        n_servers=args.servers,
        silence_fraction=args.silence_fraction,
    )
    advisor = MethodAdvisor(update_size_kb=args.update_size_kb)
    rec = advisor.recommend(profile, staleness_tolerance_s=args.tolerance)
    print("recommendation: %s on %s" % (rec.method, rec.infrastructure))
    if rec.ttl_s is not None:
        print("ttl: %.0f s" % rec.ttl_s)
    print("expected replica staleness: %.1f s" % rec.expected_staleness_s)
    print("expected load: %.0f messages/h, %.0f KB/h" % (
        rec.expected_messages_per_hour, rec.expected_kb_per_hour))
    print("reason: %s" % rec.reason)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import ReportScale, generate_report

    scale = (
        ReportScale.small(args.seed)
        if args.scale == "small"
        else ReportScale.medium(args.seed)
    )
    markdown = generate_report(scale, log=sys.stderr)
    with open(args.out, "w") as handle:
        handle.write(markdown)
    print("wrote %s" % args.out)
    return 0


_COMMANDS = {
    "measure": _cmd_measure,
    "evaluate": _cmd_evaluate,
    "advise": _cmd_advise,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
