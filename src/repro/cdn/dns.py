"""DNS-based server assignment.

Reproduces the redirection behaviour of Section 3.3: the local DNS
server caches a content server's IP for a short TTL; when it expires the
authoritative DNS reassigns a (possibly different) nearby server with
load balancing, so 13-17% of a user's visits land on a different server
than the previous visit -- which is how users come to observe
inconsistency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..network.node import NetworkNode
from ..sim.rng import RandomStream

__all__ = ["DnsDirectory"]


@dataclass
class _CachedAssignment:
    server: NetworkNode
    expires_at: float


class DnsDirectory:
    """Local-DNS cache in front of an authoritative, load-balancing DNS."""

    def __init__(
        self,
        servers: Sequence[NetworkNode],
        stream: RandomStream,
        dns_ttl_s: float = 60.0,
        candidates: int = 4,
    ) -> None:
        if not servers:
            raise ValueError("need at least one server")
        if candidates <= 0:
            raise ValueError("candidates must be positive")
        self.servers = list(servers)
        self.stream = stream
        self.dns_ttl_s = dns_ttl_s
        self.candidates = min(candidates, len(self.servers))
        self._cache: Dict[str, _CachedAssignment] = {}
        self._nearest: Dict[str, List[NetworkNode]] = {}
        #: Counters for measurement: resolutions answered from cache vs
        #: re-assigned by the authoritative DNS.
        self.cache_hits = 0
        self.authoritative_queries = 0

    # ------------------------------------------------------------------
    def _candidate_servers(self, user: NetworkNode) -> List[NetworkNode]:
        cached = self._nearest.get(user.node_id)
        if cached is None:
            ranked = sorted(self.servers, key=user.distance_km)
            cached = ranked[: self.candidates]
            self._nearest[user.node_id] = cached
        return cached

    def resolve(self, user: NetworkNode, now: float) -> NetworkNode:
        """The server *user* should contact at time *now*."""
        assignment = self._cache.get(user.node_id)
        if assignment is not None and now < assignment.expires_at and assignment.server.is_up:
            self.cache_hits += 1
            return assignment.server

        self.authoritative_queries += 1
        candidates = [s for s in self._candidate_servers(user) if s.is_up]
        if not candidates:
            candidates = [s for s in self.servers if s.is_up] or self.servers
        # Authoritative DNS balances load: uniform choice among the
        # nearby candidates (paper: "with load-balancing consideration").
        server = self.stream.choice(candidates)
        ttl = self.stream.uniform(0.5 * self.dns_ttl_s, 1.5 * self.dns_ttl_s)
        self._cache[user.node_id] = _CachedAssignment(server, now + ttl)
        return server

    def expire(self, user: NetworkNode) -> None:
        """Drop the cached assignment (e.g. after a failed request)."""
        self._cache.pop(user.node_id, None)
