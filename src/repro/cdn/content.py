"""Live content and its update schedule.

A :class:`LiveContent` is a single dynamic object (e.g. the live-game
statistics page of the paper) that goes through numbered *snapshots*:
version 0 exists from the start; version ``i`` (1-based) is created at
``update_times[i-1]``.  The schedule is the ground truth against which
all inconsistency is measured.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

__all__ = ["LiveContent", "DEFAULT_UPDATE_SIZE_KB", "DEFAULT_LIGHT_SIZE_KB"]

#: Paper Section 4: "The size of all consistency maintenance related
#: packages and content request packages were set to 1KB."
DEFAULT_UPDATE_SIZE_KB = 1.0
DEFAULT_LIGHT_SIZE_KB = 1.0


@dataclass
class LiveContent:
    """A dynamic content object with a fixed update schedule."""

    content_id: str
    update_times: List[float] = field(default_factory=list)
    update_size_kb: float = DEFAULT_UPDATE_SIZE_KB
    light_size_kb: float = DEFAULT_LIGHT_SIZE_KB

    def __post_init__(self) -> None:
        times = list(self.update_times)
        if any(t < 0 for t in times):
            raise ValueError("update times must be non-negative")
        if times != sorted(times):
            raise ValueError("update times must be sorted")
        self.update_times = times

    # ------------------------------------------------------------------
    @property
    def n_updates(self) -> int:
        """Number of updates (versions beyond the initial version 0)."""
        return len(self.update_times)

    @property
    def last_version(self) -> int:
        return self.n_updates

    def version_at(self, t: float) -> int:
        """The current version index at simulated time *t*."""
        return bisect.bisect_right(self.update_times, t)

    def creation_time(self, version: int) -> float:
        """The time version *version* came into existence."""
        if version == 0:
            return 0.0
        if not 1 <= version <= self.n_updates:
            raise ValueError("unknown version %r" % (version,))
        return self.update_times[version - 1]

    def next_update_after(self, t: float) -> float:
        """Time of the first update strictly after *t* (inf if none)."""
        idx = bisect.bisect_right(self.update_times, t)
        if idx >= len(self.update_times):
            return float("inf")
        return self.update_times[idx]

    def staleness(self, version: int, t: float) -> float:
        """How long version *version* has been outdated at time *t*.

        Zero if *version* is still the newest version at *t*; otherwise
        the time elapsed since the superseding version appeared.
        """
        if version >= self.version_at(t):
            return 0.0
        superseding = self.creation_time(version + 1)
        return max(0.0, t - superseding)

    def staleness_grid(self, versions: "np.ndarray", times: "np.ndarray") -> "np.ndarray":
        """Vectorised :meth:`staleness` over parallel version/time arrays.

        ``versions[i]`` is the held version at instant ``times[i]``;
        returns a float array equal element-wise (bit-identically) to
        ``[self.staleness(int(v), float(t)) for v, t in zip(...)]``.
        """
        versions = np.asarray(versions, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        update_times = np.asarray(self.update_times, dtype=np.float64)
        if update_times.size == 0:
            return np.zeros(times.shape, dtype=np.float64)
        # version_at(t) == searchsorted(update_times, t, side="right").
        current = np.searchsorted(update_times, times, side="right")
        stale = versions < current
        # creation_time(version + 1) == update_times[version] for
        # version >= 0 (and 0.0 for version -1); the index is only read
        # where ``stale`` holds (version < current <= n).
        clipped = np.clip(versions, 0, update_times.size - 1)
        superseding = np.where(versions < 0, 0.0, update_times[clipped])
        return np.where(stale, np.maximum(0.0, times - superseding), 0.0)

    def versions_in(self, start: float, end: float) -> Sequence[int]:
        """Version indices created in the window ``(start, end]``."""
        lo = bisect.bisect_right(self.update_times, start)
        hi = bisect.bisect_right(self.update_times, end)
        return range(lo + 1, hi + 1)
