"""Edge content servers.

A :class:`ServerActor` caches the live content and keeps it fresh
according to a pluggable *update-method policy* (TTL / Push /
Invalidation / self-adaptive -- see :mod:`repro.consistency`).  Servers
can also act as update sources for other servers (multicast-tree parents
and HAT supernodes) via :class:`~repro.cdn.base.UpdateSourceMixin`.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from ..network.link import NetworkFabric
from ..network.message import Message, MessageKind
from ..network.node import NetworkNode
from ..sim.engine import Environment, Event
from .base import Actor, UpdateSourceMixin
from .cache import TTLCache
from .content import LiveContent

__all__ = ["ServerActor", "schedule_absence"]


def _task_driver(
    generator: Generator[Event, Any, Any], first: Event
) -> Generator[Event, Any, None]:
    """Drive *generator* (whose first yielded event is *first*) as a
    process, proxying both resume values and thrown exceptions.

    Used by the fast kernel's :meth:`ServerActor._start_task`: the task
    body already ran up to its first ``yield``, so a plain ``yield from``
    would re-run it.  Exceptions are forwarded with ``throw`` so
    ``try``/``finally`` blocks inside the task (e.g. the invalidation
    policy's in-flight bookkeeping) behave exactly as under
    ``env.process(generator)``.
    """
    event = first
    while True:
        try:
            value = yield event
        except BaseException as exc:  # noqa: BLE001 - full proxy semantics
            try:
                event = generator.throw(exc)
            except StopIteration:
                return
        else:
            try:
                event = generator.send(value)
            except StopIteration:
                return


class ServerActor(Actor, UpdateSourceMixin):
    """A CDN edge server replicating one live content object."""

    def __init__(
        self,
        env: Environment,
        node: NetworkNode,
        fabric: NetworkFabric,
        content: LiveContent,
        policy,
        upstream: Optional[NetworkNode] = None,
    ) -> None:
        super().__init__(env, node, fabric)
        self.init_source()
        self.content = content
        self.cache = TTLCache()
        self.cache.entry(content.content_id)  # materialise version 0
        #: The node this server polls / fetches from (provider, tree
        #: parent, or HAT supernode).  Set by the infrastructure wiring.
        self.upstream = upstream
        #: Hooks ``f(version)`` run when a strictly newer version lands
        #: in the cache (used by supernodes to notify cluster members,
        #: and by experiments to record apply times).
        self.on_apply_hooks: List[Callable[[int], None]] = []
        self.policy = policy
        policy.bind(self)
        self._started = False
        self._policy_procs: List = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the policy's background processes (idempotent)."""
        if self._started:
            return
        self._started = True
        self._launch_policy_processes()

    def _launch_policy_processes(self) -> None:
        self._policy_procs = [
            self.env.process(self._supervise(generator))
            for generator in self.policy.processes()
        ]

    def _supervise(self, generator):
        """Run a policy process; a replace_policy interrupt ends it
        cleanly instead of crashing the simulation."""
        from ..sim.process import Interrupt

        try:
            yield from generator
        except Interrupt:
            return

    def replace_policy(self, policy) -> None:
        """Swap in a new update-method policy at runtime.

        Stops the old policy's background processes, binds the new
        policy, and (if the server was already started) launches the new
        policy's processes.  Used by HAT supernode failover, where a
        cluster member is promoted to a Push-fed supernode mid-run.
        """
        for process in self._policy_procs:
            if process.is_alive:
                process.interrupt("policy replaced")
        self._policy_procs = []
        policy.bind(self)
        self.policy = policy
        if self._started:
            self._launch_policy_processes()

    @property
    def cached_version(self) -> int:
        return self.cache.version_of(self.content.content_id)

    def source_version(self) -> int:
        return self.cached_version

    @property
    def is_invalidated(self) -> bool:
        return self.cache.entry(self.content.content_id).invalidated

    def apply_version(self, version: int, ttl: float = float("inf")) -> bool:
        """Store *version*; returns ``True`` (and fires hooks) if newer."""
        newer = self.cache.store(self.content.content_id, version, self.env.now, ttl)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.emit(
                self.env.now, "cache_store", self.node.node_id,
                version=version, newer=newer,
            )
        if newer:
            for hook in self.on_apply_hooks:
                hook(version)
        return newer

    def mark_invalidated(self, version: Optional[int]) -> bool:
        stale = self.cache.invalidate(self.content.content_id, version)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.emit(
                self.env.now, "cache_invalidate", self.node.node_id,
                version=version, stale=stale,
            )
        return stale

    def apply_log(self):
        """(time, version) cache-write history for metrics."""
        return self.cache.apply_log(self.content.content_id)

    def _start_task(self, generator: Generator[Event, Any, Any]) -> None:
        """Run a message-triggered task (poll/fetch answer, serve).

        Legacy kernel: a full :class:`~repro.sim.process.Process` per
        task.  Fast kernel: run the body synchronously up to its first
        ``yield`` -- the common eager-TTL / push / fresh-invalidation
        case completes without yielding at all, costing **zero** kernel
        events instead of a process + ``_Initialize`` pop -- and only
        tasks that actually wait get a driver process.
        """
        if self.env.legacy_kernel:
            self.env.process(generator)
            return
        try:
            first = next(generator)
        except StopIteration:
            return
        self.env.process(_task_driver(generator, first))

    # ------------------------------------------------------------------
    def handle(self, message: Message) -> None:
        kind = message.kind
        if kind is MessageKind.PUSH_UPDATE:
            self.policy.on_push(message)
        elif kind is MessageKind.INVALIDATE:
            self.policy.on_invalidate(message)
        elif kind is MessageKind.POLL:
            self._start_task(self._answer_poll(message))
        elif kind is MessageKind.FETCH:
            self._start_task(self._answer_fetch(message))
        elif kind is MessageKind.SWITCH_NOTICE:
            self.handle_switch(message)
        elif kind is MessageKind.CONTENT_REQUEST:
            self._start_task(self._serve(message))
        elif kind is MessageKind.TREE_MAINTENANCE:
            pass  # handled by the infrastructure's repair process
        else:
            raise NotImplementedError("server cannot handle %s" % kind)

    def _answer_poll(self, message: Message):
        # A stale intermediate (invalidation semantics) recovers before
        # answering, so staleness does not silently cascade down a tree.
        yield from self.policy.ensure_fresh()
        self.handle_poll(message)

    def _answer_fetch(self, message: Message):
        yield from self.policy.ensure_fresh()
        self.handle_fetch(message)

    def _serve(self, message: Message):
        version = yield from self.policy.serve(message)
        self.reply(
            message,
            MessageKind.CONTENT_RESPONSE,
            self.content.update_size_kb,
            version=version,
        )


def schedule_absence(env: Environment, node: NetworkNode, start: float, duration: float):
    """Take *node* down during ``[start, start + duration)``.

    Models the server overloads / failures of Section 3.4.5: a down node
    neither transmits nor receives; in-flight messages to it are dropped.
    Overlapping windows nest: each window counts one active absence
    (:meth:`~repro.network.node.NetworkNode.mark_down` /
    :meth:`~repro.network.node.NetworkNode.mark_up`), so the node is up
    again only when *every* overlapping window has ended -- the first
    window's end no longer revives a node another window still holds
    down.  Up/down transitions are traced as ``node_down`` /
    ``node_up``.  Returns the injection process.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")

    def injector():
        if start > env.now:
            yield env.pooled_timeout(start - env.now)
        node.mark_down()
        yield env.pooled_timeout(duration)
        node.mark_up()

    return env.process(injector())
