"""Struct-of-arrays end-user plane (the fast kernel's cohort path).

Every end user in the legacy plane is an :class:`~repro.cdn.client.EndUserActor`:
a Python object holding a generator-based visit loop, a pending-request
dict, an observation list and a waiter :class:`~repro.sim.engine.Event`
per in-flight request.  At the paper's scale (850 users) that is
invisible; at the ROADMAP's planet scale (1M+ users) the actor plane
dominates both memory and GC time -- hundreds of thousands of live
generator frames and per-visit allocations that the cyclic collector
re-traverses over and over.

:class:`UserCohort` replaces all of it with one object per deployment:

- per-slot state (poll TTL, failed-visit count, home/last server,
  running staleness accumulators) lives in parallel unboxed arrays --
  numpy when importable, :mod:`array` otherwise (see
  :data:`ARRAY_BACKEND`); every metric-facing computation is written as
  the same scalar loop either way, so the backends are bit-identical;
- visit deadlines live in one binary heap swept by a single reusable
  control event (scheduled with
  :meth:`~repro.sim.engine.Environment.schedule_at` for the exact float
  deadline the legacy per-user pooled timeout would have used);
- request timeouts share one monotone
  :class:`~repro.sim.timers.CallbackLane` (all requests use the same
  ``REQUEST_TIMEOUT_S`` delay, so deadlines arrive pre-sorted) with
  answered requests pruned lazily;
- observations feed the incremental staleness trackers directly -- per
  slot in ``per-user`` mode, or through
  :class:`~repro.metrics.incremental.AggregateUserMetrics` scalar
  accumulators in ``aggregate`` mode (no observation retention at all).

Determinism contract (the differential suite in
``tests/test_user_plane_equivalence.py`` pins all of it):

- Per-visit *network* behaviour is unchanged: the same
  :class:`~repro.network.message.Message` objects (same global sequence
  numbers) travel the same fabric with the same jitter draws, so
  counters, traces and cause attribution are bit-identical to the actor
  plane.
- Selector RNG draws (the switch-every-visit stream) happen at the same
  simulated instants in the same global order.
- Visit instants are exactly the floats the actor plane computes:
  ``response_time + ttl`` / ``timeout_time + ttl``, with the TTL read at
  push time (so mid-run TTL perturbations apply from the next visit,
  like the legacy ``pooled_timeout(self.user_ttl_s)`` read).
- Same-instant visit expiries run in arming order, matching the event-id
  order of the legacy per-user timeouts.  (With the default start-window
  jitter, distinct users collide with probability zero; the known edge
  is ``user_start_window_s=0``, where first visits run at t=0 after --
  not interleaved with -- actor process inits.  The testbed never builds
  that combination differentially.)

The legacy plane stays fully supported: ``REPRO_LEGACY_USERS=1`` (or the
legacy kernel) builds actors instead, which is how the differential
suite drives both arms.
"""

from __future__ import annotations

import os
from array import array as _stdarray
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..metrics.incremental import AggregateUserMetrics, UserObservationTracker
from ..network.message import Message, MessageKind
from ..sim.engine import Environment, Event
from ..sim.timers import CallbackLane
from .base import RESPONSE_KINDS
from .client import (
    REQUEST_TIMEOUT_S,
    FixedSelector,
    Observation,
    SwitchEveryVisitSelector,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..network.link import NetworkFabric
    from ..network.node import NetworkNode
    from ..sim.rng import RandomStream
    from .content import LiveContent

__all__ = [
    "UserCohort",
    "ARRAY_BACKEND",
    "LEGACY_USERS_ENV",
    "COHORT_BACKEND_ENV",
    "legacy_users_enabled",
]

#: Environment variable selecting the legacy per-user actor plane on the
#: fast kernel (the PR 3 / PR 7 switch pattern).  Read at build time by
#: :func:`legacy_users_enabled`; the legacy *kernel* implies it.
LEGACY_USERS_ENV = "REPRO_LEGACY_USERS"

#: Environment variable forcing the pure-Python array backend even when
#: numpy is importable (``REPRO_COHORT_BACKEND=array``).  Read once at
#: import time.
COHORT_BACKEND_ENV = "REPRO_COHORT_BACKEND"


def legacy_users_enabled() -> bool:
    """``True`` when the environment opts into the per-user actor plane."""
    return os.environ.get(LEGACY_USERS_ENV, "") not in ("", "0")


# ----------------------------------------------------------------------
# array backends
# ----------------------------------------------------------------------
try:  # pragma: no cover - import guard
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]


class _NumpyBackend:
    """Unboxed per-slot storage on numpy arrays.

    Scalar reads off these arrays return numpy scalars, so every caller
    coerces with ``float()``/``int()`` before the value can reach the
    event heap or a metrics dict -- ``Environment.now`` stays a builtin
    float and registry JSON stays serialisable.
    """

    name = "numpy"

    @staticmethod
    def full_f(n: int, value: float) -> Any:
        return _np.full(n, value, dtype=_np.float64)

    @staticmethod
    def zeros_i(n: int) -> Any:
        return _np.zeros(n, dtype=_np.int64)


class _PurePythonBackend:
    """Same layout on :mod:`array` arrays (the numpy-free fallback)."""

    name = "array"

    @staticmethod
    def full_f(n: int, value: float) -> Any:
        return _stdarray("d", [value]) * n

    @staticmethod
    def zeros_i(n: int) -> Any:
        return _stdarray("q", [0]) * n


def _select_backend() -> Any:
    if _np is None or os.environ.get(COHORT_BACKEND_ENV, "") in ("array", "python"):
        return _PurePythonBackend
    return _NumpyBackend


#: The backend selected at import time.  Tests may swap this module
#: global (or set ``REPRO_COHORT_BACKEND=array`` before import) to force
#: the fallback; results are bit-identical either way because all
#: arithmetic runs in scalar Python space.
ARRAY_BACKEND = _select_backend()

_INF = float("inf")
_CONTENT_REQUEST = MessageKind.CONTENT_REQUEST


class UserCohort:
    """All end users of one deployment, stored column-wise.

    Construction mirrors ``testbed._make_users``: *nodes* in home-server
    -major slot order, *start_offsets* drawn per slot from the same
    stream the actor plane uses.  Exactly one of *targets* (fixed
    selector: the home server node per slot) or *switch_servers* +
    *switch_stream* (the Fig. 24 switch-every-visit selector) must be
    given.
    """

    __slots__ = (
        "env",
        "fabric",
        "content",
        "nodes",
        "backend",
        "user_metrics",
        "aggregate",
        "trackers",
        "_ttl",
        "_failed",
        "_start_offsets",
        "_fixed",
        "_targets",
        "_switch_servers",
        "_switch_stream",
        "_switch_last",
        "_switch_view",
        "_pending",
        "_visit_heap",
        "_order",
        "_armed_event",
        "_armed_at",
        "_timeouts",
        "_timeout_s",
        "_light_kb",
        "_observations",
        "_views",
        "_started",
        "sweeps",
        "visits_started",
    )

    def __init__(
        self,
        env: Environment,
        fabric: "NetworkFabric",
        content: "LiveContent",
        nodes: Sequence["NetworkNode"],
        *,
        user_ttl_s: float,
        start_offsets: Sequence[float],
        targets: Optional[Sequence["NetworkNode"]] = None,
        switch_servers: Optional[Sequence["NetworkNode"]] = None,
        switch_stream: Optional["RandomStream"] = None,
        user_metrics: str = "per-user",
        request_timeout_s: float = REQUEST_TIMEOUT_S,
    ) -> None:
        if user_ttl_s <= 0:
            raise ValueError("user_ttl_s must be positive")
        if user_metrics not in ("per-user", "aggregate"):
            raise ValueError("user_metrics must be 'per-user' or 'aggregate'")
        n = len(nodes)
        if len(start_offsets) != n:
            raise ValueError("start_offsets must have one entry per node")
        if (targets is None) == (switch_servers is None):
            raise ValueError("give exactly one of targets / switch_servers")
        if targets is not None and len(targets) != n:
            raise ValueError("targets must have one entry per node")
        if switch_servers is not None:
            if not switch_servers:
                raise ValueError("need at least one server")
            if switch_stream is None:
                raise ValueError("switch_servers requires switch_stream")
        self.env = env
        self.fabric = fabric
        self.content = content
        self.nodes = list(nodes)
        backend = ARRAY_BACKEND
        self.backend = backend
        self.user_metrics = user_metrics
        self._ttl = backend.full_f(n, user_ttl_s)
        self._failed = backend.zeros_i(n)
        self._start_offsets = [float(offset) for offset in start_offsets]
        self._fixed = targets is not None
        self._targets: List["NetworkNode"] = list(targets) if targets is not None else []
        self._switch_servers: List["NetworkNode"] = (
            list(switch_servers) if switch_servers is not None else []
        )
        self._switch_stream = switch_stream
        self._switch_last: List[Optional["NetworkNode"]] = (
            [None] * n if switch_servers is not None else []
        )
        self._switch_view: Any = None
        #: In-flight requests: message seq -> (slot, request, target).
        #: The request message is retained for ``msg_timeout`` trace
        #: detail; the target for the visit traces and observations.
        self._pending: Dict[int, Tuple[int, Message, "NetworkNode"]] = {}
        self._visit_heap: List[Tuple[float, int, int]] = []
        self._order = 0
        self._armed_event: Optional[Event] = None
        self._armed_at = _INF
        self._timeouts = CallbackLane(env, self._on_request_timeout, self._request_done)
        self._timeout_s = float(request_timeout_s)
        self._light_kb = content.light_size_kb
        #: Stats for tests / docs: control-event sweeps and visits begun.
        self.sweeps = 0
        self.visits_started = 0
        if user_metrics == "aggregate":
            times = list(content.update_times)
            self.aggregate: Optional[AggregateUserMetrics] = AggregateUserMetrics(
                content, n, times=times
            )
            self.trackers: List[UserObservationTracker] = []
            self._observations: Optional[List[List[Tuple[float, int, str]]]] = None
        else:
            times = list(content.update_times)
            self.aggregate = None
            self.trackers = [
                UserObservationTracker(content, times=times) for _ in range(n)
            ]
            self._observations = [[] for _ in range(n)]
        self._views: Optional[List["_CohortUserView"]] = None
        self._started = False
        for node in self.nodes:
            node.consumer = self._consume

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return len(self.nodes)

    def start(self) -> None:
        """Arm every slot's first visit (idempotent)."""
        if self._started:
            return
        self._started = True
        heap = [
            (offset, slot, slot)
            for slot, offset in enumerate(self._start_offsets)
        ]
        heapify(heap)
        self._visit_heap = heap
        self._order = len(heap)
        if heap:
            self._arm(heap[0][0])

    # ------------------------------------------------------------------
    # visit-deadline heap + control event
    # ------------------------------------------------------------------
    def _arm(self, deadline: float) -> None:
        """(Re-)arm the sweep control event at *deadline*.

        A superseded control event (armed later than a newly pushed
        deadline) is lazily cancelled by clearing its callbacks -- the
        run loop skips processed entries without counting them -- and a
        fresh pre-triggered event takes its place, so exactly one live
        control entry exists at any time.
        """
        prev = self._armed_event
        if prev is not None and prev.callbacks is not None:
            if self._armed_at <= deadline:
                return
            prev.callbacks = None
        env = self.env
        event = Event(env)
        event._ok = True
        event._value = None
        event.callbacks = [self._sweep_visits]
        env.schedule_at(event, deadline)
        self._armed_event = event
        self._armed_at = deadline

    def _push_visit(self, deadline: float, slot: int) -> None:
        order = self._order
        self._order = order + 1
        heappush(self._visit_heap, (deadline, order, slot))
        self._arm(deadline)

    def _sweep_visits(self, _event: Event) -> None:
        self._armed_event = None
        self._armed_at = _INF
        env = self.env
        now = env._now
        heap = self._visit_heap
        while heap and heap[0][0] <= now:
            slot = heappop(heap)[2]
            self._begin_visit(slot, now)
        self.sweeps += 1
        if heap:
            self._arm(heap[0][0])

    # ------------------------------------------------------------------
    # the visit itself
    # ------------------------------------------------------------------
    def _begin_visit(self, slot: int, now: float) -> None:
        node = self.nodes[slot]
        if self._fixed:
            target = self._targets[slot]
        else:
            servers = self._switch_servers
            if len(servers) == 1:
                target = servers[0]
            else:
                # Same draw loop as SwitchEveryVisitSelector.select, with
                # the per-user ``_last`` held column-wise.
                stream = self._switch_stream
                assert stream is not None
                choice = stream.choice
                last = self._switch_last[slot]
                while True:
                    target = choice(servers)
                    if target is not last:
                        self._switch_last[slot] = target
                        break
        message = Message(
            kind=_CONTENT_REQUEST,
            src=node,
            dst=target,
            size_kb=self._light_kb,
            payload={},
        )
        self._pending[message.seq] = (slot, message, target)
        self.fabric.send(message)
        self._timeouts.push(now + self._timeout_s, message.seq)
        self.visits_started += 1

    def _request_done(self, seq: int) -> bool:
        """Dead-slot predicate for the timeout lane: answered requests
        leave ``_pending`` at response time and are pruned lazily."""
        return seq not in self._pending

    def _on_request_timeout(self, seq: int) -> None:
        entry = self._pending.pop(seq, None)
        if entry is None:  # pragma: no cover - pruned before firing
            return
        slot, message, target = entry
        env = self.env
        now = env._now
        tracer = env.tracer
        if tracer.enabled:
            node_id = self.nodes[slot].node_id
            tracer.emit(now, "msg_timeout", node_id, **message.trace_detail())
            tracer.emit(now, "visit_timeout", node_id, server=target.node_id)
        self._failed[slot] += 1
        self._push_visit(now + float(self._ttl[slot]), slot)

    def _consume(self, message: Message) -> None:
        """Fabric delivery hook shared by every user node of the cohort
        (mirrors ``Actor._consume`` + the visit loop's response half)."""
        if not message.dst.is_up:
            return
        if message.kind not in RESPONSE_KINDS:
            raise NotImplementedError(
                "UserCohort cannot handle %s" % (message.kind,)
            )
        payload = message.payload
        req_seq = payload.get("req") if isinstance(payload, dict) else None
        entry = self._pending.pop(req_seq, None) if req_seq is not None else None
        if entry is None:
            # No matching request (timed out / restarted): dropped,
            # matching the actor plane's UDP-style semantics.
            return
        slot, _request, target = entry
        env = self.env
        now = env._now
        version = message.version
        aggregate = self.aggregate
        if aggregate is not None:
            aggregate.on_observe(slot, now, version)
        else:
            observations = self._observations
            assert observations is not None
            observations[slot].append((now, version, target.node_id))
            self.trackers[slot].on_observe(now, version)
        tracer = env.tracer
        if tracer.enabled:
            tracer.emit(
                now, "visit", message.dst.node_id,
                server=target.node_id, version=version,
            )
        self._push_visit(now + float(self._ttl[slot]), slot)

    # ------------------------------------------------------------------
    # actor-shaped access (tests, perturbations, legacy collect)
    # ------------------------------------------------------------------
    @property
    def users(self) -> List["_CohortUserView"]:
        """Actor-shaped views, one per slot (built lazily, cached)."""
        views = self._views
        if views is None:
            if not self._fixed and self._switch_view is None:
                self._switch_view = _CohortSwitchSelector(self)
            views = self._views = [
                _CohortUserView(self, slot) for slot in range(len(self.nodes))
            ]
        return views

    def observations_of(self, slot: int) -> List[Observation]:
        """Materialise slot observations as :class:`Observation` objects
        (per-user mode only; aggregate mode retains no observations)."""
        observations = self._observations
        if observations is None:
            raise RuntimeError(
                "observations are not retained in aggregate user-metrics "
                "mode; use user_metrics='per-user' to keep per-visit logs"
            )
        return [
            Observation(time=time, version=version, server_id=server_id)
            for time, version, server_id in observations[slot]
        ]

    def failed_visits_of(self, slot: int) -> int:
        return int(self._failed[slot])

    def total_failed_visits(self) -> int:
        return int(sum(self._failed))

    def total_observations(self) -> int:
        if self.aggregate is not None:
            return int(sum(self.aggregate._total))
        observations = self._observations
        assert observations is not None
        return sum(len(slot_obs) for slot_obs in observations)


class _CohortFixedSelector(FixedSelector):
    """Per-slot write-through view of a cohort's fixed selector.

    ``isinstance(selector, FixedSelector)`` holds (the Reconfiguration
    perturbation filters on it) and assigning ``selector.server``
    re-homes the slot inside the cohort arrays.
    """

    def __init__(self, cohort: UserCohort, slot: int) -> None:
        # Deliberately no super().__init__: ``server`` is a property.
        self._cohort = cohort
        self._slot = slot

    @property
    def server(self) -> "NetworkNode":
        return self._cohort._targets[self._slot]

    @server.setter
    def server(self, node: "NetworkNode") -> None:
        self._cohort._targets[self._slot] = node

    def select(self, user: "NetworkNode", now: float, visit_index: int) -> "NetworkNode":
        return self._cohort._targets[self._slot]


class _CohortSwitchSelector(SwitchEveryVisitSelector):
    """Shared view of a switch-mode cohort's selector state.

    ``servers`` aliases the cohort's own list, so mutating it through
    the view changes every slot's candidate set, like the shared-list
    aliasing of the actor plane.  Per-slot ``_last`` state stays in the
    cohort arrays; this view's own ``_last`` is unused.
    """

    def __init__(self, cohort: UserCohort) -> None:
        stream = cohort._switch_stream
        assert stream is not None
        self.servers = cohort._switch_servers
        self.stream = stream
        self._last = None


class _CohortUserView:
    """Read-mostly actor-shaped view of one cohort slot.

    Exposes the ``EndUserActor`` surface that tests and perturbations
    touch: ``node``, ``selector``, ``observations``, ``failed_visits``,
    a writable ``user_ttl_s`` (FlashCrowd / DiurnalModulation write it
    mid-run) and a no-op ``start`` (the cohort manages its own timers).
    """

    __slots__ = ("_cohort", "_slot", "node", "content", "selector")

    def __init__(self, cohort: UserCohort, slot: int) -> None:
        self._cohort = cohort
        self._slot = slot
        self.node = cohort.nodes[slot]
        self.content = cohort.content
        if cohort._fixed:
            self.selector: Any = _CohortFixedSelector(cohort, slot)
        else:
            self.selector = cohort._switch_view

    @property
    def user_ttl_s(self) -> float:
        return float(self._cohort._ttl[self._slot])

    @user_ttl_s.setter
    def user_ttl_s(self, value: float) -> None:
        if value <= 0:
            raise ValueError("user_ttl_s must be positive")
        # Applies from the slot's next deadline push, exactly like the
        # actor plane's per-visit ``pooled_timeout(self.user_ttl_s)`` read.
        self._cohort._ttl[self._slot] = value

    @property
    def start_offset_s(self) -> float:
        return self._cohort._start_offsets[self._slot]

    @property
    def failed_visits(self) -> int:
        return self._cohort.failed_visits_of(self._slot)

    @property
    def observations(self) -> List[Observation]:
        return self._cohort.observations_of(self._slot)

    def start(self) -> None:
        """No-op: cohort slots are started by :meth:`UserCohort.start`."""
