"""Actor base classes.

An :class:`Actor` owns a :class:`~repro.network.node.NetworkNode`, runs a
dispatcher over the node's inbox, and provides a synchronous
request/response helper (requests and their responses are correlated by
the request's sequence number echoed in the response payload).

:class:`UpdateSourceMixin` is shared by the provider and by content
servers that serve updates to others (multicast-tree parents, HAT
supernodes): it answers polls and fetches from the actor's current
version and knows how to push / invalidate / notify downstream nodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Set

from ..network.link import NetworkFabric
from ..network.message import Message, MessageKind
from ..network.node import NetworkNode
from ..sim.engine import Environment, Event

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..sim.process import Process

__all__ = ["Actor", "UpdateSourceMixin", "RESPONSE_KINDS"]

#: Kinds that answer an earlier request and carry ``payload["req"]``.
RESPONSE_KINDS = frozenset(
    {
        MessageKind.POLL_RESPONSE,
        MessageKind.POLL_NOT_MODIFIED,
        MessageKind.FETCH_RESPONSE,
        MessageKind.CONTENT_RESPONSE,
        MessageKind.DNS_RESPONSE,
    }
)


class Actor:
    """Base class for provider / server / end-user actors."""

    def __init__(self, env: Environment, node: NetworkNode, fabric: NetworkFabric) -> None:
        self.env = env
        self.node = node
        self.fabric = fabric
        self._pending: Dict[int, Event] = {}
        if env.legacy_kernel:
            # Legacy kernel: a dispatcher process drains the inbox store
            # (one StorePut + StoreGet heap pop per delivered message).
            self._dispatcher: Optional["Process"] = env.process(self._dispatch_loop())
        else:
            # Fast kernel: the fabric hands delivered messages straight
            # to :meth:`_consume` at the delivery pop.
            self._dispatcher = None
            node.consumer = self._consume

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(
        self,
        kind: MessageKind,
        dst: NetworkNode,
        size_kb: float,
        version: Optional[int] = None,
        payload: Any = None,
    ) -> Message:
        """Fire-and-forget send; returns the message (already in flight)."""
        message = Message(
            kind=kind, src=self.node, dst=dst, size_kb=size_kb, version=version, payload=payload
        )
        self.fabric.send(message)
        return message

    def reply(
        self,
        request: Message,
        kind: MessageKind,
        size_kb: float,
        version: Optional[int] = None,
        extra: Optional[dict] = None,
    ) -> Message:
        """Send a response correlated to *request*."""
        payload = {"req": request.seq}
        if extra:
            payload.update(extra)
        return self.send(kind, request.src, size_kb, version=version, payload=payload)

    def request(
        self,
        kind: MessageKind,
        dst: NetworkNode,
        size_kb: float,
        version: Optional[int] = None,
        payload: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> Generator:
        """Send a request and wait for the correlated response.

        A generator to be used with ``yield from``; returns the response
        :class:`Message`, or ``None`` if *timeout* elapses first.
        """
        payload = dict(payload or {})
        message = Message(
            kind=kind, src=self.node, dst=dst, size_kb=size_kb, version=version, payload=payload
        )
        waiter = self.env.event()
        self._pending[message.seq] = waiter
        self.fabric.send(message)
        if timeout is None:
            response = yield waiter
            return response
        if not self.env.legacy_kernel:
            # Fast kernel: the timer wheel succeeds the waiter with
            # ``None`` at exactly ``now + timeout`` unless the response
            # (always a Message, never None) wins the race.  No Timeout
            # or Condition allocation, no explicit cancel -- a won race
            # leaves a lazily-skipped slot in the wheel.
            self.env.timers.arm(timeout, waiter)
            response = yield waiter
            if response is not None:
                return response
            self._pending.pop(message.seq, None)
            tracer = self.env.tracer
            if tracer.enabled:
                tracer.emit(
                    self.env.now, "msg_timeout", self.node.node_id,
                    **message.trace_detail()
                )
            return None
        result = yield self.env.any_of([waiter, self.env.timeout(timeout)])
        self._pending.pop(message.seq, None)
        for event in result.keys():
            if event is waiter:
                return event.value
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.emit(
                self.env.now, "msg_timeout", self.node.node_id,
                **message.trace_detail()
            )
        return None

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _consume(self, message: Message) -> None:
        """Fast-kernel dispatch: called by the fabric at delivery time.

        Mirrors one iteration of :meth:`_dispatch_loop` (the up-check
        runs at the same simulated instant the legacy dispatcher's
        ``StoreGet`` resume would have sampled it)."""
        if not self.node.is_up:
            return
        if message.kind in RESPONSE_KINDS:
            self._dispatch_response(message)
        else:
            self.handle(message)

    def _dispatch_loop(self):
        while True:
            message: Message = yield self.node.inbox.get()
            if not self.node.is_up:
                continue
            if message.kind in RESPONSE_KINDS:
                self._dispatch_response(message)
            else:
                self.handle(message)

    def _dispatch_response(self, message: Message) -> None:
        req_seq = None
        if isinstance(message.payload, dict):
            req_seq = message.payload.get("req")
        waiter = self._pending.pop(req_seq, None) if req_seq is not None else None
        if waiter is not None and not waiter.triggered:
            if self.env.legacy_kernel:
                waiter.succeed(message)
                return
            # Fast kernel: fire the waiter synchronously instead of
            # round-tripping through the heap.  We are already inside
            # the delivery pop's callback cascade; the requester resumes
            # here exactly as it would at the very next pop of the same
            # instant, and anything it schedules lands after all
            # already-queued work either way (no other event can carry
            # this exact jittered timestamp).
            callbacks = waiter.callbacks
            if callbacks is None:  # pragma: no cover - cancelled waiter
                return
            waiter._ok = True
            waiter._value = message
            waiter.callbacks = None
            for callback in callbacks:
                callback(waiter)
        # Responses without a waiter (e.g. the requester timed out or the
        # actor restarted) are dropped -- matching UDP-style semantics.

    def handle(self, message: Message) -> None:
        """Handle a non-response message; overridden by subclasses."""
        raise NotImplementedError(
            "%s cannot handle %s" % (type(self).__name__, message.kind)
        )


class UpdateSourceMixin:
    """Behaviour of an actor that others poll / fetch / subscribe to.

    Requires the host class to provide ``env``, ``node``, ``fabric``,
    ``content``, ``reply``/``send`` (from :class:`Actor`) and a
    ``source_version()`` method returning the version this actor can
    currently serve.
    """

    def init_source(self) -> None:
        #: Downstream nodes that receive pushes / invalidations
        #: (infrastructure children: all servers for unicast, tree
        #: children for multicast, supernodes for HAT).
        self.children: List[NetworkNode] = []
        #: Nodes that switched to Invalidation in the self-adaptive
        #: method (Algorithm 1), mapped to whether an invalidation
        #: notice has already been sent to them since they switched.
        #: One notice suffices: the member stays invalid until its next
        #: visit-triggered poll, so later updates in the same burst are
        #: aggregated for free.
        self.adaptive_members: Dict[NetworkNode, bool] = {}
        #: Members that subscribed to direct pushes (the generic dynamic
        #: method of repro.core.dynamic; plain Push wires ``children``
        #: instead and does not use this set).
        self.push_members: Set[NetworkNode] = set()

    def source_version(self) -> int:
        raise NotImplementedError

    # -- downstream actions ---------------------------------------------
    def push_children(self, version: int) -> None:
        """Push the new content body to every child (Push method)."""
        for child in self.children:
            self.send(
                MessageKind.PUSH_UPDATE,
                child,
                self.content.update_size_kb,
                version=version,
            )

    def invalidate_children(self, version: int) -> None:
        """Send an invalidation notice to every child."""
        for child in self.children:
            self.send(
                MessageKind.INVALIDATE, child, self.content.light_size_kb, version=version
            )

    def notify_adaptive_members(self, version: int) -> None:
        """Invalidate members in Invalidation mode not yet notified."""
        # Membership insertion order is the (deterministic) registration
        # order, so iterating the dict view is run-stable.
        for member, notified in list(self.adaptive_members.items()):  # repro: noqa REP007 -- insertion order = deterministic registration order
            if notified:
                continue
            self.adaptive_members[member] = True
            self.send(
                MessageKind.INVALIDATE, member, self.content.light_size_kb, version=version
            )

    def serve_dynamic_members(self, version: int) -> None:
        """Provider half of the generic dynamic method: push bodies to
        push-subscribed members, invalidate invalidation-mode members.
        TTL-mode members simply poll and need nothing here."""
        for member in list(self.push_members):
            self.send(
                MessageKind.PUSH_UPDATE,
                member,
                self.content.update_size_kb,
                version=version,
            )
        self.notify_adaptive_members(version)

    # -- upstream-facing handlers ----------------------------------------
    def handle_poll(self, message: Message) -> None:
        """Answer a TTL poll: full body if the poller is behind."""
        current = self.source_version()
        have = -1
        if isinstance(message.payload, dict):
            have = message.payload.get("have", -1)
        if current > have:
            self.reply(
                message,
                MessageKind.POLL_RESPONSE,
                self.content.update_size_kb,
                version=current,
            )
        else:
            self.reply(
                message,
                MessageKind.POLL_NOT_MODIFIED,
                self.content.light_size_kb,
                version=current,
            )

    def handle_fetch(self, message: Message) -> None:
        """Answer an invalidation-triggered fetch: always the full body."""
        self.reply(
            message,
            MessageKind.FETCH_RESPONSE,
            self.content.update_size_kb,
            version=self.source_version(),
        )
        # A member that stays in invalidation mode (the generic dynamic
        # method) is now current again and must be notified of the NEXT
        # update too.  Harmless for Algorithm 1 members, which leave the
        # set via their switch-to-TTL notice right after this fetch.
        if message.src in self.adaptive_members:
            self.adaptive_members[message.src] = False

    def handle_switch(self, message: Message) -> None:
        """Track a member switching between TTL and Invalidation modes."""
        mode = None
        if isinstance(message.payload, dict):
            mode = message.payload.get("mode")
        if mode == "invalidation":
            self.push_members.discard(message.src)
            # If the member is behind already (an update happened while
            # its switch notice was in flight), notify it immediately.
            if self.source_version() > (message.version or 0):
                self.adaptive_members[message.src] = True
                self.send(
                    MessageKind.INVALIDATE,
                    message.src,
                    self.content.light_size_kb,
                    version=self.source_version(),
                )
            else:
                self.adaptive_members[message.src] = False
        elif mode == "push":
            self.adaptive_members.pop(message.src, None)
            self.push_members.add(message.src)
            # Bring the new subscriber up to date immediately.
            if self.source_version() > (message.version or 0):
                self.send(
                    MessageKind.PUSH_UPDATE,
                    message.src,
                    self.content.update_size_kb,
                    version=self.source_version(),
                )
        elif mode == "ttl":
            self.adaptive_members.pop(message.src, None)
            self.push_members.discard(message.src)
        else:
            raise ValueError("malformed switch notice: %r" % (message.payload,))
