"""CDN substrate: content model, origin, edge servers, DNS and end users."""

from .base import Actor, RESPONSE_KINDS, UpdateSourceMixin
from .cache import CacheEntry, TTLCache
from .client import (
    DnsSelector,
    EndUserActor,
    FixedSelector,
    Observation,
    SwitchEveryVisitSelector,
)
from .content import DEFAULT_LIGHT_SIZE_KB, DEFAULT_UPDATE_SIZE_KB, LiveContent
from .dns import DnsDirectory
from .provider import ProviderActor
from .server import ServerActor, schedule_absence

__all__ = [
    "Actor",
    "UpdateSourceMixin",
    "RESPONSE_KINDS",
    "CacheEntry",
    "TTLCache",
    "LiveContent",
    "DEFAULT_UPDATE_SIZE_KB",
    "DEFAULT_LIGHT_SIZE_KB",
    "ProviderActor",
    "ServerActor",
    "schedule_absence",
    "EndUserActor",
    "Observation",
    "FixedSelector",
    "DnsSelector",
    "SwitchEveryVisitSelector",
    "DnsDirectory",
]
