"""End users.

An :class:`EndUserActor` periodically requests the live content from a
server chosen by a pluggable *selector* (fixed server, DNS-directed, or
switch-every-visit as in Fig. 24) and records every observation.  The
observation log is the raw material for all user-perspective metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..network.link import NetworkFabric
from ..network.message import Message, MessageKind
from ..network.node import NetworkNode
from ..sim.engine import Environment
from ..sim.rng import RandomStream
from .base import Actor
from .content import LiveContent
from .dns import DnsDirectory

__all__ = [
    "Observation",
    "EndUserActor",
    "FixedSelector",
    "DnsSelector",
    "SwitchEveryVisitSelector",
    "REQUEST_TIMEOUT_S",
]

#: Default content-request timeout, shared with the vectorized cohort
#: plane (:mod:`repro.cdn.cohort`) so both user implementations time out
#: at exactly the same instants.
REQUEST_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class Observation:
    """One successful content visit by one user."""

    time: float
    version: int
    server_id: str


class FixedSelector:
    """Always visit the same server."""

    def __init__(self, server: NetworkNode) -> None:
        self.server = server

    def select(self, user: NetworkNode, now: float, visit_index: int) -> NetworkNode:
        return self.server


class DnsSelector:
    """Resolve the serving server through the DNS directory each visit."""

    def __init__(self, dns: DnsDirectory) -> None:
        self.dns = dns

    def select(self, user: NetworkNode, now: float, visit_index: int) -> NetworkNode:
        return self.dns.resolve(user, now)


class SwitchEveryVisitSelector:
    """Visit a different random server on every successive visit.

    The adversarial redirection scenario of Fig. 24: it maximises the
    chance of observing cross-server inconsistency.
    """

    def __init__(self, servers: Sequence[NetworkNode], stream: RandomStream) -> None:
        if not servers:
            raise ValueError("need at least one server")
        self.servers = list(servers)
        self.stream = stream
        self._last: Optional[NetworkNode] = None

    def select(self, user: NetworkNode, now: float, visit_index: int) -> NetworkNode:
        if len(self.servers) == 1:
            return self.servers[0]
        while True:
            server = self.stream.choice(self.servers)
            if server is not self._last:
                self._last = server
                return server


class EndUserActor(Actor):
    """A simulated end user polling the live content periodically."""

    def __init__(
        self,
        env: Environment,
        node: NetworkNode,
        fabric: NetworkFabric,
        content: LiveContent,
        selector,
        user_ttl_s: float = 10.0,
        start_offset_s: float = 0.0,
        request_timeout_s: Optional[float] = REQUEST_TIMEOUT_S,
    ) -> None:
        if user_ttl_s <= 0:
            raise ValueError("user_ttl_s must be positive")
        super().__init__(env, node, fabric)
        self.content = content
        self.selector = selector
        self.user_ttl_s = user_ttl_s
        self.start_offset_s = start_offset_s
        self.request_timeout_s = request_timeout_s
        self.observations: List[Observation] = []
        #: Incremental-metrics hook: called with each new
        #: :class:`Observation` right after it is recorded (the testbed
        #: wires a :class:`~repro.metrics.incremental.UserObservationTracker`
        #: here under the fast kernel).
        self.on_observation: Optional[Callable[[Observation], None]] = None
        #: Visits that timed out (server down / unreachable).
        self.failed_visits = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.env.process(self._visit_loop())

    def _visit_loop(self):
        if self.start_offset_s > 0:
            yield self.env.pooled_timeout(self.start_offset_s)
        env = self.env
        node = self.node
        fast = not env.legacy_kernel
        light_kb = self.content.light_size_kb
        timeout_s = self.request_timeout_s
        select = self.selector.select
        content_request = MessageKind.CONTENT_REQUEST
        visit_index = 0
        while True:
            target = select(node, env._now, visit_index)
            if fast:
                # ``Actor.request`` fast path inlined: a visit resumes
                # this frame directly instead of delegating through a
                # fresh generator (one per visit is measurable at CDN
                # scale).  Same allocations in the same order.
                message = Message(
                    kind=content_request,
                    src=node,
                    dst=target,
                    size_kb=light_kb,
                    payload={},
                )
                waiter = env.event()
                self._pending[message.seq] = waiter
                self.fabric.send(message)
                env.timers.arm(timeout_s, waiter)
                response = yield waiter
                if response is None:
                    self._pending.pop(message.seq, None)
                    tracer = env.tracer
                    if tracer.enabled:
                        tracer.emit(
                            env.now, "msg_timeout", node.node_id,
                            **message.trace_detail()
                        )
            else:
                response = yield from self.request(
                    content_request, target, light_kb, timeout=timeout_s
                )
            tracer = self.env.tracer
            if response is None:
                self.failed_visits += 1
                if tracer.enabled:
                    tracer.emit(
                        self.env.now, "visit_timeout", self.node.node_id,
                        server=target.node_id,
                    )
            else:
                observation = Observation(
                    time=self.env.now,
                    version=response.version,
                    server_id=target.node_id,
                )
                self.observations.append(observation)
                if self.on_observation is not None:
                    self.on_observation(observation)
                if tracer.enabled:
                    tracer.emit(
                        self.env.now, "visit", self.node.node_id,
                        server=target.node_id, version=response.version,
                    )
            visit_index += 1
            yield self.env.pooled_timeout(self.user_ttl_s)
