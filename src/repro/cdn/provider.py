"""The content provider (origin server).

The provider applies the content's update schedule to its own copy and,
depending on the configured update method, pushes bodies, sends
invalidation notices, notifies self-adaptive members, or simply waits to
be polled.  It also answers polls and fetches from servers.
"""

from __future__ import annotations

from typing import Callable, List

from ..network.link import NetworkFabric
from ..network.message import Message, MessageKind
from ..network.node import NetworkNode
from ..sim.engine import Environment
from .base import Actor, UpdateSourceMixin
from .content import LiveContent

__all__ = ["ProviderActor"]


class ProviderActor(Actor, UpdateSourceMixin):
    """The origin: ground truth for the live content."""

    def __init__(
        self,
        env: Environment,
        node: NetworkNode,
        fabric: NetworkFabric,
        content: LiveContent,
        staleness_s: float = 0.0,
    ) -> None:
        super().__init__(env, node, fabric)
        self.init_source()
        self.content = content
        #: Optional provider-side staleness (Section 3.4.2 measures a
        #: small average origin inconsistency of ~3.4 s); zero by default.
        self.staleness_s = staleness_s
        self._version = content.version_at(env.now)
        #: Hooks ``f(version)`` called when a new version is applied;
        #: the experiment wires the update method's provider half here
        #: (push_children / invalidate_children / notify_adaptive_members).
        self.on_update_hooks: List[Callable[[int], None]] = []
        self._update_proc = env.process(self._update_loop())

    # ------------------------------------------------------------------
    @property
    def current_version(self) -> int:
        return self._version

    def source_version(self) -> int:
        return self._version

    def use_push(self) -> None:
        """Wire the Push provider half: push bodies to children."""
        self.on_update_hooks.append(self.push_children)

    def use_invalidation(self) -> None:
        """Wire the Invalidation provider half: notify children."""
        self.on_update_hooks.append(self.invalidate_children)

    def use_self_adaptive(self) -> None:
        """Wire the self-adaptive provider half (Algorithm 1, provider
        side): invalidate only members currently in Invalidation mode."""
        self.on_update_hooks.append(self.notify_adaptive_members)

    def use_dynamic(self) -> None:
        """Wire the generic dynamic provider half: push to push-mode
        members, invalidate invalidation-mode members (see
        :mod:`repro.core.dynamic`)."""
        self.on_update_hooks.append(self.serve_dynamic_members)

    # ------------------------------------------------------------------
    def _update_loop(self):
        for index, update_time in enumerate(self.content.update_times, start=1):
            when = update_time + self.staleness_s
            delay = when - self.env.now
            if delay > 0:
                yield self.env.pooled_timeout(delay)
            self._version = index
            tracer = self.env.tracer
            if tracer.enabled:
                tracer.emit(
                    self.env.now, "content_update", self.node.node_id, version=index
                )
            for hook in self.on_update_hooks:
                hook(index)

    # ------------------------------------------------------------------
    def handle(self, message: Message) -> None:
        if message.kind is MessageKind.POLL:
            self.handle_poll(message)
        elif message.kind is MessageKind.FETCH:
            self.handle_fetch(message)
        elif message.kind is MessageKind.SWITCH_NOTICE:
            self.handle_switch(message)
        elif message.kind is MessageKind.CONTENT_REQUEST:
            # End-users normally hit edge servers, but the paper also
            # measures requests served directly by providers (Fig. 7).
            self.reply(
                message,
                MessageKind.CONTENT_RESPONSE,
                self.content.update_size_kb,
                version=self._version,
            )
        elif message.kind is MessageKind.TREE_MAINTENANCE:
            pass  # the provider is the tree root; nothing to repair
        else:
            raise NotImplementedError("provider cannot handle %s" % message.kind)
