"""Edge-server cache bookkeeping.

Tracks, per content object, the cached version, when it was fetched,
when its TTL expires, and whether an invalidation notice has marked it
stale.  It also keeps an *apply log* -- the (time, version) history of
cache writes -- which is the raw material for all server-side
inconsistency metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["CacheEntry", "TTLCache"]


@dataclass
class CacheEntry:
    """Cache state for one content object on one server."""

    version: int = 0
    fetched_at: float = 0.0
    expires_at: float = 0.0
    invalidated: bool = False
    #: (time, version) for every write, in time order.
    apply_log: List[Tuple[float, int]] = field(default_factory=list)

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def is_fresh(self, now: float) -> bool:
        """Usable without refetch: TTL unexpired and not invalidated."""
        return not self.invalidated and not self.is_expired(now)


class TTLCache:
    """Per-server cache of live contents."""

    def __init__(self) -> None:
        self._entries: Dict[str, CacheEntry] = {}

    def entry(self, content_id: str) -> CacheEntry:
        """The entry for *content_id*, created (version 0) on first use."""
        entry = self._entries.get(content_id)
        if entry is None:
            entry = CacheEntry()
            entry.apply_log.append((0.0, 0))
            self._entries[content_id] = entry
        return entry

    def store(self, content_id: str, version: int, now: float, ttl: float) -> bool:
        """Record a (re)fetch of *version* at time *now*.

        Returns ``True`` if the stored version is newer than the cached
        one.  A refetch of the same version still refreshes the TTL and
        clears any invalidation mark.
        """
        entry = self.entry(content_id)
        entry.fetched_at = now
        entry.expires_at = now + ttl
        entry.invalidated = False
        if version > entry.version:
            entry.version = version
            entry.apply_log.append((now, version))
            return True
        return False

    def invalidate(self, content_id: str, version: Optional[int] = None) -> bool:
        """Mark the entry stale (server-based Invalidation).

        *version* is the superseding version from the notice; the mark is
        skipped if the cache already holds that version or newer.
        Returns ``True`` if the entry was (already or newly) stale.
        """
        entry = self.entry(content_id)
        if version is not None and entry.version >= version:
            return entry.invalidated
        entry.invalidated = True
        return True

    def version_of(self, content_id: str) -> int:
        return self.entry(content_id).version

    def apply_log(self, content_id: str) -> List[Tuple[float, int]]:
        return list(self.entry(content_id).apply_log)
