"""RunSpec: one deployment-to-run, as pure hashable data."""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict

from ..experiments.config import TestbedConfig

__all__ = ["RunSpec"]

#: The two kinds of deployment the testbed can build.
KINDS = ("deployment", "system")


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to (re)build and run one deployment.

    ``kind="deployment"`` runs *method* on *infrastructure* (the
    Section 4 grid via
    :func:`~repro.experiments.testbed.build_deployment`);
    ``kind="system"`` runs one of the Section 5 named systems via
    :func:`~repro.experiments.testbed.build_system`, in which case
    *method* is the system name and *infrastructure* is ignored.

    Specs are frozen, hashable (by content hash) and JSON-round-trip
    exactly, so they can key the on-disk run registry and cross process
    boundaries.
    """

    config: TestbedConfig
    method: str
    infrastructure: str = "unicast"
    kind: str = "deployment"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                "kind must be one of %s, not %r" % (KINDS, self.kind)
            )

    # ------------------------------------------------------------------
    # identity / serialization
    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Human-readable one-liner (``push/unicast seed=0``)."""
        if self.kind == "system":
            return "system:%s seed=%d" % (self.method, self.config.seed)
        return "%s/%s seed=%d" % (self.method, self.infrastructure, self.config.seed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "method": self.method,
            "infrastructure": self.infrastructure,
            "config": asdict(self.config),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        return cls(
            config=TestbedConfig(**data["config"]),
            method=data["method"],
            infrastructure=data.get("infrastructure", "unicast"),
            kind=data.get("kind", "deployment"),
        )

    def key(self) -> str:
        """Content hash -- identical specs share a key, any knob change
        (including the seed) produces a new one."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __hash__(self) -> int:
        return int(self.key()[:16], 16)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def build(self):
        """Wire the deployment this spec describes (not yet run)."""
        # Imported lazily: repro.experiments' figure drivers import this
        # package at module level.
        from ..experiments.testbed import build_deployment, build_system

        if self.kind == "system":
            return build_system(self.config, self.method)
        return build_deployment(self.config, self.method, self.infrastructure)

    def execute(self):
        """Build and run to the config's horizon; returns the metrics."""
        return self.build().run()
