"""RunSpec: one deployment-to-run, as pure hashable data."""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict

from ..experiments.config import TestbedConfig

__all__ = ["RunSpec"]

#: The two kinds of deployment the testbed can build.
KINDS = ("deployment", "system")

#: Kept in sync with ``repro.scenarios.DEFAULT_SCENARIO`` (asserted by
#: the scenario test suite); a literal so this module never imports the
#: scenarios package (which imports the runner).
DEFAULT_SCENARIO = "paper-baseline"


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to (re)build and run one deployment.

    ``kind="deployment"`` runs *method* on *infrastructure* (the
    Section 4 grid via
    :func:`~repro.experiments.testbed.build_deployment`);
    ``kind="system"`` runs one of the Section 5 named systems via
    :func:`~repro.experiments.testbed.build_system`, in which case
    *method* is the system name and *infrastructure* is ignored.

    Specs are frozen, hashable (by content hash) and JSON-round-trip
    exactly, so they can key the on-disk run registry and cross process
    boundaries.

    ``scenario`` names the :mod:`repro.scenarios` entry that supplies
    workload, catalog and perturbations; ``scenario_cell`` picks the
    catalog cell (0 for single-object scenarios).  The default is the
    paper's baseline, and default-valued specs serialize exactly as they
    did before scenarios existed, so registry keys and stored specs from
    older runs stay valid.
    """

    config: TestbedConfig
    method: str
    infrastructure: str = "unicast"
    kind: str = "deployment"
    #: Scenario name (a registry key; must stay a plain string so the
    #: spec is picklable and hashable -- ad-hoc Scenario objects can't
    #: cross process boundaries).  Literal default mirrors
    #: ``repro.scenarios.DEFAULT_SCENARIO`` (not imported here to keep
    #: this module importable before the scenarios package).
    scenario: str = DEFAULT_SCENARIO
    scenario_cell: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                "kind must be one of %s, not %r" % (KINDS, self.kind)
            )
        if not isinstance(self.scenario, str) or not self.scenario:
            raise ValueError(
                "scenario must be a registered scenario name, not %r"
                % (self.scenario,)
            )
        if self.scenario_cell < 0:
            raise ValueError("scenario_cell must be >= 0")

    # ------------------------------------------------------------------
    # identity / serialization
    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Human-readable one-liner (``push/unicast seed=0``)."""
        if self.kind == "system":
            base = "system:%s seed=%d" % (self.method, self.config.seed)
        else:
            base = "%s/%s seed=%d" % (
                self.method, self.infrastructure, self.config.seed
            )
        if self.scenario != DEFAULT_SCENARIO or self.scenario_cell != 0:
            base += " scenario=%s[%d]" % (self.scenario, self.scenario_cell)
        return base

    def to_dict(self) -> Dict[str, Any]:
        config = asdict(self.config)
        # User-plane knobs serialize only when non-default, for the same
        # registry-key-stability reason as ``scenario`` below (the knobs
        # post-date many stored runs; ``from_dict`` restores defaults).
        if config.get("user_metrics") == "per-user":
            del config["user_metrics"]
        if config.get("user_shards") == 1 and config.get("user_shard") == 0:
            del config["user_shards"]
            del config["user_shard"]
        data = {
            "kind": self.kind,
            "method": self.method,
            "infrastructure": self.infrastructure,
            "config": config,
        }
        # Serialized only when non-default: default-valued specs keep
        # the pre-scenario canonical form, so existing registry keys
        # (and their memoized runs) stay valid.
        if self.scenario != DEFAULT_SCENARIO or self.scenario_cell != 0:
            data["scenario"] = self.scenario
            data["scenario_cell"] = self.scenario_cell
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        return cls(
            config=TestbedConfig(**data["config"]),
            method=data["method"],
            infrastructure=data.get("infrastructure", "unicast"),
            kind=data.get("kind", "deployment"),
            scenario=data.get("scenario", DEFAULT_SCENARIO),
            scenario_cell=data.get("scenario_cell", 0),
        )

    def key(self) -> str:
        """Content hash -- identical specs share a key, any knob change
        (including the seed) produces a new one."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __hash__(self) -> int:
        return int(self.key()[:16], 16)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def build(self, tracer: Any = None):
        """Wire the deployment this spec describes (not yet run)."""
        # Imported lazily: repro.experiments' figure drivers import this
        # package at module level.
        from ..experiments.testbed import build_deployment, build_system

        if self.kind == "system":
            return build_system(
                self.config,
                self.method,
                scenario=self.scenario,
                scenario_cell=self.scenario_cell,
                tracer=tracer,
            )
        return build_deployment(
            self.config,
            self.method,
            self.infrastructure,
            scenario=self.scenario,
            scenario_cell=self.scenario_cell,
            tracer=tracer,
        )

    def execute(self, tracer: Any = None, progress: Any = None):
        """Build and run to the config's horizon; returns the metrics.

        *tracer* and *progress* are observability hooks (a
        :mod:`repro.obs` tracer and an engine progress callable); both
        are purely observational, so attaching them cannot change the
        returned metrics.
        """
        deployment = self.build(tracer=tracer)
        if progress is not None:
            deployment.env.progress = progress
        return deployment.run()
