"""Runner: execute a batch of RunSpecs serially or on a process pool."""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..obs.live import (
    PROGRESS_DIR_ENV,
    Heartbeat,
    ProgressTracker,
    default_progress_path,
    heartbeat_dir,
)
from ..obs.telemetry import (
    TELEMETRY,
    append_run_entry,
    default_artifact_path,
    empty_snapshot,
    merge_snapshots,
    span,
)
from .registry import RunRegistry
from .spec import RunSpec

__all__ = [
    "Runner",
    "RunOutcome",
    "RunStats",
    "run_specs",
    "resolve_workers",
    "WORKERS_ENV",
]

#: Environment variable setting the default worker count.  Unset or
#: ``1`` means serial; ``0`` or ``auto`` means one worker per CPU.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variables enabling per-spec sampled tracing inside
#: workers: a directory for the rotating JSONL sinks, plus the sampling
#: knobs (see :class:`repro.obs.sampling.SamplingTracer`).  Env-carried
#: (like :data:`PROGRESS_DIR_ENV`) so fork/spawn workers inherit them
#: without widening the picklable pool payload.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"
TRACE_RATE_ENV = "REPRO_TRACE_RATE"
TRACE_BUDGET_ENV = "REPRO_TRACE_BUDGET"
TRACE_SEED_ENV = "REPRO_TRACE_SEED"
TRACE_ROTATE_KB_ENV = "REPRO_TRACE_ROTATE_KB"


def resolve_workers(workers: Union[int, str, None] = None) -> int:
    """Turn a worker knob (int, "auto", ``None`` -> env) into a count."""
    if workers is None:
        workers = os.environ.get(WORKERS_ENV, 1)
    if isinstance(workers, str):
        if workers.strip().lower() == "auto":
            workers = 0
        else:
            try:
                workers = int(workers)
            except ValueError:
                raise ValueError(
                    "workers must be an integer, 0, or 'auto'; got %r" % workers
                ) from None
    if workers <= 0:
        workers = multiprocessing.cpu_count()
    return max(1, int(workers))


@dataclass
class RunStats:
    """Counters for one :meth:`Runner.run` batch."""

    n_specs: int
    executed: int
    cache_hits: int
    workers: int
    wall_time_s: float
    #: Sum of per-deployment execution times (>= wall time when the
    #: pool overlaps work).
    busy_time_s: float
    #: Simulator events processed by the deployments executed in this
    #: batch (cache hits did no simulation work).
    events_processed: int
    #: Messages sent across the fabric by the executed deployments
    #: (update + light messages; cache hits contribute nothing).
    messages: int = 0
    #: Messages dropped by the fabric (sender or receiver down).
    dropped_messages: int = 0
    #: Registry entries merged in from disk at save time (runs another
    #: concurrent process persisted between our load and our save).
    registry_merged: int = 0
    #: Registry lookups that missed (== executed when a registry is
    #: attached; 0 means every spec was a cache hit).
    cache_misses: int = 0
    #: Peak resident set size across the main process and every worker
    #: that executed a deployment in this batch, in KiB (0 if unknown).
    peak_rss_kb: int = 0
    #: Harness-telemetry rollup for this batch (worker deltas merged
    #: counter-sum / gauge-last / histogram bucket-wise); ``None`` when
    #: telemetry is disabled via ``REPRO_TELEMETRY=0``.
    telemetry: Optional[Dict[str, Any]] = field(default=None, repr=False)

    @property
    def worker_utilization(self) -> float:
        """busy / (workers * wall); 1.0 means the pool never idled."""
        denominator = self.workers * self.wall_time_s
        if denominator <= 0.0:
            return 0.0
        return min(1.0, self.busy_time_s / denominator)

    @property
    def registry_hit_rate(self) -> float:
        """cache hits / specs (0.0 for an empty batch)."""
        if self.n_specs <= 0:
            return 0.0
        return self.cache_hits / self.n_specs

    @property
    def events_per_s(self) -> float:
        """Simulator events per second of busy time (0.0 if none)."""
        if self.busy_time_s <= 0.0:
            return 0.0
        return self.events_processed / self.busy_time_s

    def to_dict(self) -> Dict:
        return {
            "n_specs": self.n_specs,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "busy_time_s": self.busy_time_s,
            "events_processed": self.events_processed,
            "messages": self.messages,
            "dropped_messages": self.dropped_messages,
            "registry_merged": self.registry_merged,
            "worker_utilization": self.worker_utilization,
            "registry_hit_rate": self.registry_hit_rate,
            "events_per_s": self.events_per_s,
            "peak_rss_kb": self.peak_rss_kb,
            "telemetry": self.telemetry,
        }

    def summary(self) -> str:
        """One line for CLI / log output."""
        line = (
            "ran %d deployment(s) (%d cache hit(s)) in %.2f s with %d "
            "worker(s); utilization %.0f%%; %d simulator events; "
            "%d message(s), %d dropped"
            % (
                self.executed,
                self.cache_hits,
                self.wall_time_s,
                self.workers,
                100.0 * self.worker_utilization,
                self.events_processed,
                self.messages,
                self.dropped_messages,
            )
        )
        if self.registry_merged:
            line += "; merged %d registry entr%s" % (
                self.registry_merged,
                "y" if self.registry_merged == 1 else "ies",
            )
        return line


@dataclass
class RunOutcome:
    """Metrics for a batch of specs, merged back in spec order."""

    specs: List[RunSpec]
    metrics: List  # List[DeploymentMetrics], aligned with ``specs``
    stats: RunStats

    def __len__(self) -> int:
        return len(self.metrics)

    def __iter__(self):
        return iter(self.metrics)

    def __getitem__(self, index):
        return self.metrics[index]

    def pairs(self) -> List[Tuple[RunSpec, object]]:
        return list(zip(self.specs, self.metrics))


def _spec_stem(spec: RunSpec) -> str:
    """Filesystem-safe per-spec file stem (label plus short hash, so
    grid cells that share a label never collide)."""
    safe = "".join(
        c if c.isalnum() or c in "._-" else "_" for c in spec.label
    )
    return "%s-%s" % (safe, spec.key()[:8])


def _heartbeat_from_env(spec: RunSpec) -> Optional[Heartbeat]:
    """A live-progress heartbeat when ``REPRO_PROGRESS_DIR`` is set."""
    directory = os.environ.get(PROGRESS_DIR_ENV, "")
    if not directory:
        return None
    return Heartbeat(
        os.path.join(directory, _spec_stem(spec) + ".json"),
        label=spec.label,
        horizon=spec.config.run_horizon_s,
    )


def _tracer_from_env(spec: RunSpec):
    """A sampling tracer + rotating sink when ``REPRO_TRACE_DIR`` is
    set (see the ``TRACE_*_ENV`` knobs)."""
    directory = os.environ.get(TRACE_DIR_ENV, "")
    if not directory:
        return None
    from ..obs.sampling import JsonlTraceSink, SamplingTracer

    seed_raw = os.environ.get(TRACE_SEED_ENV, "")
    sink = JsonlTraceSink(
        os.path.join(directory, _spec_stem(spec) + ".trace.jsonl"),
        rotate_kb=int(os.environ.get(TRACE_ROTATE_KB_ENV, "4096")),
    )
    return SamplingTracer(
        seed=int(seed_raw) if seed_raw else spec.config.seed,
        rate=float(os.environ.get(TRACE_RATE_ENV, "1.0")),
        per_kind_budget=int(os.environ.get(TRACE_BUDGET_ENV, "256")),
        sink=sink,
    )


def _execute_spec(spec: RunSpec):
    """Top-level worker entry point (must be picklable for spawn).

    Returns ``(metrics, elapsed_s, telemetry_delta)``.  The telemetry
    delta covers exactly this execution -- fork-started workers inherit
    the parent's telemetry state, so shipping a raw snapshot back would
    double-count everything recorded before the fork.

    When the Runner (or the user) exported ``REPRO_PROGRESS_DIR`` /
    ``REPRO_TRACE_DIR``, the deployment runs with a live heartbeat
    and/or a sampled trace attached.  Both are purely observational:
    the returned metrics are bit-identical either way.
    """
    before = TELEMETRY.snapshot()
    started = time.perf_counter()
    with span("spec.execute"):
        heartbeat = _heartbeat_from_env(spec)
        tracer = _tracer_from_env(spec)
        try:
            metrics = spec.execute(tracer=tracer, progress=heartbeat)
        finally:
            if tracer is not None:
                tracer.close()
        if heartbeat is not None:
            heartbeat.finish(
                spec.config.run_horizon_s, metrics.events_processed
            )
    elapsed = time.perf_counter() - started
    return metrics, elapsed, TELEMETRY.delta_since(before)


class Runner:
    """Executes batches of :class:`RunSpec`, optionally in parallel and
    optionally memoized through a :class:`RunRegistry`.

    Parameters
    ----------
    workers:
        ``None`` reads ``REPRO_WORKERS`` (default 1 = serial); ``0`` or
        ``"auto"`` uses one worker per CPU.  With one worker the pool is
        bypassed entirely (serial fallback).
    registry:
        ``None`` reads ``REPRO_RUN_REGISTRY`` (no memoization when
        unset); a path string opens/creates a registry there; ``False``
        disables memoization even if the environment variable is set.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap on Linux) and the platform default elsewhere.
    """

    def __init__(
        self,
        workers: Union[int, str, None] = None,
        registry: Union[RunRegistry, str, None, bool] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if registry is None:
            self.registry: Optional[RunRegistry] = RunRegistry.from_env()
        elif registry is False:
            self.registry = None
        elif isinstance(registry, RunRegistry):
            self.registry = registry
        else:
            self.registry = RunRegistry(str(registry))
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else available[0]
        self.start_method = start_method

    # ------------------------------------------------------------------
    def run_one(self, spec: RunSpec):
        """Run a single spec (serially); returns its metrics."""
        return self.run([spec]).metrics[0]

    def run(self, specs: Iterable[RunSpec]) -> RunOutcome:
        """Execute every spec; metrics come back in spec order.

        Results are bit-identical regardless of worker count or cache
        state: each deployment is deterministic given its spec, and the
        registry stores exact float round-trips.
        """
        specs = list(specs)
        before = TELEMETRY.snapshot()
        started = time.perf_counter()
        metrics: List = [None] * len(specs)

        pending: List[Tuple[int, RunSpec]] = []
        cache_hits = 0
        busy = 0.0
        events = 0
        messages = 0
        dropped = 0
        merged = 0
        worker_deltas: List[Dict[str, Any]] = []
        pooled = False
        tracker = self._progress_tracker()
        with span("runner.run"):
            TELEMETRY.gauge("runner.workers", self.workers)
            for index, spec in enumerate(specs):
                cached = (
                    self.registry.get(spec) if self.registry is not None else None
                )
                if cached is not None:
                    metrics[index] = cached
                    cache_hits += 1
                else:
                    pending.append((index, spec))

            if tracker is not None:
                tracker.begin(
                    len(specs), cache_hits, len(pending), self.workers
                )
            if pending:
                pooled = self.workers > 1 and len(pending) > 1
                outputs = self._execute(
                    [spec for _, spec in pending], tracker
                )
                for (index, spec), (result, elapsed, delta) in zip(
                    pending, outputs
                ):
                    metrics[index] = result
                    busy += elapsed
                    events += result.events_processed
                    messages += result.update_messages + result.light_messages
                    dropped += getattr(result, "dropped_messages", 0)
                    # Serial execution recorded into this process's
                    # registry already; merging the delta again would
                    # double-count, so worker deltas only count when the
                    # pool actually ran them in another process.
                    if pooled:
                        worker_deltas.append(delta)
                    if self.registry is not None:
                        self.registry.put(spec, result, elapsed)
                if self.registry is not None:
                    merged = self.registry.save()
        wall_time = time.perf_counter() - started

        rollup: Optional[Dict[str, Any]] = None
        if TELEMETRY.enabled:
            rollup = merge_snapshots(empty_snapshot(), TELEMETRY.delta_since(before))
            for delta in worker_deltas:
                merge_snapshots(rollup, delta)

        stats = RunStats(
            n_specs=len(specs),
            executed=len(pending),
            cache_hits=cache_hits,
            workers=self.workers,
            wall_time_s=wall_time,
            busy_time_s=busy,
            events_processed=events,
            messages=messages,
            dropped_messages=dropped,
            registry_merged=merged,
            cache_misses=len(pending) if self.registry is not None else 0,
            peak_rss_kb=rollup["peak_rss_kb"] if rollup is not None else 0,
            telemetry=rollup,
        )
        if rollup is not None and self.registry is not None:
            self._emit_telemetry_artifact(stats, rollup)
        if tracker is not None:
            tracker.finish(
                {
                    "executed": stats.executed,
                    "cache_hits": stats.cache_hits,
                    "wall_time_s": stats.wall_time_s,
                    "events_processed": stats.events_processed,
                    "peak_rss_kb": stats.peak_rss_kb,
                }
            )
        return RunOutcome(specs=specs, metrics=metrics, stats=stats)

    def _progress_tracker(self) -> Optional[ProgressTracker]:
        """A :class:`ProgressTracker` next to the run registry, or
        ``None`` without one (nowhere canonical to put the file)."""
        if self.registry is None:
            return None
        return ProgressTracker(default_progress_path(self.registry.path))

    def _emit_telemetry_artifact(
        self, stats: RunStats, rollup: Dict[str, Any]
    ) -> None:
        """Append this batch's rollup next to the run registry.

        Telemetry is best-effort: an unwritable artifact path must not
        fail the sweep that produced real results.
        """
        assert self.registry is not None
        path = default_artifact_path(self.registry.path)
        entry = {
            "created_unix": time.time(),
            "n_specs": stats.n_specs,
            "executed": stats.executed,
            "cache_hits": stats.cache_hits,
            "workers": stats.workers,
            "wall_time_s": stats.wall_time_s,
            "rollup": rollup,
        }
        try:
            append_run_entry(path, entry)
        except OSError:  # pragma: no cover - disk-full / permissions
            pass

    def _execute(
        self,
        specs: Sequence[RunSpec],
        tracker: Optional[ProgressTracker] = None,
    ) -> List:
        """Run *specs*, reporting each completion to *tracker* live.

        Results come back in spec order regardless of completion order
        (``apply_async`` handles are collected in submission order), so
        outcomes stay bit-identical with or without a tracker.
        """
        cleanup_env = self._export_heartbeat_dir(tracker)
        try:
            if self.workers > 1 and len(specs) > 1:
                context = multiprocessing.get_context(self.start_method)
                pool_size = min(self.workers, len(specs))
                with context.Pool(pool_size) as pool:
                    if tracker is None:
                        # chunksize=1: deployments are coarse, balance
                        # the load.
                        return pool.map(_execute_spec, specs, chunksize=1)
                    # One task per apply_async call is the same
                    # chunksize=1 balancing, plus a completion callback
                    # (fires on the pool's result-handler thread) that
                    # feeds the live progress file as specs finish.
                    handles = []
                    for spec in specs:

                        def _done(output: Any, _label: str = spec.label) -> None:
                            tracker.spec_done(_label, output[1])

                        handles.append(
                            pool.apply_async(
                                _execute_spec, (spec,), callback=_done
                            )
                        )
                    return [handle.get() for handle in handles]
            outputs = []
            for spec in specs:
                output = _execute_spec(spec)
                if tracker is not None:
                    tracker.spec_done(spec.label, output[1])
                outputs.append(output)
            return outputs
        finally:
            if cleanup_env:
                os.environ.pop(PROGRESS_DIR_ENV, None)

    def _export_heartbeat_dir(
        self, tracker: Optional[ProgressTracker]
    ) -> bool:
        """Point workers at a fresh heartbeat directory via the
        environment (fork/spawn children inherit it).  Returns whether
        this call owns the variable and must pop it afterwards."""
        if tracker is None or os.environ.get(PROGRESS_DIR_ENV):
            return False
        directory = heartbeat_dir(tracker.path)
        try:
            os.makedirs(directory, exist_ok=True)
            for name in os.listdir(directory):
                if name.endswith(".json"):  # stale beats from a past run
                    try:
                        os.unlink(os.path.join(directory, name))
                    except OSError:  # pragma: no cover - races are fine
                        pass
        except OSError:  # pragma: no cover - unwritable: skip heartbeats
            return False
        os.environ[PROGRESS_DIR_ENV] = directory
        return True


def run_specs(
    specs: Iterable[RunSpec], runner: Optional[Runner] = None
) -> RunOutcome:
    """Run *specs* through *runner* (or a default-configured one)."""
    return (runner if runner is not None else Runner()).run(specs)
