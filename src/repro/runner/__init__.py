"""Parallel experiment runner: fan independent deployments out over a
worker pool and memoize finished runs on disk.

The paper's Section 4/5 evaluation is embarrassingly parallel -- every
figure is a sweep of independent deterministic deployments (method x
infrastructure x TTL x packet size x network size x seed).  This
package gives all sweep drivers one execution path:

- :class:`RunSpec` -- one deployment to run, as pure data (config +
  method + infrastructure + kind).  Hashable and JSON-serializable, so
  it can cross a process boundary and key an on-disk cache.
- :class:`Runner` -- executes a batch of specs, either serially or on a
  ``multiprocessing`` pool (``workers=`` / ``REPRO_WORKERS``), and
  merges the :class:`~repro.experiments.testbed.DeploymentMetrics` back
  in spec order.  Serial and parallel execution are bit-identical: each
  deployment is self-contained and seeded from its spec alone.
- :class:`RunRegistry` -- a JSON file memoizing finished runs, keyed by
  spec hash + code version, so regenerating figures or re-running
  benchmarks skips already-computed deployments
  (``REPRO_RUN_REGISTRY=<path>`` enables it globally).
- :class:`RunStats` -- per-batch counters (deployments run, cache hits,
  wall/busy time, worker utilization, simulator events processed),
  attached to every batch result so speedups are observable.
"""

from .registry import REGISTRY_ENV, RunRegistry, code_version
from .runner import (
    WORKERS_ENV,
    Runner,
    RunOutcome,
    RunStats,
    resolve_workers,
    run_specs,
)
from .spec import RunSpec

__all__ = [
    "RunSpec",
    "Runner",
    "RunOutcome",
    "RunStats",
    "RunRegistry",
    "run_specs",
    "resolve_workers",
    "code_version",
    "WORKERS_ENV",
    "REGISTRY_ENV",
]
