"""On-disk run registry: memoize finished deployments across invocations.

Format (one JSON file)::

    {
      "format": 1,
      "runs": {
        "<spec-sha256>:<code-version>": {
          "spec":      {...},   # RunSpec.to_dict()
          "metrics":   {...},   # DeploymentMetrics.to_dict()
          "elapsed_s": 1.23,    # wall time of the original execution
          "created_unix": 1700000000.0
        },
        ...
      }
    }

Keys combine the spec's content hash with the *code version* -- a hash
over every ``repro`` source file -- so editing the simulator invalidates
every cached run while config-identical re-invocations hit.  JSON
round-trips Python floats exactly, so cached metrics are bit-identical
to freshly computed ones.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from typing import Dict, Optional

from ..obs.telemetry import TELEMETRY, span
from .spec import RunSpec

__all__ = ["RunRegistry", "REGISTRY_ENV", "code_version"]

logger = logging.getLogger(__name__)

#: Environment variable naming the registry file; when set, every
#: :class:`~repro.runner.Runner` built without an explicit registry
#: memoizes through it.
REGISTRY_ENV = "REPRO_RUN_REGISTRY"

_FORMAT = 1

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro`` source file (cached per process)."""
    global _code_version_cache
    if _code_version_cache is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for root, dirs, files in sorted(os.walk(package_root)):
            dirs[:] = sorted(d for d in dirs if d != "__pycache__")
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                digest.update(os.path.relpath(path, package_root).encode("utf-8"))
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


class RunRegistry:
    """A JSON file of finished runs keyed by spec hash + code version."""

    def __init__(self, path: str, version: Optional[str] = None) -> None:
        self.path = os.path.abspath(os.path.expanduser(path))
        self.version = version if version is not None else code_version()
        self._runs: Dict[str, Dict] = {}
        self._dirty = False
        #: On-disk entries merged in by :meth:`save` over this
        #: registry's lifetime (runs another process persisted between
        #: our load and our save -- e.g. two concurrent sweeps).
        self.merged_entries = 0
        self._load()

    @classmethod
    def from_env(cls) -> Optional["RunRegistry"]:
        """The registry named by ``REPRO_RUN_REGISTRY``, if set."""
        path = os.environ.get(REGISTRY_ENV)
        return cls(path) if path else None

    # ------------------------------------------------------------------
    def _read_runs(self) -> Optional[Dict[str, Dict]]:
        """The ``runs`` table currently on disk, or ``None``.

        A missing file is normal (fresh registry).  An unreadable or
        unparsable file is *not* silently discarded -- it may hold hours
        of memoized runs -- so it is moved aside to ``<path>.corrupt``
        and a warning names both paths.
        """
        try:
            with open(self.path) as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as error:
            backup = self.path + ".corrupt"
            try:
                os.replace(self.path, backup)
            except OSError:  # pragma: no cover - backup best-effort
                backup = "<backup failed>"
            logger.warning(
                "run registry %s is unreadable (%s); starting empty, "
                "the original file was preserved at %s",
                self.path, error, backup,
            )
            return None
        if isinstance(data, dict) and data.get("format") == _FORMAT:
            runs = data.get("runs")
            if isinstance(runs, dict):
                return runs
        return None

    def _load(self) -> None:
        with span("registry.load"):
            runs = self._read_runs()
        if runs is not None:
            self._runs = runs

    def _key(self, spec: RunSpec) -> str:
        return "%s:%s" % (spec.key(), self.version)

    def __len__(self) -> int:
        return len(self._runs)

    def __contains__(self, spec: RunSpec) -> bool:
        return self._key(spec) in self._runs

    def get(self, spec: RunSpec):
        """The cached :class:`DeploymentMetrics` for *spec*, or ``None``."""
        entry = self._runs.get(self._key(spec))
        if entry is None:
            TELEMETRY.count("registry.cache_misses")
            return None
        TELEMETRY.count("registry.cache_hits")
        from ..experiments.testbed import DeploymentMetrics

        return DeploymentMetrics.from_dict(entry["metrics"])

    def put(self, spec: RunSpec, metrics, elapsed_s: float) -> None:
        """Record a finished run (call :meth:`save` to persist)."""
        self._runs[self._key(spec)] = {
            "spec": spec.to_dict(),
            "metrics": metrics.to_dict(),
            "elapsed_s": float(elapsed_s),
            "created_unix": time.time(),
        }
        self._dirty = True

    def save(self) -> int:
        """Atomically write the registry back to disk (if changed).

        The on-disk file is re-read and merged first: runs another
        process saved since our load are kept instead of being
        overwritten (two sweeps sharing ``REPRO_RUN_REGISTRY`` used to
        be last-writer-wins, silently dropping one sweep's runs).  Our
        in-memory entries win on key collisions (they are the freshest
        execution).  Returns the number of merged-in entries, also
        accumulated on :attr:`merged_entries`.
        """
        if not self._dirty:
            return 0
        with span("registry.save"):
            return self._save_locked()

    def _save_locked(self) -> int:
        merged = 0
        on_disk = self._read_runs()
        if on_disk:
            for key, entry in on_disk.items():
                if key not in self._runs:
                    self._runs[key] = entry
                    merged += 1
        if merged:
            self.merged_entries += merged
            logger.info(
                "run registry %s: merged %d concurrent entr%s from disk",
                self.path, merged, "y" if merged == 1 else "ies",
            )
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        payload = {"format": _FORMAT, "runs": self._runs}
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", dir=directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self.path)
        finally:
            if os.path.exists(tmp_path):  # pragma: no cover - error path
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
        self._dirty = False
        return merged
