"""REP001 / REP002 -- seeded randomness and wall-clock bans.

REP001: inside the simulation packages (``sim/``, ``cdn/``,
``consistency/``, ``network/``, ``scenarios/``) every random draw must
come from a seeded :class:`~repro.sim.rng.RandomStream` (or an
explicitly seeded ``random.Random`` instance).  Touching the *module-level* ``random``
state -- ``random.random()``, ``from random import choice`` -- shares
one hidden global stream, so adding any new draw silently perturbs
every existing one and breaks bit-identical replay.  Constructing
``random.Random(seed)`` is allowed (that is how seeded streams are
made); everything else on the module is not.  ``numpy.random`` module
functions are banned for the same reason.

REP002: simulation code must never read wall-clock time
(``time.time``/``perf_counter``/``monotonic``, ``datetime.now``, ...).
Simulated time comes from ``env.now``; a wall-clock read either leaks
into results (breaking run-to-run identity) or is dead measurement
code.  Deliberate carve-outs (the runner's wall-time bookkeeping,
benchmarks, harness telemetry) live in the
:data:`repro.lint.exemptions.EXEMPTIONS` manifest, one reviewable
table with a reason per entry.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from .exemptions import is_exempt
from .findings import Finding
from .rules import FileRule

__all__ = ["SeededRngOnly", "NoWallClock"]

#: Packages whose randomness must be stream-threaded (REP001).
_RNG_SCOPED_AREAS = ("sim", "cdn", "consistency", "network", "scenarios")

#: ``time`` module attributes that read the wall clock.
_WALL_CLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "localtime",
        "gmtime",
    }
)

#: ``datetime``/``date`` constructors that read the wall clock.
_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _root_name(node: ast.AST) -> str:
    """Leftmost ``Name`` id of an attribute chain (``a.b.c`` -> ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


class _ImportTracker(ast.NodeVisitor):
    """Records what names the module binds for a set of stdlib modules."""

    def __init__(self, modules: Set[str]) -> None:
        self.modules = modules
        #: local alias -> imported module (``import random as r`` -> r: random)
        self.module_aliases: Dict[str, str] = {}
        #: local name -> (module, original name) for ``from m import x as y``
        self.from_imports: Dict[str, tuple] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            top = alias.name.split(".")[0]
            if top in self.modules:
                self.module_aliases[alias.asname or top] = top
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = (node.module or "").split(".")[0]
        if node.level == 0 and module in self.modules:
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (module, alias.name)
        self.generic_visit(node)


class SeededRngOnly(FileRule):
    """REP001 -- no module-level RNG in simulation packages."""

    code = "REP001"
    name = "seeded-rng-only"
    summary = (
        "sim/cdn/consistency/network code must draw randomness from a "
        "seeded RandomStream, never the global `random` module"
    )

    def check(self, file) -> Iterator[Finding]:
        if not file.in_package(*_RNG_SCOPED_AREAS):
            return
        tracker = _ImportTracker({"random", "numpy"})
        tracker.visit(file.tree)

        for name, (module, original) in tracker.from_imports.items():
            if module == "random" and original != "Random":
                node = self._find_import_from(file.tree, name)
                line, col = (node.lineno, node.col_offset) if node else (1, 0)
                yield self.finding(
                    file,
                    line,
                    col,
                    "`from random import %s` binds the shared module-level "
                    "RNG; thread a seeded RandomStream instead" % original,
                )

        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Attribute):
                continue
            root = _root_name(node.value)
            module = tracker.module_aliases.get(root)
            if module == "random":
                if node.attr == "Random":
                    continue  # constructing a seeded instance is the fix
                yield self.finding(
                    file,
                    node.lineno,
                    node.col_offset,
                    "`random.%s` uses the shared module-level RNG; draw from "
                    "a seeded RandomStream (repro.sim.rng) instead" % node.attr,
                )
            elif module == "numpy" and node.attr == "random":
                yield self.finding(
                    file,
                    node.lineno,
                    node.col_offset,
                    "`numpy.random` module functions share global RNG state; "
                    "use numpy.random.Generator seeded from the run's streams",
                )

    @staticmethod
    def _find_import_from(tree: ast.AST, bound_name: str):
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and (node.module or "") == "random":
                for alias in node.names:
                    if (alias.asname or alias.name) == bound_name:
                        return node
        return None


class NoWallClock(FileRule):
    """REP002 -- no wall-clock reads outside the exemption manifest."""

    code = "REP002"
    name = "no-wall-clock"
    summary = (
        "no time.time/perf_counter/datetime.now outside the manifest "
        "exemptions (runner, benchmarks, harness telemetry) -- "
        "simulated time comes from env.now"
    )

    def _exempt(self, file) -> bool:
        return is_exempt(self.code, file)

    def check(self, file) -> Iterator[Finding]:
        if self._exempt(file):
            return
        tracker = _ImportTracker({"time", "datetime"})
        tracker.visit(file.tree)

        for name, (module, original) in tracker.from_imports.items():
            if module == "time" and original in _WALL_CLOCK_TIME_ATTRS:
                node = self._find_from_import(file.tree, module, name)
                line, col = (node.lineno, node.col_offset) if node else (1, 0)
                yield self.finding(
                    file,
                    line,
                    col,
                    "`from time import %s` reads the wall clock; simulation "
                    "code must use env.now (runner/benchmarks are exempt)"
                    % original,
                )

        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Attribute):
                continue
            root = _root_name(node.value)
            root_module = tracker.module_aliases.get(root)
            if root_module == "time" and node.attr in _WALL_CLOCK_TIME_ATTRS:
                yield self.finding(
                    file,
                    node.lineno,
                    node.col_offset,
                    "`time.%s` reads the wall clock; simulation code must "
                    "use env.now (runner/benchmarks are exempt)" % node.attr,
                )
                continue
            if node.attr not in _WALL_CLOCK_DATETIME_ATTRS:
                continue
            # datetime.datetime.now(), datetime.date.today(), or
            # `from datetime import datetime; datetime.now()`.
            base = node.value
            if isinstance(base, ast.Attribute) and base.attr in ("datetime", "date"):
                if tracker.module_aliases.get(_root_name(base.value)) == "datetime":
                    yield self.finding(
                        file,
                        node.lineno,
                        node.col_offset,
                        "`datetime.%s.%s` reads the wall clock; simulation "
                        "code must use env.now" % (base.attr, node.attr),
                    )
            elif isinstance(base, ast.Name):
                bound = tracker.from_imports.get(base.id)
                if bound is not None and bound[0] == "datetime":
                    yield self.finding(
                        file,
                        node.lineno,
                        node.col_offset,
                        "`%s.%s` reads the wall clock; simulation code must "
                        "use env.now" % (base.id, node.attr),
                    )

    @staticmethod
    def _find_from_import(tree: ast.AST, module: str, bound_name: str):
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and (node.module or "") == module:
                for alias in node.names:
                    if (alias.asname or alias.name) == bound_name:
                        return node
        return None
