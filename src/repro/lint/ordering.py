"""REP007/REP008 -- iteration order and heap-key totality.

The determinism contract (see ``repro/sim/engine.py``) is that two runs
with the same seeds process identical event sequences.  Two code shapes
silently break it:

**REP007 -- iteration-order dependence.**  ``set``/``frozenset``
iteration order follows hash order, which ``PYTHONHASHSEED`` perturbs
across processes for strings -- any loop over a set whose body matters
is a cross-process nondeterminism hazard, so set iteration is flagged
unconditionally unless wrapped in ``sorted(...)``.  ``dict`` iteration
is insertion-ordered (deterministic when the build order is), so
dict-view loops are flagged only in the high-risk combination: the loop
body *schedules kernel events, triggers them, sends messages, arms
timers or draws RNG* -- there, a later refactor that perturbs insertion
order silently reorders the event sequence or re-pairs RNG draws.
Wrap the iterable in ``sorted(...)`` to fix, or suppress with
``# repro: noqa REP007 -- <why insertion order is deterministic>``.

**REP008 -- heap-key totality.**  Every tuple pushed onto a heap must
carry a total-order tiebreak (the kernel's sequence number idiom:
``(time, priority, seq, event)``) so equal deadlines never fall through
to comparing payload objects -- comparing two ``Event`` instances
raises ``TypeError``, and "fixing" that with ``id(...)`` trades the
crash for memory-address-ordered (run-dependent) scheduling.  A pushed
tuple is flagged when any key element calls ``id(...)`` or when no
element before the final (payload) slot looks like a sequence counter.
Non-tuple pushes are out of scope (the pushed object's own ``__lt__``
is assumed total -- e.g. ``PriorityItem``).
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator, List, Optional, Set, Union

from .exemptions import is_exempt
from .findings import Finding
from .rules import FileRule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import SourceFile

__all__ = ["IterationOrder", "HeapKeyTotality"]

#: Packages the order rules patrol (the simulation stack; tools like
#: repro.lint itself or the runner are not part of the event kernel).
_ORDER_AREAS = ("sim", "cdn", "network", "metrics", "experiments", "scenarios")

#: Calls that feed the event order or the RNG stream when made from a
#: loop body: scheduling/triggering kernel events, sending messages,
#: arming timers, pushing heap entries -- plus every RNG draw method.
_ORDER_SINKS = frozenset(
    {
        # kernel scheduling / triggering (superset of REP003's list)
        "schedule",
        "schedule_at",
        "process",
        "timeout",
        "pooled_timeout",
        "all_of",
        "any_of",
        "succeed",
        "fail",
        "trigger",
        "interrupt",
        # transport / timer entry points
        "send",
        "arm",
        "push",
        "heappush",
        "heapify",
        # RNG draws (mirrors repro.lint.purity._RNG_CALLS)
        "random",
        "uniform",
        "randint",
        "randrange",
        "getrandbits",
        "expovariate",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "paretovariate",
        "betavariate",
        "vonmisesvariate",
        "weibullvariate",
        "triangular",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "jitter",
        "bernoulli",
    }
)

#: Dict-view accessors whose iteration order is the dict's.
_DICT_VIEWS = frozenset({"keys", "values", "items"})

#: Constructors producing hash-ordered collections.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: A heap-key element whose terminal name matches this is a credible
#: total-order tiebreak (the repo idiom: ``seq``/``_eid``/``order``).
_TIEBREAK_NAME = re.compile(r"(seq|eid|order|counter|count|idx|index|tie|rank)")


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_sorted_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"sorted", "min", "max", "len", "enumerate"}
        and (node.func.id != "enumerate" or _iter_is_ordered(node))
    )


def _iter_is_ordered(node: ast.Call) -> bool:
    # ``enumerate(sorted(...))`` is ordered; bare ``enumerate(s)`` is not.
    return bool(node.args) and _is_sorted_call(node.args[0])


class _ScopeTracker:
    """Names bound to hash-ordered (set) values within one scope."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()

    def observe_assign(self, node: Union[ast.Assign, ast.AnnAssign]) -> None:
        value = node.value
        if value is None:
            return
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        if self._is_set_valued(value):
            self.set_names.update(names)
        else:
            # Rebinding to something else clears the taint.
            self.set_names.difference_update(names)

    def _is_set_valued(self, value: ast.expr) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id in _SET_CONSTRUCTORS:
                return True
        if isinstance(value, ast.BinOp) and isinstance(
            value.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_valued(value.left) or self._is_set_valued(
                value.right
            )
        if isinstance(value, ast.Name):
            return value.id in self.set_names
        return False


def _classify_iterable(
    node: ast.expr, scope: _ScopeTracker
) -> Optional[str]:
    """``"set"``/``"dict-view"`` when *node* iterates hash/dict order."""
    if _is_sorted_call(node):
        return None
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if isinstance(node.func, ast.Name) and name in _SET_CONSTRUCTORS:
            return "set"
        if isinstance(node.func, ast.Attribute) and name in _DICT_VIEWS:
            return "dict-view"
        if isinstance(node.func, ast.Name) and name in {"list", "tuple", "enumerate", "reversed"}:
            # list(s) / enumerate(s) preserve the inner ordering hazard.
            if node.args:
                return _classify_iterable(node.args[0], scope)
    if isinstance(node, ast.Name) and node.id in scope.set_names:
        return "set"
    return None


def _body_has_sink(nodes: List[ast.stmt]) -> Optional[str]:
    """Name of the first order sink called anywhere under *nodes*."""
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in _ORDER_SINKS:
                    return name
    return None


def _expr_has_sink(expr: ast.expr) -> Optional[str]:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in _ORDER_SINKS:
                return name
    return None


class IterationOrder(FileRule):
    """REP007 -- no hash-ordered iteration feeding the event order."""

    code = "REP007"
    name = "iteration-order"
    summary = (
        "set iteration (hash order) and dict-view loops that schedule/"
        "send/draw must be sorted(...) or carry an insertion-order noqa"
    )

    def check(self, file: "SourceFile") -> Iterator[Finding]:
        if not file.in_package(*_ORDER_AREAS) or is_exempt(self.code, file):
            return
        yield from self._walk(file.tree, file, _ScopeTracker())

    def _walk(
        self, root: ast.AST, file: "SourceFile", scope: _ScopeTracker
    ) -> Iterator[Finding]:
        for node in ast.iter_child_nodes(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                # Fresh scope: locals do not leak across def/class bodies.
                yield from self._walk(node, file, _ScopeTracker())
                continue
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                scope.observe_assign(node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_for(node, file, scope)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                yield from self._check_comp(node, file, scope)
            yield from self._walk(node, file, scope)

    def _check_for(
        self, node: Union[ast.For, ast.AsyncFor], file: "SourceFile", scope: _ScopeTracker
    ) -> Iterator[Finding]:
        kind = _classify_iterable(node.iter, scope)
        if kind is None:
            return
        if kind == "set":
            yield self.finding(
                file,
                node.iter.lineno,
                node.iter.col_offset,
                "iterating a set: hash order varies across processes "
                "(PYTHONHASHSEED); wrap the iterable in sorted(...)",
            )
            return
        sink = _body_has_sink(node.body + node.orelse)
        if sink is not None:
            yield self.finding(
                file,
                node.iter.lineno,
                node.iter.col_offset,
                "dict-view loop body calls `%s(...)`: iteration order feeds "
                "the event/RNG order; wrap in sorted(...) or justify the "
                "insertion order with `# repro: noqa REP007 -- ...`" % sink,
            )

    def _check_comp(
        self,
        node: Union[ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp],
        file: "SourceFile",
        scope: _ScopeTracker,
    ) -> Iterator[Finding]:
        for gen in node.generators:
            kind = _classify_iterable(gen.iter, scope)
            if kind is None:
                continue
            if kind == "set" and not isinstance(node, ast.SetComp):
                yield self.finding(
                    file,
                    gen.iter.lineno,
                    gen.iter.col_offset,
                    "comprehension iterates a set: hash order varies across "
                    "processes (PYTHONHASHSEED); wrap in sorted(...)",
                )
            elif kind == "dict-view":
                elements: List[ast.expr] = []
                if isinstance(node, ast.DictComp):
                    elements = [node.key, node.value]
                else:
                    elements = [node.elt]
                for element in elements:
                    sink = _expr_has_sink(element)
                    if sink is not None:
                        yield self.finding(
                            file,
                            gen.iter.lineno,
                            gen.iter.col_offset,
                            "dict-view comprehension calls `%s(...)`: iteration "
                            "order feeds the event/RNG order; wrap in "
                            "sorted(...)" % sink,
                        )
                        break


class HeapKeyTotality(FileRule):
    """REP008 -- heap keys must end in a total-order tiebreak."""

    code = "REP008"
    name = "heap-key-totality"
    summary = (
        "heappush tuples need a sequence-number tiebreak before the "
        "payload; id() in a heap key is run-dependent ordering"
    )

    def check(self, file: "SourceFile") -> Iterator[Finding]:
        if not file.in_package(*_ORDER_AREAS) or is_exempt(self.code, file):
            return
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in {"heappush", "_heappush", "_push", "heapreplace", "heappushpop"}:
                continue
            if len(node.args) < 2:
                continue
            item = node.args[1]
            if not isinstance(item, ast.Tuple):
                continue  # non-tuple: the item's own __lt__ is the contract
            yield from self._check_key(node, item, file)

    def _check_key(
        self, call: ast.Call, item: ast.Tuple, file: "SourceFile"
    ) -> Iterator[Finding]:
        for element in item.elts:
            for sub in ast.walk(element):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                ):
                    yield self.finding(
                        file,
                        call.lineno,
                        call.col_offset,
                        "heap key uses id(...): memory-address order changes "
                        "run to run; use a monotonic sequence number",
                    )
                    return
        if len(item.elts) < 2:
            return
        key_elements = item.elts[:-1]  # last slot is the payload by idiom
        for element in key_elements:
            if self._looks_like_tiebreak(element):
                return
        yield self.finding(
            file,
            call.lineno,
            call.col_offset,
            "heap key has no total-order tiebreak before the payload: equal "
            "keys fall through to comparing the payload objects (TypeError "
            "or arbitrary order); append a monotonic sequence number",
        )

    @staticmethod
    def _looks_like_tiebreak(element: ast.expr) -> bool:
        terminal: Optional[str] = None
        if isinstance(element, ast.Name):
            terminal = element.id
        elif isinstance(element, ast.Attribute):
            terminal = element.attr
        elif isinstance(element, ast.Tuple):
            # Composite tie slot, e.g. the sanitizer's (rand, seq).
            return any(
                HeapKeyTotality._looks_like_tiebreak(sub) for sub in element.elts
            )
        elif isinstance(element, ast.Call):
            name = _call_name(element)
            if name is not None and name != "id":
                terminal = name
        if terminal is None:
            return False
        return bool(_TIEBREAK_NAME.search(terminal.lower()))
