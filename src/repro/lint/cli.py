"""Command-line front-end: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 = clean (no new findings), 1 = new findings (or parse
errors), 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, TextIO

from .baseline import Baseline
from .engine import lint_paths
from .rules import RULES

__all__ = ["main", "build_parser", "run"]

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Determinism & purity static analysis for the repro "
        "codebase (rules REP001-REP010; see docs/static-analysis.md).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline JSON of grandfathered findings "
        "(default: ./%s if it exists)" % DEFAULT_BASELINE,
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0 "
        "(fill in each entry's `reason` before committing)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from the current findings: "
        "surviving entries keep their `reason`, stale entries are "
        "dropped, new findings get a TODO reason; exits 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule code and summary, then exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the summary line (diagnostics only)",
    )
    return parser


def _print_rules(out: TextIO) -> None:
    for rule in RULES:
        out.write("%s %-24s %s\n" % (rule.code, rule.name, rule.summary))


def run(args: argparse.Namespace, out: TextIO, err: TextIO) -> int:
    if args.list_rules:
        _print_rules(out)
        return 0

    codes = None
    if args.select:
        codes = [code.strip().upper() for code in args.select.split(",") if code.strip()]

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.no_baseline:
        baseline = Baseline.empty()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            err.write("repro.lint: bad baseline %s: %s\n" % (baseline_path, exc))
            return 2

    try:
        report = lint_paths(args.paths, baseline=baseline, codes=codes)
    except ValueError as exc:  # unknown --select code
        err.write("repro.lint: %s\n" % exc)
        return 2

    if args.write_baseline or args.update_baseline:
        findings = report.all_findings
        # --update-baseline preserves the justifications of entries that
        # survive the rewrite; --write-baseline starts from scratch.
        writer = (
            Baseline.load(baseline_path)
            if args.update_baseline
            else Baseline.empty()
        )
        writer.write(baseline_path, findings=findings)
        err.write(
            "repro.lint: wrote %d entr%s to %s%s\n"
            % (
                len(findings),
                "y" if len(findings) == 1 else "ies",
                baseline_path,
                "" if args.update_baseline else " (fill in each `reason`)",
            )
        )
        return 0

    if args.format == "json":
        payload = {
            "new": [finding.to_dict() for finding in report.new],
            "baselined": [finding.to_dict() for finding in report.baselined],
            "suppressed": [finding.to_dict() for finding in report.suppressed],
            "stale_baseline": [list(key) for key in report.stale_baseline],
            "files_scanned": len(report.files),
            "ok": report.ok,
        }
        out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    else:
        for finding in report.new:
            out.write(finding.format() + "\n")
        for code, package_path, text in report.stale_baseline:
            err.write(
                "repro.lint: stale baseline entry %s %s %r (matches nothing; "
                "remove it)\n" % (code, package_path, text)
            )
        if not args.quiet:
            err.write("repro.lint: %s\n" % report.summary())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    for path in args.paths:
        if not Path(path).exists():
            parser.error("path does not exist: %s" % path)
    return run(args, sys.stdout, sys.stderr)
