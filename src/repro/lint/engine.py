"""Scanning engine: file discovery, parsing, noqa, rule dispatch.

The engine walks the given paths for ``*.py`` files, parses each once,
runs every (selected) rule over the parse trees, drops findings that a
``# repro: noqa`` directive suppresses, and splits the remainder into
*new* versus *baselined* using the committed JSON baseline
(:mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .baseline import Baseline
from .findings import Finding
from .rules import PARSE_ERROR_CODE, FileRule, ProjectRule, select_rules

__all__ = ["SourceFile", "LintReport", "lint_paths", "lint_sources"]

#: ``# repro: noqa`` / ``# repro: noqa REP001,REP004 -- reason`` on the
#: flagged line suppresses findings (all codes when none are listed).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b(?P<codes>[\sA-Z0-9,:]*)", re.IGNORECASE
)
_CODE_RE = re.compile(r"REP\d{3}", re.IGNORECASE)

#: Suppress-everything marker used in the per-line noqa map.
_ALL_CODES: FrozenSet[str] = frozenset({"*"})


def _parse_noqa(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line number -> set of suppressed codes (``{"*"}`` = all)."""
    directives: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "noqa" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        codes = frozenset(code.upper() for code in _CODE_RE.findall(match.group("codes")))
        directives[lineno] = codes or _ALL_CODES
    return directives


def _package_path(path: Path) -> str:
    """*path* rebased to start at the ``repro`` package when possible.

    ``src/repro/sim/engine.py`` and ``/tmp/x/repro/sim/engine.py`` both
    normalise to ``repro/sim/engine.py``, so baseline fingerprints and
    path-scoped rules are independent of the scan root.  Paths with no
    ``repro`` segment are returned relative as-is (posix separators).
    """
    parts = path.parts
    for index, part in enumerate(parts):
        if part == "repro":
            return "/".join(parts[index:])
    return path.as_posix()


class SourceFile:
    """One parsed Python file plus everything rules need to know."""

    __slots__ = (
        "display_path",
        "package_path",
        "source",
        "lines",
        "tree",
        "noqa",
        "parse_error",
    )

    def __init__(self, path: Path, source: str) -> None:
        #: Path as discovered -- what diagnostics print.
        self.display_path = path.as_posix()
        #: Path rebased at the ``repro`` package -- what rules and
        #: baseline fingerprints use.
        self.package_path = _package_path(path)
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.noqa = _parse_noqa(self.lines)
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree: ast.AST = ast.parse(source, filename=self.display_path)
        except SyntaxError as exc:
            self.parse_error = exc
            self.tree = ast.Module(body=[], type_ignores=[])

    # ------------------------------------------------------------------
    def line_text(self, lineno: int) -> str:
        """Stripped source text of 1-based *lineno* (empty if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_package(self, *areas: str) -> bool:
        """``True`` if the file lives under ``repro/<area>/`` for any *area*."""
        for area in areas:
            if self.package_path.startswith("repro/" + area + "/"):
                return True
        return False

    @property
    def module_name(self) -> Optional[str]:
        """Dotted module name when the file sits in a ``repro`` tree."""
        if not self.package_path.startswith("repro/"):
            return None
        parts = self.package_path.split("/")
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][:-3]  # strip .py
        return ".".join(parts)

    def suppresses(self, finding: Finding) -> bool:
        """``True`` if a noqa directive on the finding's line covers it."""
        codes = self.noqa.get(finding.line)
        if codes is None:
            return False
        return codes is _ALL_CODES or "*" in codes or finding.code in codes


@dataclass
class LintReport:
    """Outcome of one lint run."""

    files: List[SourceFile] = field(default_factory=list)
    #: Findings that are neither noqa-suppressed nor baselined.
    new: List[Finding] = field(default_factory=list)
    #: Findings matched (and consumed) by the baseline.
    baselined: List[Finding] = field(default_factory=list)
    #: Findings silenced by a ``# repro: noqa`` directive.
    suppressed: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (stale -- safe to drop).
    stale_baseline: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.new + self.baselined, key=Finding.sort_key)

    @property
    def ok(self) -> bool:
        """``True`` when the run should exit 0 (no new findings)."""
        return not self.new

    def summary(self) -> str:
        return (
            "%d file(s) scanned: %d new finding(s), %d baselined, "
            "%d noqa-suppressed, %d stale baseline entr%s"
            % (
                len(self.files),
                len(self.new),
                len(self.baselined),
                len(self.suppressed),
                len(self.stale_baseline),
                "y" if len(self.stale_baseline) == 1 else "ies",
            )
        )


def _discover(paths: Iterable[Path]) -> List[Path]:
    """All ``*.py`` files under *paths* (files pass through), sorted."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            found.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            found.append(path)
    return found


def lint_sources(
    files: Sequence[SourceFile],
    baseline: Optional[Baseline] = None,
    codes: Optional[Iterable[str]] = None,
) -> LintReport:
    """Run the (selected) rules over already-parsed *files*."""
    rules = select_rules(codes)
    report = LintReport(files=list(files))
    by_path: Dict[str, SourceFile] = {file.display_path: file for file in files}

    raw: List[Finding] = []
    for file in files:
        if file.parse_error is not None:
            exc = file.parse_error
            raw.append(
                Finding(
                    code=PARSE_ERROR_CODE,
                    path=file.display_path,
                    package_path=file.package_path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message="syntax error: %s" % exc.msg,
                    text=file.line_text(exc.lineno or 1),
                )
            )
            continue
        for rule in rules:
            if isinstance(rule, FileRule):
                raw.extend(rule.check(file))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(files))

    raw.sort(key=Finding.sort_key)
    active_baseline = baseline if baseline is not None else Baseline.empty()
    matcher = active_baseline.matcher()
    for finding in raw:
        owner = by_path.get(finding.path)
        if (
            finding.code != PARSE_ERROR_CODE
            and owner is not None
            and owner.suppresses(finding)
        ):
            report.suppressed.append(finding)
        elif finding.code != PARSE_ERROR_CODE and matcher.consume(finding):
            report.baselined.append(finding)
        else:
            report.new.append(finding)
    report.stale_baseline = matcher.stale()
    return report


def lint_paths(
    paths: Iterable[object],
    baseline: Optional[Baseline] = None,
    codes: Optional[Iterable[str]] = None,
) -> LintReport:
    """Discover, parse and lint every Python file under *paths*."""
    files = []
    for path in _discover([Path(str(p)) for p in paths]):
        files.append(SourceFile(path, path.read_text(encoding="utf-8")))
    return lint_sources(files, baseline=baseline, codes=codes)
