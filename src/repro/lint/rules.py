"""Rule framework and registry.

Two kinds of rule:

- :class:`FileRule` -- checks one parsed file at a time (most rules);
- :class:`ProjectRule` -- sees every scanned file at once (REP003 needs
  the import graph to decide what is reachable from ``repro.obs``).

Rules self-describe (``code``, ``name``, ``summary``) so ``--list-rules``
and the docs stay in sync with the implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Sequence

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import SourceFile

__all__ = [
    "FileRule",
    "ProjectRule",
    "RULES",
    "all_codes",
    "rule_for_code",
    "PARSE_ERROR_CODE",
]

#: Pseudo-code attached to files the linter cannot parse; never
#: baselined or suppressed.
PARSE_ERROR_CODE = "REP000"


class _RuleBase:
    """Shared metadata surface of every rule."""

    #: Stable diagnostic code, e.g. ``"REP001"``.
    code: str = ""
    #: Short kebab-ish name, e.g. ``"seeded-rng-only"``.
    name: str = ""
    #: One-line description shown by ``--list-rules``.
    summary: str = ""

    def finding(
        self,
        file: "SourceFile",
        line: int,
        col: int,
        message: str,
    ) -> Finding:
        """Build a :class:`Finding` anchored in *file*."""
        return Finding(
            code=self.code,
            path=file.display_path,
            package_path=file.package_path,
            line=line,
            col=col,
            message=message,
            text=file.line_text(line),
        )


class FileRule(_RuleBase):
    """A rule evaluated independently on each scanned file."""

    def check(self, file: "SourceFile") -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(_RuleBase):
    """A rule evaluated once over the whole set of scanned files."""

    def check_project(self, files: Sequence["SourceFile"]) -> Iterator[Finding]:
        raise NotImplementedError


def _build_registry() -> List[_RuleBase]:
    # Imported here (not at module top) so concrete rule modules can
    # `from .rules import FileRule` without a circular import.
    from .determinism import SeededRngOnly, NoWallClock
    from .ordering import HeapKeyTotality, IterationOrder
    from .purity import ObserverPurity
    from .reentrancy import LaneReentrancy
    from .sharedstate import CrossShardState
    from .structure import SlotsManifest, KwOnlyConfigs
    from .timecmp import NoFloatTimeEquality

    return [
        SeededRngOnly(),
        NoWallClock(),
        ObserverPurity(),
        NoFloatTimeEquality(),
        SlotsManifest(),
        KwOnlyConfigs(),
        IterationOrder(),
        HeapKeyTotality(),
        LaneReentrancy(),
        CrossShardState(),
    ]


#: Every registered rule, in code order.
RULES: List[_RuleBase] = _build_registry()


def all_codes() -> List[str]:
    """The stable codes of every registered rule."""
    return [rule.code for rule in RULES]


def rule_for_code(code: str) -> Optional[_RuleBase]:
    for rule in RULES:
        if rule.code == code:
            return rule
    return None


def select_rules(codes: Optional[Iterable[str]] = None) -> List[_RuleBase]:
    """The registry filtered to *codes* (all rules when ``None``)."""
    if codes is None:
        return list(RULES)
    wanted = set(codes)
    unknown = wanted - set(all_codes())
    if unknown:
        raise ValueError("unknown rule code(s): %s" % ", ".join(sorted(unknown)))
    return [rule for rule in RULES if rule.code in wanted]
