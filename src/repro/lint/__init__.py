"""``repro.lint`` -- determinism & purity static analysis for this repo.

The reproduction's headline claims (TTL inference, the Fig. 14-20 method
comparisons, fast/legacy transport equivalence) rest on invariants the
test suite can only spot-check at runtime:

- every random draw comes from a seeded, named stream;
- no simulation code reads wall-clock time;
- observability code never schedules events or draws randomness, so
  attaching a tracer cannot perturb a run;
- simulated-time floats are never compared with ``==``/``!=``;
- hot-path classes stay ``__slots__``-ed; config dataclasses stay
  keyword-only.

``repro.lint`` machine-checks those invariants over the AST so the next
thousand lines of perf work cannot silently break them.  Run it as::

    python -m repro.lint src          # or: repro lint src
    python -m repro.lint --list-rules

Each rule has a stable ``REPxxx`` code (see :mod:`repro.lint.rules` and
``docs/static-analysis.md``).  Per-line suppression::

    t = time.time()  # repro: noqa REP002 -- wall-clock OK in this shim

Grandfathered findings live in a committed JSON baseline
(``lint-baseline.json``); only *new* findings fail the build.
"""

from __future__ import annotations

from .baseline import Baseline
from .engine import LintReport, SourceFile, lint_paths, lint_sources
from .findings import Finding
from .rules import RULES, all_codes, rule_for_code

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "RULES",
    "SourceFile",
    "all_codes",
    "lint_paths",
    "lint_sources",
    "rule_for_code",
]
