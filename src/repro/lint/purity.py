"""REP003 -- observer purity: ``repro.obs`` must stay side-effect free.

The observability contract (see ``repro/obs/tracer.py``) is that
attaching a tracer or reading counters can never change a simulated
outcome: traces stay bit-identical with observation on or off, which is
what makes the transport-equivalence and determinism tests meaningful.

That holds only if no code reachable from ``repro.obs`` ever

- schedules kernel events (``Environment.schedule`` / ``process`` /
  ``timeout`` / ``pooled_timeout`` / ``all_of`` / ``any_of``, or
  triggering events via ``succeed`` / ``fail`` / ``trigger`` /
  ``interrupt``), or
- draws randomness (``RandomStream`` draw methods or the ``random``
  module).

"Reachable" is computed over the static import graph (shared with
REP010, see :mod:`repro.lint.imports`): every module in ``repro/obs/``
seeds the closure, and any ``repro.*`` module one of them imports
(transitively) is pulled in -- including function-local (lazy) imports
and the ancestor packages a nested import executes -- so purity cannot
be dodged by moving the impure helper into a sibling package or behind
a deferred import.  The simulation kernel itself (``repro/sim/``) is
excluded from the *checked* set: it is the code being guarded against,
and scheduling inside it is its job.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Sequence, Tuple

from .findings import Finding
from .imports import module_map, reachable_modules
from .rules import ProjectRule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import SourceFile

__all__ = ["ObserverPurity"]

#: Method names that schedule or trigger kernel events.
_SCHEDULING_CALLS = frozenset(
    {
        "schedule",
        "process",
        "timeout",
        "pooled_timeout",
        "all_of",
        "any_of",
        "succeed",
        "fail",
        "trigger",
        "interrupt",
    }
)

#: Draw methods of RandomStream / random.Random (any receiver counts:
#: an observer holding *any* RNG handle is already suspect).
_RNG_CALLS = frozenset(
    {
        "random",
        "uniform",
        "randint",
        "randrange",
        "getrandbits",
        "expovariate",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "paretovariate",
        "betavariate",
        "vonmisesvariate",
        "weibullvariate",
        "triangular",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "jitter",
        "bernoulli",
    }
)


class _PurityVisitor(ast.NodeVisitor):
    """Collects impure call sites in one module."""

    def __init__(self) -> None:
        self.hits: List[Tuple[int, int, str]] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in _SCHEDULING_CALLS:
            self.hits.append(
                (
                    node.lineno,
                    node.col_offset,
                    "observer code calls `%s(...)`, which schedules/triggers "
                    "kernel events; repro.obs must stay purely observational "
                    "so traces are bit-identical with observation off" % name,
                )
            )
        elif name in _RNG_CALLS:
            self.hits.append(
                (
                    node.lineno,
                    node.col_offset,
                    "observer code calls `%s(...)`, an RNG draw; repro.obs "
                    "must never touch random streams" % name,
                )
            )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".")[0] == "random":
                self.hits.append(
                    (
                        node.lineno,
                        node.col_offset,
                        "observer code imports the `random` module; repro.obs "
                        "must never touch random streams",
                    )
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and (node.module or "").split(".")[0] == "random":
            self.hits.append(
                (
                    node.lineno,
                    node.col_offset,
                    "observer code imports from the `random` module; "
                    "repro.obs must never touch random streams",
                )
            )
        self.generic_visit(node)


class ObserverPurity(ProjectRule):
    """REP003 -- code reachable from ``repro.obs`` never schedules or draws."""

    code = "REP003"
    name = "observer-purity"
    summary = (
        "code reachable from repro.obs must not schedule kernel events "
        "or draw RNG (tracers/counters are purely observational)"
    )

    def check_project(self, files: Sequence["SourceFile"]) -> Iterator[Finding]:
        by_module = module_map(files)
        seeds = [
            module
            for module in by_module
            if module == "repro.obs" or module.startswith("repro.obs.")
        ]
        # The kernel is the guarded API, not an observer: do not
        # traverse into or report on repro.sim.*.
        reachable = reachable_modules(
            by_module,
            seeds,
            stop=lambda module: module == "repro.sim"
            or module.startswith("repro.sim."),
        )

        for module in sorted(reachable):
            if module == "repro.sim" or module.startswith("repro.sim."):
                continue
            file = by_module[module]
            visitor = _PurityVisitor()
            visitor.visit(file.tree)
            for line, col, message in visitor.hits:
                yield self.finding(file, line, col, message)
