"""Committed baseline of grandfathered findings.

The baseline is a JSON file (``lint-baseline.json`` at the repo root)
listing findings that predate a rule or are accepted false positives.
Every entry carries a human ``reason`` -- the review contract is that a
baseline entry without a justification is a bug.

Matching is by fingerprint ``(code, package_path, stripped line text)``,
*not* line number, so unrelated edits that shift a grandfathered line do
not resurrect it as "new".  Matching is count-aware: two identical
grandfathered lines need two entries (or one entry with ``"count": 2``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from .findings import Finding

__all__ = ["Baseline", "BaselineMatcher"]

_VERSION = 1

Fingerprint = Tuple[str, str, str]


class BaselineMatcher:
    """Consumes baseline slots as findings match them (count-aware)."""

    def __init__(self, slots: Dict[Fingerprint, int]) -> None:
        self._slots = dict(slots)

    def consume(self, finding: Finding) -> bool:
        """``True`` (and uses up one slot) if *finding* is grandfathered."""
        remaining = self._slots.get(finding.fingerprint, 0)
        if remaining <= 0:
            return False
        self._slots[finding.fingerprint] = remaining - 1
        return True

    def stale(self) -> List[Fingerprint]:
        """Fingerprints with unconsumed slots -- entries that match nothing."""
        return sorted(key for key, count in self._slots.items() if count > 0)


_REASON_PLACEHOLDER = "TODO: justify this baseline entry"


class Baseline:
    """The parsed baseline file."""

    def __init__(self, slots: Optional[Dict[Fingerprint, int]] = None) -> None:
        self._slots: Dict[Fingerprint, int] = dict(slots or {})
        #: Human justifications by fingerprint, kept so a rewrite
        #: (``repro lint --update-baseline``) preserves the reasons of
        #: entries that survive instead of resetting them to TODO.
        self._reasons: Dict[Fingerprint, str] = {}

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "Baseline":
        return cls()

    @classmethod
    def load(cls, path: object) -> "Baseline":
        """Load *path*; a missing file is an empty baseline."""
        file_path = Path(str(path))
        if not file_path.exists():
            return cls.empty()
        payload = json.loads(file_path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or payload.get("version") != _VERSION:
            raise ValueError(
                "unsupported baseline format in %s (want version %d)"
                % (file_path, _VERSION)
            )
        slots: Dict[Fingerprint, int] = {}
        baseline = cls()
        for entry in payload.get("entries", []):
            key = (
                str(entry["code"]),
                str(entry["path"]),
                str(entry.get("text", "")),
            )
            slots[key] = slots.get(key, 0) + int(entry.get("count", 1))
            reason = str(entry.get("reason", "")).strip()
            if reason and key not in baseline._reasons:
                baseline._reasons[key] = reason
        baseline._slots = slots
        return baseline

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            key = finding.fingerprint
            baseline._slots[key] = baseline._slots.get(key, 0) + 1
        return baseline

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(self._slots.values())

    def matcher(self) -> BaselineMatcher:
        return BaselineMatcher(self._slots)

    def write(self, path: object, findings: Optional[Iterable[Finding]] = None) -> None:
        """Serialise to *path*.

        When *findings* is given, entries are written from them (one per
        finding, with line numbers as a human aid); otherwise from the
        fingerprint slots.  Entries whose fingerprint carries a loaded
        ``reason`` (see :meth:`load`) keep it; fresh entries get a
        placeholder that review should replace with an actual
        justification.
        """
        reasons = self._reasons
        entries: List[Dict[str, object]] = []
        if findings is not None:
            counted: Dict[Fingerprint, Dict[str, object]] = {}
            for finding in sorted(findings, key=Finding.sort_key):
                key = finding.fingerprint
                if key in counted:
                    counted[key]["count"] = int(counted[key]["count"]) + 1  # type: ignore[arg-type]
                    continue
                entry: Dict[str, object] = {
                    "code": finding.code,
                    "path": finding.package_path,
                    "line": finding.line,
                    "text": finding.text,
                    "count": 1,
                    "reason": reasons.get(key, _REASON_PLACEHOLDER),
                }
                counted[key] = entry
            entries = list(counted.values())
        else:
            for (code, package_path, text), count in sorted(self._slots.items()):
                key = (code, package_path, text)
                entries.append(
                    {
                        "code": code,
                        "path": package_path,
                        "text": text,
                        "count": count,
                        "reason": reasons.get(key, _REASON_PLACEHOLDER),
                    }
                )
        for entry in entries:
            if entry.get("count") == 1:
                del entry["count"]
        payload = {"version": _VERSION, "entries": entries}
        Path(str(path)).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )
