"""Static import graph shared by the reachability rules (REP003/REP010).

Both observer purity (REP003) and cross-shard shared state (REP010) are
*reachability* properties: a module is in scope because something in the
guarded set imports it, transitively.  This module owns the one import
graph both rules traverse so their notion of "reachable" cannot drift.

Three properties of the resolver matter for soundness:

- **Function-local (lazy) imports count.**  The AST walk descends into
  function bodies, so ``def f(): from repro.x import y`` is an edge just
  like a top-level import -- lazy plumbing (the scenario loaders, the
  kernel's cycle-breaking local imports) cannot hide reachability.
- **Importing a nested module imports its ancestor packages.**  At
  runtime ``import repro.a.b`` executes ``repro/a/__init__.py`` first,
  so ``repro.a`` is recorded as an edge alongside ``repro.a.b``.  The
  sole exception is the distribution root: ``repro/__init__.py``
  re-exports the entire library, so treating it as an edge would
  collapse every closure to "the whole tree" and the rules to noise.
  The root package is reachable only when imported by name.
- **``from <pkg> import name`` records ``<pkg>.name``** so importing a
  sibling *module* through its package is still an edge (the resolver
  cannot tell modules from attributes statically; the spurious names
  are harmless because closure traversal only follows names that
  correspond to scanned files).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import SourceFile

__all__ = [
    "imported_modules",
    "file_imports",
    "module_map",
    "reachable_modules",
]


def _add_with_ancestors(name: str, imported: Set[str]) -> None:
    """Record *name* plus every ancestor package strictly below ``repro``."""
    parts = name.split(".")
    for end in range(2, len(parts) + 1):
        imported.add(".".join(parts[:end]))
    if len(parts) == 1:
        # Bare ``import repro`` names the root explicitly: keep it.
        imported.add(name)


def imported_modules(tree: ast.AST, module_name: str, is_package: bool) -> Set[str]:
    """Absolute ``repro.*`` module names imported by *tree*.

    ``from .x import y`` resolves against the module's ``__package__``
    (the module itself for an ``__init__.py``, its parent otherwise).
    See the module docstring for the lazy-import, ancestor-package and
    ``<pkg>.name`` edge rules.
    """
    parts = module_name.split(".")
    package = parts if is_package else parts[:-1]
    imported: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    _add_with_ancestors(alias.name, imported)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = package[: len(package) - (node.level - 1)]
                if node.module:
                    anchor = anchor + node.module.split(".")
                base = ".".join(anchor)
            if base == "repro" or base.startswith("repro."):
                _add_with_ancestors(base, imported)
                for alias in node.names:
                    imported.add(base + "." + alias.name)
    return imported


def file_imports(file: "SourceFile") -> Set[str]:
    """The ``repro.*`` edges out of one scanned file."""
    module = file.module_name
    if module is None:
        return set()
    is_package = file.package_path.endswith("/__init__.py")
    return imported_modules(file.tree, module, is_package)


def module_map(files: Sequence["SourceFile"]) -> Dict[str, "SourceFile"]:
    """Dotted module name -> scanned file, for every in-package file."""
    by_module: Dict[str, "SourceFile"] = {}
    for file in files:
        module = file.module_name
        if module is not None:
            by_module[module] = file
    return by_module


def reachable_modules(
    by_module: Dict[str, "SourceFile"],
    seeds: Iterable[str],
    stop: Optional[Callable[[str], bool]] = None,
) -> Set[str]:
    """BFS closure of *seeds* over the static import graph.

    A module matching *stop* joins the closure but is not traversed
    through (REP003 stops at ``repro.sim.*``: the kernel is the guarded
    API, not an observer).  Seeds not present in *by_module* are
    ignored.
    """
    reachable: Set[str] = set()
    frontier = [seed for seed in seeds if seed in by_module]
    while frontier:
        module = frontier.pop()
        if module in reachable:
            continue
        reachable.add(module)
        if stop is not None and stop(module):
            continue
        for target in file_imports(by_module[module]):
            if target in by_module and target not in reachable:
                frontier.append(target)
    return reachable
