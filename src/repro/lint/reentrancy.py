"""REP009 -- callback-reentrancy hazards on timer lanes.

A :class:`~repro.sim.timers.CallbackLane` runs its ``on_expire``
callbacks *inside* the control-event sweep, mid-iteration over the
lane's backing arrays.  The PR 8 reentrant-push bug is the cautionary
tale: a callback that touches the lane's internals -- appending to or
truncating ``deadlines``/``payloads``/``waiters``, moving ``head``,
re-arming ``control`` -- corrupts the sweep that is calling it (skipped
or double-fired slots, duplicate heap entries).  The one reentrancy-
safe API is :meth:`CallbackLane.push`, whose ``_sweeping`` handshake
defers re-arming to the sweep itself.

The rule finds every ``CallbackLane(...)`` construction, resolves the
callback arguments (``self._method`` or a local function), and walks
the callback -- plus same-class helpers it calls, transitively -- for
writes to lane backing state.  ``repro/sim/timers.py`` itself is
exempt: the sweep is the code being guarded against, and mutating the
arrays is its job.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from .exemptions import is_exempt
from .findings import Finding
from .rules import FileRule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import SourceFile

__all__ = ["LaneReentrancy"]

#: Backing state of a lane; writes from inside a registered callback
#: corrupt the sweep mid-iteration.
_LANE_FIELDS = frozenset({"deadlines", "payloads", "waiters", "head", "control"})

#: Mutating container methods (``lane.deadlines.append(...)`` etc.).
_MUTATORS = frozenset(
    {"append", "extend", "insert", "pop", "remove", "clear", "sort", "reverse"}
)


def _attr_chain_field(node: ast.Attribute) -> Optional[str]:
    """The lane field named by *node* (``x.deadlines`` -> ``deadlines``)."""
    if node.attr in _LANE_FIELDS:
        return node.attr
    return None


class _ClassMethods:
    """Methods of one class body, by name."""

    def __init__(self, node: Optional[ast.ClassDef] = None) -> None:
        self.methods: Dict[str, ast.FunctionDef] = {}
        if node is not None:
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.methods[item.name] = item

    @classmethod
    def empty(cls) -> "_ClassMethods":
        return cls(None)


class LaneReentrancy(FileRule):
    """REP009 -- lane callbacks must not mutate lane backing state."""

    code = "REP009"
    name = "lane-reentrancy"
    summary = (
        "CallbackLane/timer-lane callbacks must not mutate the lane's "
        "backing arrays or control event; push() is the safe re-entry"
    )

    def check(self, file: "SourceFile") -> Iterator[Finding]:
        if not file.in_package("sim", "cdn", "network", "experiments", "scenarios"):
            return
        if file.package_path == "repro/sim/timers.py" or is_exempt(self.code, file):
            return  # the sweep itself owns the arrays
        # Map enclosing classes so self.<method> callbacks resolve.
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node, file)
        yield from self._check_bare(file.tree, file)

    # ------------------------------------------------------------------
    def _check_class(self, cls: ast.ClassDef, file: "SourceFile") -> Iterator[Finding]:
        methods = _ClassMethods(cls)
        for method in methods.methods.values():
            for call in ast.walk(method):
                if not isinstance(call, ast.Call):
                    continue
                if not self._is_lane_ctor(call):
                    continue
                for callback_name in self._callback_refs(call):
                    target = methods.methods.get(callback_name)
                    if target is None:
                        continue
                    yield from self._scan_callback(
                        target, methods, file, registered=callback_name
                    )

    def _check_bare(self, root: ast.AST, file: "SourceFile") -> Iterator[Finding]:
        # Module-level / local-function registrations: resolve bare names.
        local_funcs: Dict[str, ast.FunctionDef] = {}
        for node in ast.walk(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_funcs.setdefault(node.name, node)
        for node in ast.walk(root):
            if not isinstance(node, ast.Call) or not self._is_lane_ctor(node):
                continue
            for callback_name in self._callback_refs(node, bare=True):
                target = local_funcs.get(callback_name)
                if target is not None:
                    yield from self._scan_callback(
                        target, _ClassMethods.empty(), file, registered=callback_name
                    )

    # ------------------------------------------------------------------
    @staticmethod
    def _is_lane_ctor(call: ast.Call) -> bool:
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        return name == "CallbackLane"

    @staticmethod
    def _callback_refs(call: ast.Call, bare: bool = False) -> List[str]:
        """Names of the callback arguments.

        ``bare=False`` resolves ``self.<method>`` references (handled by
        the class pass); ``bare=True`` resolves plain-name references
        only (the module/local pass), so the two passes never both claim
        the same registration.
        """
        names: List[str] = []
        candidates = list(call.args[1:]) + [kw.value for kw in call.keywords]
        for arg in candidates:
            if bare:
                if isinstance(arg, ast.Name):
                    names.append(arg.id)
            elif (
                isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id == "self"
            ):
                names.append(arg.attr)
        return names

    def _scan_callback(
        self,
        func: ast.FunctionDef,
        methods: _ClassMethods,
        file: "SourceFile",
        registered: str,
    ) -> Iterator[Finding]:
        """Flag lane-state writes in *func* and same-class callees."""
        visited: Set[str] = set()
        frontier: List[ast.FunctionDef] = [func]
        while frontier:
            current = frontier.pop()
            if current.name in visited:
                continue
            visited.add(current.name)
            yield from self._scan_body(current, file, registered)
            for node in ast.walk(current):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                ):
                    callee = methods.methods.get(node.func.attr)
                    if callee is not None and callee.name not in visited:
                        frontier.append(callee)

    def _scan_body(
        self, func: ast.FunctionDef, file: "SourceFile", registered: str
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            hit: Optional[Tuple[int, int, str]] = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    field = self._written_field(target)
                    if field is not None:
                        hit = (node.lineno, node.col_offset, "assigns `.%s`" % field)
                        break
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    field = self._written_field(target)
                    if field is not None:
                        hit = (node.lineno, node.col_offset, "deletes from `.%s`" % field)
                        break
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                # lane.deadlines.append(...) / schedule_at(lane.control, ..)
                inner = node.func.value
                if (
                    node.func.attr in _MUTATORS
                    and isinstance(inner, ast.Attribute)
                    and inner.attr in _LANE_FIELDS
                ):
                    hit = (
                        node.lineno,
                        node.col_offset,
                        "calls `.%s.%s(...)`" % (inner.attr, node.func.attr),
                    )
                elif node.func.attr in {"schedule", "schedule_at"}:
                    for arg in node.args:
                        if isinstance(arg, ast.Attribute) and arg.attr == "control":
                            hit = (
                                node.lineno,
                                node.col_offset,
                                "schedules a lane `.control` event directly",
                            )
                            break
            if hit is not None:
                line, col, what = hit
                yield self.finding(
                    file,
                    line,
                    col,
                    "callback `%s` (registered on a CallbackLane) %s: mutating "
                    "lane backing state mid-sweep corrupts the expiry scan; "
                    "go through the lane's push() API instead" % (registered, what),
                )

    @staticmethod
    def _written_field(target: ast.expr) -> Optional[str]:
        # x.head = ... / x.deadlines[...] = ... / del x.payloads[...]
        if isinstance(target, ast.Attribute):
            return _attr_chain_field(target)
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            return _attr_chain_field(target.value)
        return None
