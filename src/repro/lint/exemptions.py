"""Per-rule exemption manifest.

Some code is *supposed* to break a rule: the runner keeps wall-clock
books on real executions, benchmarks exist to time things, and harness
telemetry (:mod:`repro.obs.telemetry`) is a profiler.  Rather than
scattering hardcoded path checks through the rules (or blanketing files
with ``# repro: noqa``), every deliberate carve-out lives here, in one
reviewable table with a reason per entry.

An entry matches a file when its prefix matches either the file's
``package_path`` (rebased at ``repro/``, e.g. ``repro/obs/telemetry``)
or its ``display_path`` (for trees outside the package, e.g.
``benchmarks``).  Prefix matching means ``repro/obs/telemetry`` covers
``repro/obs/telemetry.py`` and any future ``repro/obs/telemetry_*.py``
split, per the scoping in ISSUE 5.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["EXEMPTIONS", "is_exempt", "exemption_reason"]

#: rule code -> (path prefix -> reason).  Keep reasons honest: they are
#: the review record for why the rule does not apply.
EXEMPTIONS: Dict[str, Dict[str, str]] = {
    "REP002": {
        "repro/runner/": (
            "wall-time bookkeeping of real executions is the runner's job"
        ),
        "benchmarks": "timing is the point of a benchmark",
        "repro/obs/telemetry": (
            "harness telemetry profiles the harness itself; it reads "
            "wall clocks by design and never feeds simulated outcomes"
        ),
        "repro/obs/live": (
            "live heartbeats are rate-limited in wall time and stamp "
            "wall-clock ages for the watcher; purely observational, "
            "nothing feeds back into simulated outcomes"
        ),
    },
    "REP010": {
        "repro/runner/": (
            "runner bookkeeping (registry memoization, code-version "
            "cache) lives outside the simulated world; no simulated "
            "outcome ever reads it"
        ),
        "repro/scenarios/registry": (
            "import-time registration: @register_scenario populates the "
            "registry while modules load, identically in every process, "
            "before any shard runs"
        ),
    },
}


def _match(file, prefix: str) -> bool:
    if file.package_path.startswith(prefix):
        return True
    return file.display_path.startswith(prefix) or ("/" + prefix) in file.display_path


def _lookup(code: str, file) -> Tuple[str, str]:
    for prefix, reason in EXEMPTIONS.get(code, {}).items():
        if _match(file, prefix):
            return prefix, reason
    return "", ""


def is_exempt(code: str, file) -> bool:
    """``True`` when *file* is deliberately exempt from rule *code*."""
    return bool(_lookup(code, file)[0])


def exemption_reason(code: str, file) -> str:
    """The manifest reason for the exemption ("" when not exempt)."""
    return _lookup(code, file)[1]
