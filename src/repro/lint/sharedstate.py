"""REP010 -- cross-shard shared state.

The sharded sweep path (``repro.experiments.sharding`` splitting a
deployment's users over worker processes, merged by the worker-count-
invariant fold in ``merge_shard_metrics``) is only correct if every
shard computes the same thing it would have computed in any other
worker layout.  Module-level mutable state breaks that silently: a
counter or cache that one shard advances leaks into the next shard run
*in the same process* but not across processes, so results depend on
how runs were packed onto workers.

The rule computes the static import closure (shared with REP003, see
:mod:`repro.lint.imports`) of the sharded entry points --
``repro.experiments.sharding`` and ``repro.cdn.cohort`` -- and, in
every reachable module, flags

- rebinding a module-level name via ``global`` from inside a function
  (the ``_SEQ += 1`` counter shape), and
- mutating a module-level container binding (dict/list/set literal or
  constructor) from inside a function: ``CACHE[key] = ...``,
  ``REGISTRY.update(...)``, ``ITEMS.append(...)`` and friends.

Import-time mutation (decorator-driven registration executed while the
module loads) is *not* flagged from module scope: every process runs
the same imports, so import-time state is identical across shards.
Function-bodied registration helpers that only ever run at import time
belong in the exemption manifest with that reason spelled out.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Sequence, Set, Tuple

from .exemptions import is_exempt
from .findings import Finding
from .imports import module_map, reachable_modules
from .rules import ProjectRule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import SourceFile

__all__ = ["CrossShardState"]

#: Entry points of the sharded code path.
_SEEDS = ("repro.experiments.sharding", "repro.cdn.cohort")

#: Constructors whose module-level result is a mutable container.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)

#: Container methods that mutate the receiver.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
    }
)


def _module_mutables(tree: ast.AST) -> Set[str]:
    """Module-level names bound to mutable containers."""
    mutables: Set[str] = set()
    for node in ast.iter_child_nodes(tree):
        targets: List[ast.expr] = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        if _is_mutable_value(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    mutables.add(target.id)
    return mutables


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _module_bindings(tree: ast.AST) -> Set[str]:
    """Every module-level assigned name (for the ``global`` check)."""
    bound: Set[str] = set()
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
    return bound


class _MutationVisitor(ast.NodeVisitor):
    """Collects function-scope mutations of module-level state."""

    def __init__(self, mutables: Set[str], bindings: Set[str]) -> None:
        self.mutables = mutables
        self.bindings = bindings
        self.hits: List[Tuple[int, int, str]] = []
        self._depth = 0

    # -- only function bodies count (import-time mutation is uniform) --
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Global(self, node: ast.Global) -> None:
        if self._depth > 0:
            for name in node.names:
                if name in self.bindings or name in self.mutables:
                    self.hits.append(
                        (
                            node.lineno,
                            node.col_offset,
                            "rebinds module-level `%s` via `global`: per-process "
                            "state diverges across shard layouts" % name,
                        )
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self._depth > 0
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.mutables
        ):
            self.hits.append(
                (
                    node.lineno,
                    node.col_offset,
                    "mutates module-level `%s` via `.%s(...)`: shared mutable "
                    "state leaks between shard runs in one process"
                    % (node.func.value.id, node.func.attr),
                )
            )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._depth > 0:
            for target in node.targets:
                self._check_subscript(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._depth > 0:
            self._check_subscript(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        if self._depth > 0:
            for target in node.targets:
                self._check_subscript(target)
        self.generic_visit(node)

    def _check_subscript(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in self.mutables
        ):
            self.hits.append(
                (
                    target.lineno,
                    target.col_offset,
                    "writes module-level `%s[...]`: shared mutable state leaks "
                    "between shard runs in one process" % target.value.id,
                )
            )


class CrossShardState(ProjectRule):
    """REP010 -- no module-level mutable state on sharded code paths."""

    code = "REP010"
    name = "cross-shard-state"
    summary = (
        "modules reachable from the sharded sweep path must not mutate "
        "module-level state from functions (breaks the merge algebra)"
    )

    def check_project(self, files: Sequence["SourceFile"]) -> Iterator[Finding]:
        by_module = module_map(files)
        reachable = reachable_modules(by_module, _SEEDS)
        for module in sorted(reachable):
            file = by_module[module]
            if is_exempt(self.code, file):
                continue
            mutables = _module_mutables(file.tree)
            bindings = _module_bindings(file.tree)
            if not mutables and not bindings:
                continue
            visitor = _MutationVisitor(mutables, bindings)
            visitor.visit(file.tree)
            for line, col, message in visitor.hits:
                yield self.finding(file, line, col, message)
