"""REP005 / REP006 -- structural invariants of hot-path and config classes.

REP005: the classes named in :data:`SLOTS_MANIFEST` are allocated on
the simulation hot path (per event, per message, or once per
environment with attribute access in the inner loop).  Each must keep
an explicit ``__slots__`` declaration (or ``@dataclass(slots=True)``):
dropping it silently reverts every instance to a ``__dict__``, costing
both memory and the attribute-access speed the PR-3 kernel work paid
for.  The manifest is also drift-checked: a listed class that no longer
exists in its file is itself a finding, so renames keep the manifest
honest.

REP006: dataclasses whose name ends in ``Config`` are knob bags built
and overridden by keyword; they must declare ``kw_only=True`` so that
reordering or inserting a field can never silently re-bind positional
call sites to the wrong knob (cf. ``TestbedConfig``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from .findings import Finding
from .rules import FileRule

__all__ = ["SlotsManifest", "KwOnlyConfigs", "SLOTS_MANIFEST"]

#: package path -> {class name: why it is hot}.
SLOTS_MANIFEST: Dict[str, Dict[str, str]] = {
    "repro/sim/engine.py": {
        "Event": "allocated per scheduled event",
        "Timeout": "allocated per sleep on the hot loop",
        "_PooledTimeout": "recycled per hot-loop sleep",
        "Environment": "attribute reads in the inner event loop",
    },
    "repro/sim/process.py": {
        "Process": "allocated per actor / legacy transfer",
        "Condition": "allocated per all_of/any_of wait",
        "AllOf": "condition subclass",
        "AnyOf": "condition subclass",
        "_Initialize": "allocated per process start",
        "_Interruption": "allocated per interrupt",
    },
    "repro/sim/resources.py": {
        "Request": "allocated per contended port claim",
        "Release": "allocated per legacy release",
        "StorePut": "allocated per inbox delivery",
        "StoreGet": "allocated per inbox read",
        "PriorityItem": "allocated per prioritised item",
    },
    "repro/network/link.py": {
        "_FastTransfer": "one per in-flight message (pooled)",
    },
    "repro/network/message.py": {
        "Message": "one per message sent through the fabric",
    },
    "repro/obs/tracer.py": {
        "Tracer": "enabled-guard read on every instrumented site",
        "RecordingTracer": "emit() on every instrumented site",
    },
    "repro/obs/counters.py": {
        "FabricCounters": "incremented inline on the message path",
    },
    "repro/sim/timers.py": {
        "CallbackLane": "swept per expiring deadline batch",
    },
    "repro/cdn/cohort.py": {
        "UserCohort": "attribute reads per visit on the user plane",
        "_CohortUserView": "one per user when views are materialised",
    },
    "repro/metrics/incremental.py": {
        "AggregateUserMetrics": "on_observe per user visit",
    },
}


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    """The ``@dataclass`` / ``@dataclass(...)`` decorator, if present."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return decorator
    return None


def _dataclass_flag(decorator: ast.expr, flag: str) -> bool:
    """``True`` if ``@dataclass(..., <flag>=True, ...)``."""
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == flag:
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is True
    return False


def _declares_slots(node: ast.ClassDef) -> bool:
    decorator = _dataclass_decorator(node)
    if decorator is not None and _dataclass_flag(decorator, "slots"):
        return True
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(statement, ast.AnnAssign):
            target = statement.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


class SlotsManifest(FileRule):
    """REP005 -- manifest-listed hot-path classes must declare __slots__."""

    code = "REP005"
    name = "slots-manifest"
    summary = (
        "hot-path classes listed in repro.lint.structure.SLOTS_MANIFEST "
        "must declare __slots__ (or @dataclass(slots=True))"
    )

    def check(self, file) -> Iterator[Finding]:
        required = SLOTS_MANIFEST.get(file.package_path)
        if not required:
            return
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(file.tree)
            if isinstance(node, ast.ClassDef)
        }
        for name, reason in sorted(required.items()):
            node = classes.get(name)
            if node is None:
                yield self.finding(
                    file,
                    1,
                    0,
                    "class `%s` is listed in the __slots__ manifest but no "
                    "longer exists here -- update SLOTS_MANIFEST in "
                    "repro/lint/structure.py" % name,
                )
            elif not _declares_slots(node):
                yield self.finding(
                    file,
                    node.lineno,
                    node.col_offset,
                    "hot-path class `%s` (%s) must declare __slots__ or "
                    "@dataclass(slots=True)" % (name, reason),
                )


class KwOnlyConfigs(FileRule):
    """REP006 -- config dataclasses are keyword-only."""

    code = "REP006"
    name = "kw-only-configs"
    summary = (
        "dataclasses named *Config must declare kw_only=True so field "
        "reordering can never re-bind positional call sites"
    )

    def check(self, file) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef) or not node.name.endswith("Config"):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            if not _dataclass_flag(decorator, "kw_only"):
                yield self.finding(
                    file,
                    node.lineno,
                    node.col_offset,
                    "config dataclass `%s` must be declared "
                    "@dataclass(kw_only=True)" % node.name,
                )
