"""REP004 -- no ``==`` / ``!=`` on simulated-time floats.

Simulated timestamps are accumulated floats (``env.now`` advances by
summed delays), so exact equality is representation-dependent: two
logically simultaneous instants can differ in the last ulp depending on
the order operations were fused, and a refactor that preserves the
event *order* can still flip every ``t == now`` branch.  Use the
tolerance helpers in :mod:`repro.sim.simtime` (``times_equal`` /
``times_close``) or an ordering comparison instead.

Detection is a name heuristic: a comparison operand is "time-like" when
it is (or dereferences to) ``now`` / ``sim_time``, ends in ``_time`` or
``_time_s``, or is one of the known timestamp fields (``created_at``,
``expires_at``, ``deadline_s`` ...).  Comparing such an operand with
``==``/``!=`` is flagged regardless of the other side -- even literal
zero, because ``total_time == 0`` on an accumulated float is exactly
the bug class this rule exists for.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import FileRule

__all__ = ["NoFloatTimeEquality"]

_EXACT_NAMES = frozenset(
    {
        "now",
        "sim_time",
        "time_s",
        "created_at",
        "expires_at",
        "deadline",
        "deadline_s",
        "timestamp",
    }
)
_SUFFIXES = ("_time", "_time_s")


def _terminal_identifier(node: ast.AST) -> str:
    """The rightmost identifier of a name/attribute/call operand."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_time_like(node: ast.AST) -> bool:
    name = _terminal_identifier(node)
    if not name:
        return False
    return name in _EXACT_NAMES or name.endswith(_SUFFIXES)


class NoFloatTimeEquality(FileRule):
    """REP004 -- require tolerance helpers for simulated-time equality."""

    code = "REP004"
    name = "no-float-time-equality"
    summary = (
        "never compare simulated-time floats with == / != -- use "
        "repro.sim.simtime.times_equal/times_close or an ordering test"
    )

    def check(self, file) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                culprit = None
                if _is_time_like(left):
                    culprit = _terminal_identifier(left)
                elif _is_time_like(right):
                    culprit = _terminal_identifier(right)
                if culprit is None:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    file,
                    node.lineno,
                    node.col_offset,
                    "`%s` compared with `%s`: simulated-time floats must use "
                    "repro.sim.simtime.times_equal/times_close (or <=, <) "
                    "instead of exact equality" % (culprit, symbol),
                )
