"""The :class:`Finding` record produced by every lint rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Finding"]


@dataclass(frozen=True, kw_only=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the filesystem path as scanned (what the user clicks);
    ``package_path`` is the path normalised to start at the ``repro``
    package (e.g. ``repro/sim/engine.py``), so baselines written from
    one checkout match scans started from another directory.
    ``text`` is the stripped source line, the third component of the
    baseline fingerprint -- moving a grandfathered line does not create
    a "new" finding, editing it does.
    """

    code: str
    path: str
    package_path: str
    line: int
    col: int
    message: str
    text: str = ""

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.code, self.package_path, self.text)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def format(self) -> str:
        """One ``path:line:col: CODE message`` diagnostic line."""
        return "%s:%d:%d: %s %s" % (self.path, self.line, self.col, self.code, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "package_path": self.package_path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "text": self.text,
        }
