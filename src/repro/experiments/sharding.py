"""Deterministic user-population sharding for planet-scale runs.

A sharded run splits the *user* population of one deployment across
``user_shards`` independent simulations: shard ``k`` simulates exactly
the users whose per-server index ``u`` satisfies ``u % user_shards ==
k``, against the full server plane.  Server/provider placement draws
precede user draws on every RNG stream, so all shards agree on the
server plane; user node ids keep the global index
(``server-3-user-7`` names the same logical user in every sharding).

The merge algebra here is *exact* in the same sense as the runner's
result merging (PR 5): merging the per-shard metrics is a pure,
deterministic fold in shard order, so ``merge(workers=N)`` over a set
of shard specs is bit-identical to ``merge(workers=1)`` over the same
specs -- distribution never changes the numbers.  Traffic and load
counters sum across shards (each shard's server plane carries its own
refresh traffic, so sums count the shared server<->provider plane once
per shard -- documented, not hidden); per-server consistency metrics
average across shards.

Sharding with more than one shard requires ``user_metrics="aggregate"``:
aggregate mode keys user metrics by home server, giving every shard the
same key set so the weighted merge below is well defined (per-user keys
would also be disjoint-unionable, but the whole point of sharding is to
not materialise per-user state).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from ..obs.counters import staleness_histogram
from ..runner.spec import RunSpec
from .testbed import DeploymentMetrics

__all__ = ["shard_specs", "shard_user_counts", "merge_shard_metrics"]


def shard_specs(spec: RunSpec, user_shards: int) -> List[RunSpec]:
    """Expand *spec* into one :class:`RunSpec` per user shard.

    Each shard spec shares every knob with *spec* except
    ``config.user_shards`` / ``config.user_shard``.  Requires
    ``user_metrics="aggregate"`` when ``user_shards > 1`` (see module
    docstring).
    """
    if user_shards < 1:
        raise ValueError("user_shards must be >= 1")
    if user_shards == 1:
        return [spec]
    if spec.config.user_metrics != "aggregate":
        raise ValueError(
            "sharded runs require user_metrics='aggregate' (got %r): "
            "aggregate mode keys user metrics by home server so shard "
            "metrics merge exactly" % spec.config.user_metrics
        )
    if spec.config.user_shards != 1:
        raise ValueError(
            "spec is already sharded (user_shards=%d); expand an "
            "unsharded spec" % spec.config.user_shards
        )
    return [
        replace(
            spec,
            config=spec.config.with_overrides(
                user_shards=user_shards, user_shard=shard
            ),
        )
        for shard in range(user_shards)
    ]


def shard_user_counts(users_per_server: int, user_shards: int) -> List[int]:
    """Users-per-server carried by each shard (the merge weights)."""
    if users_per_server < 0:
        raise ValueError("users_per_server must be >= 0")
    if user_shards < 1:
        raise ValueError("user_shards must be >= 1")
    counts = [0] * user_shards
    for index in range(users_per_server):
        counts[index % user_shards] += 1
    return counts


def merge_shard_metrics(
    metrics: Sequence[DeploymentMetrics],
    user_counts: Sequence[int],
) -> DeploymentMetrics:
    """Fold per-shard metrics into one rollup, deterministically.

    *user_counts* gives each shard's users-per-server weight (from
    :func:`shard_user_counts`).  All sums and weighted means accumulate
    in shard order, so the result is bit-identical no matter how the
    shard runs themselves were scheduled.

    - counters, loads, traffic, ``events_processed``: summed;
    - ``server_lags``: per-server mean over shards (each shard runs its
      own copy of the server plane);
    - ``user_lags`` / ``user_stale_fractions`` (keyed by home server in
      aggregate mode): per-key weighted mean, weights = *user_counts*;
    - staleness histogram: recomputed from the merged ``server_lags``.
    """
    if not metrics:
        raise ValueError("need at least one shard's metrics")
    if len(user_counts) != len(metrics):
        raise ValueError(
            "got %d metrics but %d user counts" % (len(metrics), len(user_counts))
        )
    first = metrics[0]
    if len(metrics) == 1:
        return first
    server_keys = list(first.server_lags)
    for m in metrics[1:]:
        if list(m.server_lags) != server_keys:
            raise ValueError(
                "shards disagree on the server plane (%r vs %r): not "
                "shards of one deployment" % (m.name, first.name)
            )

    n_shards = len(metrics)
    server_lags: Dict[str, float] = {}
    for key in server_keys:
        total = 0.0
        for m in metrics:
            total += m.server_lags[key]
        server_lags[key] = total / n_shards

    user_lags: Dict[str, float] = {}
    user_stale: Dict[str, float] = {}
    user_keys: List[str] = []
    seen = set()
    for m, weight in zip(metrics, user_counts):
        if weight <= 0:
            continue
        for key in m.user_lags:
            if key not in seen:
                seen.add(key)
                user_keys.append(key)
    for key in user_keys:
        lag_sum = 0.0
        stale_sum = 0.0
        weight_sum = 0
        for m, weight in zip(metrics, user_counts):
            if weight <= 0 or key not in m.user_lags:
                continue
            lag_sum += weight * m.user_lags[key]
            stale_sum += weight * m.user_stale_fractions[key]
            weight_sum += weight
        if weight_sum:
            user_lags[key] = lag_sum / weight_sum
            user_stale[key] = stale_sum / weight_sum

    message_counts: Dict[str, int] = {}
    link_bytes_kb: Dict[str, float] = {}
    for m in metrics:
        for key, count in m.message_counts.items():
            message_counts[key] = message_counts.get(key, 0) + count
        for key, kb in m.link_bytes_kb.items():
            link_bytes_kb[key] = link_bytes_kb.get(key, 0.0) + kb

    edges, counts = staleness_histogram(list(server_lags.values()))
    return DeploymentMetrics(
        name="%s[merged x%d]" % (first.name, n_shards),
        server_lags=server_lags,
        user_lags=user_lags,
        user_stale_fractions=user_stale,
        cost_km_kb=sum(m.cost_km_kb for m in metrics),
        update_messages=sum(m.update_messages for m in metrics),
        light_messages=sum(m.light_messages for m in metrics),
        response_messages=sum(m.response_messages for m in metrics),
        provider_response_messages=sum(
            m.provider_response_messages for m in metrics
        ),
        update_load_km=sum(m.update_load_km for m in metrics),
        light_load_km=sum(m.light_load_km for m in metrics),
        response_load_km=sum(m.response_load_km for m in metrics),
        request_load_km=sum(m.request_load_km for m in metrics),
        provider_update_messages=sum(
            m.provider_update_messages for m in metrics
        ),
        provider_messages=sum(m.provider_messages for m in metrics),
        events_processed=sum(m.events_processed for m in metrics),
        message_counts=message_counts,
        dropped_messages=sum(m.dropped_messages for m in metrics),
        isp_crossing_messages=sum(m.isp_crossing_messages for m in metrics),
        isp_crossing_kb=sum(m.isp_crossing_kb for m in metrics),
        isp_penalty_s=sum(m.isp_penalty_s for m in metrics),
        propagation_s=sum(m.propagation_s for m in metrics),
        queueing_s=sum(m.queueing_s for m in metrics),
        link_bytes_kb=link_bytes_kb,
        node_downtime_s=sum(m.node_downtime_s for m in metrics),
        down_transitions=sum(m.down_transitions for m in metrics),
        staleness_hist_edges=edges,
        staleness_hist_counts=counts,
    )
