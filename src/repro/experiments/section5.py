"""Section 5 figure drivers (HAT evaluation, Figs. 22-24).

The Section 5 testbed: 60 s content-server TTL, 10 s end-user TTL,
servers grouped into 20 geographic clusters, supernodes in a 4-ary Push
tree.  Six systems are compared: Push / Invalidation / TTL (unicast),
Self (self-adaptive on unicast), Hybrid (HAT infrastructure + plain TTL
members), and HAT.

Like Section 4, every sweep expands into :class:`~repro.runner.RunSpec`
grids (``kind="system"``) executed through a
:class:`~repro.runner.Runner`, and every driver returns a
:class:`FigureResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..runner import Runner, RunSpec, run_specs
from .config import TestbedConfig
from ..obs.telemetry import profiled
from .result import FigureResult
from .testbed import SYSTEMS

__all__ = [
    "section5_config",
    "Fig22aResult",
    "fig22a_update_messages",
    "fig22b_provider_messages",
    "Fig23Result",
    "fig23_network_load",
    "fig24_inconsistency_observations",
]


def section5_config(base: Optional[TestbedConfig] = None, **overrides) -> TestbedConfig:
    """Apply the Section 5 defaults (server TTL 60 s) to a config."""
    config = base if base is not None else TestbedConfig()
    settings = dict(server_ttl_s=60.0)
    settings.update(overrides)
    return config.with_overrides(**settings)


def _system_sweep(
    config: TestbedConfig,
    systems: Sequence[str],
    sweep_values: Sequence[float],
    override_knob: str,
    runner: Optional[Runner],
):
    """Run every (system, value) cell; yields the grid and the outcome."""
    grid = [(system, value) for system in systems for value in sweep_values]
    specs = [
        RunSpec(
            config=config.with_overrides(**{override_knob: value}),
            method=system,
            kind="system",
        )
        for system, value in grid
    ]
    return grid, run_specs(specs, runner)


# ----------------------------------------------------------------------
# Fig. 22a: update messages vs end-user TTL
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig22aResult:
    """system -> {end-user TTL -> response/update message count}."""

    counts: Dict[str, Dict[float, int]]

    def at(self, system: str, user_ttl_s: float) -> int:
        return self.counts[system][user_ttl_s]

    def ordering_at(self, user_ttl_s: float) -> List[str]:
        """Systems sorted by message count, heaviest first."""
        return sorted(
            self.counts,
            key=lambda system: self.counts[system][user_ttl_s],
            reverse=True,
        )


@profiled("driver.fig22a")
def fig22a_update_messages(
    config: TestbedConfig,
    user_ttls_s: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0),
    systems: Sequence[str] = SYSTEMS,
    runner: Optional[Runner] = None,
) -> FigureResult:
    """Fig. 22a (paper ordering: Push > Inval > Hybrid ~ TTL > HAT > Self)."""
    grid, outcome = _system_sweep(config, systems, user_ttls_s, "user_ttl_s", runner)
    counts: Dict[str, Dict[float, int]] = {system: {} for system in systems}
    for (system, user_ttl), metrics in zip(grid, outcome.metrics):
        counts[system][user_ttl] = metrics.response_messages
    details = Fig22aResult(counts=counts)
    return FigureResult(
        name="fig22a",
        params={"user_ttls_s": list(user_ttls_s), "systems": list(systems)},
        series=counts,
        summary={
            "heaviest_at_%g" % user_ttls_s[0]: details.ordering_at(user_ttls_s[0])[0],
            "lightest_at_%g" % user_ttls_s[0]: details.ordering_at(user_ttls_s[0])[-1],
        },
        details=details,
        stats=outcome.stats,
    )


# ----------------------------------------------------------------------
# Fig. 22b: provider load vs content-server TTL
# ----------------------------------------------------------------------
@profiled("driver.fig22b")
def fig22b_provider_messages(
    config: TestbedConfig,
    server_ttls_s: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0),
    systems: Sequence[str] = SYSTEMS,
    runner: Optional[Runner] = None,
) -> FigureResult:
    """Fig. 22b: update messages sent by the provider itself.

    Paper: Hybrid and HAT are lightest (the provider pushes only to its
    few tree children); TTL/Self grow as the server TTL shrinks.
    """
    grid, outcome = _system_sweep(
        config, systems, server_ttls_s, "server_ttl_s", runner
    )
    counts: Dict[str, Dict[float, int]] = {system: {} for system in systems}
    for (system, server_ttl), metrics in zip(grid, outcome.metrics):
        counts[system][server_ttl] = metrics.provider_response_messages
    return FigureResult(
        name="fig22b",
        params={"server_ttls_s": list(server_ttls_s), "systems": list(systems)},
        series=counts,
        summary={
            "lightest_at_%g" % server_ttls_s[-1]: min(
                counts, key=lambda system: counts[system][server_ttls_s[-1]]
            )
        },
        stats=outcome.stats,
    )


# ----------------------------------------------------------------------
# Fig. 23: network load (km), update vs light messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig23Result:
    """Per-system network load in km, split as the paper splits it."""

    update_load_km: Dict[str, float]
    light_load_km: Dict[str, float]
    #: Raw per-system metrics (cause-attribution tables read these).
    metrics: Dict[str, object] = field(default_factory=dict)

    def total_load_km(self, system: str) -> float:
        return self.update_load_km[system] + self.light_load_km[system]

    def lightest_total(self) -> str:
        return min(self.update_load_km, key=self.total_load_km)


@profiled("driver.fig23")
def fig23_network_load(
    config: TestbedConfig,
    systems: Sequence[str] = SYSTEMS,
    runner: Optional[Runner] = None,
) -> FigureResult:
    """Fig. 23 (paper: HAT generates the lightest total load)."""
    specs = [
        RunSpec(config=config, method=system, kind="system") for system in systems
    ]
    outcome = run_specs(specs, runner)
    update_load: Dict[str, float] = {}
    light_load: Dict[str, float] = {}
    by_system: Dict[str, object] = {}
    for system, metrics in zip(systems, outcome.metrics):
        update_load[system] = metrics.response_load_km
        light_load[system] = metrics.request_load_km
        by_system[system] = metrics
    details = Fig23Result(
        update_load_km=update_load, light_load_km=light_load, metrics=by_system
    )
    return FigureResult(
        name="fig23",
        params={"systems": list(systems)},
        series={"update_load_km": update_load, "light_load_km": light_load},
        summary={"lightest_total": details.lightest_total()},
        details=details,
        stats=outcome.stats,
    )


# ----------------------------------------------------------------------
# Fig. 24: user-observed inconsistency
# ----------------------------------------------------------------------
@profiled("driver.fig24")
def fig24_inconsistency_observations(
    config: TestbedConfig,
    user_ttls_s: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0),
    systems: Sequence[str] = SYSTEMS,
    runner: Optional[Runner] = None,
) -> FigureResult:
    """Fig. 24: % of observations older than already-seen content, with
    users switching servers on every visit.

    Paper ordering: TTL ~ Hybrid > HAT > Self > Push ~ Invalidation ~ 0,
    and all TTL-family curves fall as the end-user TTL grows.
    """
    switching = config.with_overrides(user_selector="switch")
    grid, outcome = _system_sweep(
        switching, systems, user_ttls_s, "user_ttl_s", runner
    )
    fractions: Dict[str, Dict[float, float]] = {system: {} for system in systems}
    for (system, user_ttl), metrics in zip(grid, outcome.metrics):
        fractions[system][user_ttl] = metrics.mean_stale_fraction
    return FigureResult(
        name="fig24",
        params={"user_ttls_s": list(user_ttls_s), "systems": list(systems)},
        series=fractions,
        summary={
            "max_stale_fraction": max(
                value for per in fractions.values() for value in per.values()
            )
        },
        stats=outcome.stats,
    )
