"""Section 5 figure drivers (HAT evaluation, Figs. 22-24).

The Section 5 testbed: 60 s content-server TTL, 10 s end-user TTL,
servers grouped into 20 geographic clusters, supernodes in a 4-ary Push
tree.  Six systems are compared: Push / Invalidation / TTL (unicast),
Self (self-adaptive on unicast), Hybrid (HAT infrastructure + plain TTL
members), and HAT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .config import TestbedConfig
from .testbed import DeploymentMetrics, SYSTEMS, build_system

__all__ = [
    "section5_config",
    "Fig22aResult",
    "fig22a_update_messages",
    "fig22b_provider_messages",
    "Fig23Result",
    "fig23_network_load",
    "fig24_inconsistency_observations",
]


def section5_config(base: Optional[TestbedConfig] = None, **overrides) -> TestbedConfig:
    """Apply the Section 5 defaults (server TTL 60 s) to a config."""
    config = base if base is not None else TestbedConfig()
    settings = dict(server_ttl_s=60.0)
    settings.update(overrides)
    return config.with_(**settings)


# ----------------------------------------------------------------------
# Fig. 22a: update messages vs end-user TTL
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig22aResult:
    """system -> {end-user TTL -> response/update message count}."""

    counts: Dict[str, Dict[float, int]]

    def at(self, system: str, user_ttl_s: float) -> int:
        return self.counts[system][user_ttl_s]

    def ordering_at(self, user_ttl_s: float) -> List[str]:
        """Systems sorted by message count, heaviest first."""
        return sorted(
            self.counts,
            key=lambda system: self.counts[system][user_ttl_s],
            reverse=True,
        )


def fig22a_update_messages(
    config: TestbedConfig,
    user_ttls_s: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0),
    systems: Sequence[str] = SYSTEMS,
) -> Fig22aResult:
    """Fig. 22a (paper ordering: Push > Inval > Hybrid ~ TTL > HAT > Self)."""
    counts: Dict[str, Dict[float, int]] = {}
    for system in systems:
        per_ttl: Dict[float, int] = {}
        for user_ttl in user_ttls_s:
            metrics = build_system(config.with_(user_ttl_s=user_ttl), system).run()
            per_ttl[user_ttl] = metrics.response_messages
        counts[system] = per_ttl
    return Fig22aResult(counts=counts)


# ----------------------------------------------------------------------
# Fig. 22b: provider load vs content-server TTL
# ----------------------------------------------------------------------
def fig22b_provider_messages(
    config: TestbedConfig,
    server_ttls_s: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0),
    systems: Sequence[str] = SYSTEMS,
) -> Dict[str, Dict[float, int]]:
    """Fig. 22b: update messages sent by the provider itself.

    Paper: Hybrid and HAT are lightest (the provider pushes only to its
    few tree children); TTL/Self grow as the server TTL shrinks.
    """
    counts: Dict[str, Dict[float, int]] = {}
    for system in systems:
        per_ttl: Dict[float, int] = {}
        for server_ttl in server_ttls_s:
            metrics = build_system(config.with_(server_ttl_s=server_ttl), system).run()
            per_ttl[server_ttl] = metrics.provider_response_messages
        counts[system] = per_ttl
    return counts


# ----------------------------------------------------------------------
# Fig. 23: network load (km), update vs light messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig23Result:
    """Per-system network load in km, split as the paper splits it."""

    update_load_km: Dict[str, float]
    light_load_km: Dict[str, float]

    def total_load_km(self, system: str) -> float:
        return self.update_load_km[system] + self.light_load_km[system]

    def lightest_total(self) -> str:
        return min(self.update_load_km, key=self.total_load_km)


def fig23_network_load(
    config: TestbedConfig, systems: Sequence[str] = SYSTEMS
) -> Fig23Result:
    """Fig. 23 (paper: HAT generates the lightest total load)."""
    update_load: Dict[str, float] = {}
    light_load: Dict[str, float] = {}
    for system in systems:
        metrics = build_system(config, system).run()
        update_load[system] = metrics.response_load_km
        light_load[system] = metrics.request_load_km
    return Fig23Result(update_load_km=update_load, light_load_km=light_load)


# ----------------------------------------------------------------------
# Fig. 24: user-observed inconsistency
# ----------------------------------------------------------------------
def fig24_inconsistency_observations(
    config: TestbedConfig,
    user_ttls_s: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0),
    systems: Sequence[str] = SYSTEMS,
) -> Dict[str, Dict[float, float]]:
    """Fig. 24: % of observations older than already-seen content, with
    users switching servers on every visit.

    Paper ordering: TTL ~ Hybrid > HAT > Self > Push ~ Invalidation ~ 0,
    and all TTL-family curves fall as the end-user TTL grows.
    """
    fractions: Dict[str, Dict[float, float]] = {}
    for system in systems:
        per_ttl: Dict[float, float] = {}
        for user_ttl in user_ttls_s:
            metrics = build_system(
                config.with_(user_ttl_s=user_ttl, user_selector="switch"), system
            ).run()
            per_ttl[user_ttl] = metrics.mean_stale_fraction
        fractions[system] = per_ttl
    return fractions
