"""FigureResult: the one result type every figure driver returns.

Historically each driver returned its own shape -- frozen dataclasses
(:class:`MethodComparison`, ``Fig22aResult``), bare nested dicts
(Figs. 17/19/20/22b/24), or tuples.  Every consumer (the report
generator, the CSV exporter, the benchmarks) had to know each shape.

Now every Section 3/4/5 driver returns a :class:`FigureResult`:

- ``name`` / ``params`` identify the figure and the sweep that made it;
- ``series`` holds the plottable data (what the figure draws), always
  dict-shaped; :class:`FigureResult` exposes the mapping protocol over
  it, so sweep results still read like the dicts they replaced
  (``fig17(...)["unicast"][10.0]``);
- ``summary`` holds the headline scalars the report tables print;
- ``details`` keeps the figure-specific rich object; attribute access
  falls through to it, so domain helpers keep working
  (``fig14(...).server_lag_ordering()``);
- ``stats`` carries the :class:`~repro.runner.RunStats` of the sweep
  that produced the figure (``None`` for the trace-analysis figures,
  which run no deployments);
- :meth:`to_dict` gives one JSON-safe export shape for all figures.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["FigureResult"]


def _jsonify(value: Any) -> Any:
    """Best-effort conversion to JSON-safe types (numbers survive exactly)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonify(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonify(item) for item in value]
    if hasattr(value, "item") and callable(value.item) and not isinstance(
        value, (str, bytes)
    ):
        try:
            return value.item()  # numpy scalars
        except (TypeError, ValueError):  # pragma: no cover - defensive
            pass
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "to_dict"):
        return _jsonify(value.to_dict())
    return str(value)


@dataclass
class FigureResult:
    """Uniform result of one figure driver (see module docstring)."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    series: Dict[str, Any] = field(default_factory=dict)
    summary: Dict[str, Any] = field(default_factory=dict)
    details: Any = None
    stats: Any = None  # RunStats of the producing sweep, if any

    # ------------------------------------------------------------------
    # mapping protocol over ``series`` (sweep drivers used to return
    # bare dicts; their callers keep working unchanged)
    # ------------------------------------------------------------------
    def __getitem__(self, key):
        return self.series[key]

    def __iter__(self):
        return iter(self.series)

    def __len__(self) -> int:
        return len(self.series)

    def __contains__(self, key) -> bool:
        return key in self.series

    def keys(self):
        return self.series.keys()

    def values(self):
        return self.series.values()

    def items(self):
        return self.series.items()

    def get(self, key, default=None):
        return self.series.get(key, default)

    # ------------------------------------------------------------------
    # attribute fallthrough to the figure-specific details object
    # ------------------------------------------------------------------
    def __getattr__(self, attribute: str):
        # Only called for attributes not found normally.  Guard dunders
        # (pickling/copying probe them before __dict__ exists).
        if attribute.startswith("__") or attribute == "details":
            raise AttributeError(attribute)
        details = self.__dict__.get("details")
        if details is None:
            raise AttributeError(
                "figure %r has no attribute %r (and no details object)"
                % (self.__dict__.get("name"), attribute)
            )
        return getattr(details, attribute)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """One JSON-safe shape for every figure (export/report use this)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "params": _jsonify(self.params),
            "series": _jsonify(self.series),
            "summary": _jsonify(self.summary),
        }
        if self.stats is not None:
            data["stats"] = _jsonify(
                self.stats.to_dict() if hasattr(self.stats, "to_dict") else self.stats
            )
        return data
