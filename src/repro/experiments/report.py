"""Run every experiment and render the paper-vs-measured report.

``generate_report()`` runs all Section 3/4/5 figure drivers at a chosen
scale and returns the EXPERIMENTS.md markdown; the repository's
EXPERIMENTS.md is produced by exactly this code (see
``examples/regenerate_experiments.py``).
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, TextIO

from ..obs.attribution import format_attribution_table
from ..runner import Runner
from ..trace.synthesize import SynthesisConfig
from .config import TestbedConfig, ci_scale
from .section3 import (
    Section3Context,
    fig3_inconsistency_cdf,
    fig4_user_perspective,
    fig5_inner_cluster,
    fig6_ttl_inference,
    fig7_provider_inconsistency,
    fig8_distance,
    fig9_isp,
    fig10_absence,
    fig11_static_tree,
    fig12_dynamic_tree,
)
from .section4 import (
    fig14_unicast_inconsistency,
    fig15_multicast_inconsistency,
    fig16_traffic_cost,
    fig17_cost_vs_ttl,
    fig18_invalidation_user_ttl,
    fig19_packet_size,
    fig20_network_size,
)
from .section5 import (
    fig22a_update_messages,
    fig22b_provider_messages,
    fig23_network_load,
    fig24_inconsistency_observations,
    section5_config,
)

__all__ = ["generate_report", "ReportScale"]


class ReportScale:
    """Bundle of configs for one report run."""

    def __init__(
        self,
        section3: SynthesisConfig,
        section4: TestbedConfig,
        section5: TestbedConfig,
        sweep: TestbedConfig,
        n_users: int,
        label: str,
    ) -> None:
        self.section3 = section3
        self.section4 = section4
        self.section5 = section5
        self.sweep = sweep
        self.n_users = n_users
        self.label = label

    @classmethod
    def medium(cls, seed: int = 0) -> "ReportScale":
        """~1/3 of paper scale: runs the full report in minutes."""
        return cls(
            section3=SynthesisConfig(n_servers=240, n_days=8),
            # The paper's 5 users/server matter for Fig. 14 (Invalidation's
            # visit-wait must sit clearly below TTL/2); the game is halved
            # to keep the event count comparable.
            section4=TestbedConfig(
                n_servers=170,
                users_per_server=5,
                n_updates=153,
                game_duration_s=4380.0,
                seed=seed,
            ),
            section5=section5_config(
                TestbedConfig(
                    n_servers=120,
                    users_per_server=2,
                    hat_clusters=20,
                    seed=seed,
                )
            ),
            sweep=TestbedConfig(
                n_servers=60,
                users_per_server=2,
                n_updates=60,
                game_duration_s=1752.0,
                hat_clusters=6,  # keep ~10 servers per HAT cluster
                seed=seed,
            ),
            n_users=120,
            label="medium (~1/3 paper scale)",
        )

    @classmethod
    def small(cls, seed: int = 0) -> "ReportScale":
        """CI-sized: the full report in well under a minute."""
        return cls(
            section3=SynthesisConfig(
                n_servers=80,
                n_days=4,
                session_length_s=4500.0,
                updates_per_day_low=18,
                updates_per_day_high=80,
            ),
            section4=ci_scale(seed=seed),
            section5=section5_config(ci_scale(seed=seed)),
            sweep=ci_scale(seed=seed, n_updates=30, game_duration_s=876.0),
            n_users=40,
            label="small (CI scale)",
        )


def _fmt(value: float, digits: int = 2) -> str:
    return ("%%.%df" % digits) % value


def _pct(value: float) -> str:
    return "%.1f%%" % (100.0 * value)


def generate_report(
    scale: Optional[ReportScale] = None,
    log: Optional[TextIO] = None,
    runner: Optional[Runner] = None,
) -> str:
    """Run everything; return the EXPERIMENTS.md markdown.

    ``runner`` is threaded into every Section 4/5 sweep; pass one with
    ``workers > 1`` (or set ``REPRO_WORKERS``) to run the deployments in
    parallel, and one with a registry to memoize them across runs.
    """
    scale = scale if scale is not None else ReportScale.medium()
    log = log if log is not None else sys.stderr
    if runner is None:
        runner = Runner()
    lines: List[str] = []
    out = lines.append
    sweep_figures = []  # FigureResults carrying RunStats, in run order

    def progress(name: str) -> None:
        log.write("[report] %s...\n" % name)
        log.flush()

    out("# EXPERIMENTS -- paper vs. measured")
    out("")
    out(
        "Reproduction of every evaluation figure of *Measuring and Evaluating "
        "Live Content Consistency in a Large-Scale CDN* (ICDCS'14 / TPDS'15)."
    )
    out("")
    out("Scale: %s. Absolute numbers are not expected to match the paper's" % scale.label)
    out("PlanetLab testbed; orderings, trends and crossovers are. Regenerate with")
    out("`python examples/regenerate_experiments.py`.")
    out("")

    # ------------------------------------------------------------------
    out("## Section 3 -- trace measurement")
    out("")
    ctx = Section3Context(scale.section3, n_users=scale.n_users)

    progress("fig3")
    f3 = fig3_inconsistency_cdf(ctx)
    out("### Fig. 3 -- inconsistency CDF of CDN-served requests")
    out("| quantity | paper | measured |")
    out("|---|---|---|")
    out("| fraction < 10 s | 10.1%% | %s |" % _pct(f3.frac_below_10s))
    out("| fraction > 50 s | 20.3%% | %s |" % _pct(f3.frac_above_50s))
    out("| mean inconsistency | ~40 s | %s s |" % _fmt(f3.mean_s, 1))
    out("")

    progress("fig4")
    f4 = fig4_user_perspective(ctx)
    out("### Fig. 4 -- user-perspective consistency")
    out("| quantity | paper | measured |")
    out("|---|---|---|")
    out(
        "| (a) typical redirected-visit fraction | 13-17%% | %s - %s (p5-p95) |"
        % (_pct(f4.redirect_fraction_summary.p5), _pct(f4.redirect_fraction_summary.p95))
    )
    import numpy as _np

    out(
        "| (b) avg. inconsistent servers per round | ~11%% | %s |"
        % _pct(float(_np.mean(f4.daily_inconsistent_server_fractions)))
    )
    out(
        "| (c) median continuous consistency | ~160 s | %s s |"
        % _fmt(f4.continuous_consistency.median, 0)
    )
    out(
        "| (d) continuous inconsistency <= 2 polls | ~99%% <= 20 s | %s |"
        % _pct(f4.frac_incons_at_most_2_polls)
    )
    slow = f4.per_interval[max(f4.per_interval)]
    fast = f4.per_interval[min(f4.per_interval)]
    out(
        "| (e) 95th-pct inconsistency grows with poll period | yes | %s s @%.0fs vs %s s @%.0fs |"
        % (_fmt(fast.p95, 0), min(f4.per_interval), _fmt(slow.p95, 0), max(f4.per_interval))
    )
    out("")
    out(
        "*Note: the Fig. 4 absolute values are sensitive to unpublished "
        "parameters of the real deployment (DNS lease lengths, per-user "
        "candidate-server sets, how much of each crawl session the game "
        "occupied); the qualitative structure -- redirection in the low "
        "teens of percent, short inconsistency runs vs. long consistency "
        "runs, and (e)'s growth with the polling period -- is what this "
        "reproduction checks.*"
    )
    out("")

    progress("fig5")
    f5 = fig5_inner_cluster(ctx)
    out("### Fig. 5 -- inner-cluster inconsistency CDF")
    out("| quantity | paper | measured |")
    out("|---|---|---|")
    out("| fraction < 10 s | 31.5%% | %s |" % _pct(f5.frac_below_10s))
    out(
        "| CDF ~ linear on [0, TTL] (RMSE vs uniform) | 'approximately linear' | %s |"
        % _fmt(f5.uniform_rmse_on_ttl, 3)
    )
    out("")

    progress("fig6")
    f6 = fig6_ttl_inference(ctx)
    out("### Fig. 6 -- TTL inference")
    out("| quantity | paper | measured |")
    out("|---|---|---|")
    out("| inferred TTL | 60 s | %.0f s |" % f6.inference.ttl_s)
    out("| RMSE vs uniform @ TTL=60 | 0.0462 | %s |" % _fmt(f6.rmse_at_60, 4))
    out("| RMSE vs uniform @ TTL=80 | 0.0955 | %s |" % _fmt(f6.rmse_at_80, 4))
    out("")

    progress("fig7")
    f7 = fig7_provider_inconsistency(ctx)
    out("### Fig. 7 -- provider inconsistency")
    out("| quantity | paper | measured |")
    out("|---|---|---|")
    out("| fraction < 10 s | 90.2%% | %s |" % _pct(f7.frac_below_10s))
    out("| fraction > 50 s | 1.2%% | %s |" % _pct(f7.frac_above_50s))
    out("| mean | 3.43 s | %s s |" % _fmt(f7.mean_s, 2))
    out("")

    progress("fig8")
    f8 = fig8_distance(ctx)
    out("### Fig. 8 -- provider-server distance")
    out("| quantity | paper | measured |")
    out("|---|---|---|")
    out("| correlation(distance, consistency ratio) | r = 0.11 (negligible) | r = %s |" % _fmt(f8.pearson_r, 3))
    out("")

    progress("fig9")
    f9 = fig9_isp(ctx)
    out("### Fig. 9 -- inter-ISP traffic")
    out("| quantity | paper | measured |")
    out("|---|---|---|")
    out(
        "| inter-ISP inconsistency increment | +[3.69, 23.2] s | +[%s, %s] s over %d ISP clusters |"
        % (_fmt(f9.min_increment_s, 2), _fmt(f9.max_increment_s, 1), len(f9.clusters))
    )
    out("")

    progress("fig10")
    f10 = fig10_absence(ctx)
    out("### Fig. 10 -- provider bandwidth and server absences")
    out("| quantity | paper | measured |")
    out("|---|---|---|")
    out(
        "| provider response times | [0.5, 2.1] s, 90%% < 1.5 s | [%s, %s] s, %s < 1.5 s |"
        % (
            _fmt(f10.response_time_summary.p5, 2),
            _fmt(f10.response_time_summary.p95, 2),
            _pct(f10.frac_responses_below_1_5s),
        )
    )
    out("| absences < 50 s | 93.1%% | %s |" % _pct(f10.frac_absences_below_50s))
    baseline = f10.impact_by_absence_bin.get(0.0)
    worst = max(
        (v for k, v in f10.impact_by_absence_bin.items() if k > 0), default=None
    )
    if baseline is not None and worst is not None:
        out(
            "| inconsistency, no absence -> long absence | 38.1 s -> 43.9 s (+15.2%%) | %s s -> %s s (+%s) |"
            % (_fmt(baseline, 1), _fmt(worst, 1), _pct(worst / baseline - 1.0))
        )
    out("")

    progress("fig11")
    f11 = fig11_static_tree(ctx)
    out("### Fig. 11 -- static multicast tree (non-)existence")
    out("| quantity | paper | measured |")
    out("|---|---|---|")
    out(
        "| per-cluster server-rank churn across days | 'varies greatly' | mean normalized churn %s |"
        % _fmt(f11.mean_rank_churn, 2)
    )
    out("")

    progress("fig12")
    f12 = fig12_dynamic_tree(ctx)
    out("### Fig. 12 -- dynamic multicast tree (non-)existence")
    out("| quantity | paper | measured |")
    out("|---|---|---|")
    fr = f12.daily_below_ttl_fractions
    out(
        "| servers with max inconsistency < TTL | 76.7%% / 86.9%% (two days) | %s - %s across %d days |"
        % (_pct(min(fr)), _pct(max(fr)), len(fr))
    )
    out("| verdict | no multicast tree | %s |" % ("no multicast tree" if not f12.evidence.tree_likely else "TREE DETECTED (mismatch!)"))
    out("")

    # ------------------------------------------------------------------
    out("## Section 4 -- trace-driven evaluation")
    out("")

    progress("fig14")
    f14 = fig14_unicast_inconsistency(scale.section4, runner=runner)
    sweep_figures.append(f14)
    out("### Fig. 14 -- inconsistency, unicast")
    out("| method | paper | measured server lag | measured user lag |")
    out("|---|---|---|---|")
    paper14 = {"push": "smallest", "invalidation": "middle", "ttl": "largest (~TTL/2 = 5.7 s)"}
    for method in ("push", "invalidation", "ttl"):
        out(
            "| %s | %s | %s s | %s s |"
            % (
                method,
                paper14[method],
                _fmt(f14.mean_server_lag(method), 2),
                _fmt(f14.mean_user_lag(method), 2),
            )
        )
    out("| ordering | Push < Inval < TTL | %s |  |" % " < ".join(f14.server_lag_ordering()))
    out("")
    for line in format_attribution_table(
        f14.details.metrics,
        title="Cause attribution (per-layer staleness contribution, "
        "mirroring Figs. 6-10):",
    ):
        out(line)
    out("")

    progress("fig15")
    f15 = fig15_multicast_inconsistency(scale.section4, runner=runner)
    sweep_figures.append(f15)
    out("### Fig. 15 -- inconsistency, multicast tree")
    out("| method | measured server lag | measured user lag |")
    out("|---|---|---|")
    for method in ("push", "invalidation", "ttl"):
        out(
            "| %s | %s s | %s s |"
            % (method, _fmt(f15.mean_server_lag(method), 2), _fmt(f15.mean_user_lag(method), 2))
        )
    out(
        "| TTL depth amplification (multicast / unicast) | paper: ~(m-1)x per layer | %sx |"
        % _fmt(f15.mean_server_lag("ttl") / max(1e-9, f14.mean_server_lag("ttl")), 1)
    )
    out("")

    progress("fig16")
    f16 = fig16_traffic_cost(scale.section4, runner=runner)
    sweep_figures.append(f16)
    out("### Fig. 16 -- consistency maintenance cost (km*KB)")
    out("| method | unicast | multicast | multicast saving |")
    out("|---|---|---|---|")
    for method in ("push", "invalidation", "ttl"):
        out(
            "| %s | %.3g | %.3g | %.3g |"
            % (
                method,
                f16.cost(method, "unicast"),
                f16.cost(method, "multicast"),
                f16.multicast_saving(method),
            )
        )
    out("| paper | multicast saves >= 2.8e7 km*KB; cost orders Push < Inval < TTL | | |")
    out("")

    progress("fig17")
    f17 = fig17_cost_vs_ttl(scale.sweep, runner=runner)
    sweep_figures.append(f17)
    out("### Fig. 17 -- TTL cost vs TTL value (paper: cost falls as TTL grows)")
    out("| TTL (s) | unicast km*KB | multicast km*KB |")
    out("|---|---|---|")
    for ttl in sorted(f17["unicast"]):
        out("| %.0f | %.3g | %.3g |" % (ttl, f17["unicast"][ttl], f17["multicast"][ttl]))
    out("")

    progress("fig18")
    f18 = fig18_invalidation_user_ttl(scale.sweep, runner=runner)
    sweep_figures.append(f18)
    out("### Fig. 18 -- Invalidation vs end-user TTL (paper: lag up, cost down)")
    out("| user TTL (s) | unicast median lag (s) | unicast km*KB | multicast median lag (s) | multicast km*KB |")
    out("|---|---|---|---|---|")
    for pu, pm in zip(f18["unicast"], f18["multicast"]):
        out(
            "| %.0f | %s | %.3g | %s | %.3g |"
            % (pu.user_ttl_s, _fmt(pu.server_lag.median, 2), pu.cost_km_kb, _fmt(pm.server_lag.median, 2), pm.cost_km_kb)
        )
    out("")

    progress("fig19")
    f19 = fig19_packet_size(scale.sweep, runner=runner)
    sweep_figures.append(f19)
    out("### Fig. 19 -- inconsistency vs update packet size")
    out("| infra | method | 1 KB | 100 KB | 500 KB |")
    out("|---|---|---|---|---|")
    for infra in ("unicast", "multicast"):
        for method in ("push", "invalidation", "ttl"):
            per = f19[infra][method]
            out(
                "| %s | %s | %s | %s | %s |"
                % (infra, method, _fmt(per[1.0], 3), _fmt(per[100.0], 3), _fmt(per[500.0], 3))
            )
    out("| paper | growth rate Push > Inval > TTL; multicast grows far slower | | | |")
    out("")

    progress("fig20")
    sizes = tuple(
        max(10, int(round(scale.sweep.n_servers * f))) for f in (1.0, 2.0, 3.0, 4.0, 5.0)
    )
    f20 = fig20_network_size(scale.sweep, n_servers=sizes, runner=runner)
    sweep_figures.append(f20)
    out("### Fig. 20 -- inconsistency vs network size (scaled: %s servers)" % (sizes,))
    out("| infra | method | " + " | ".join("N=%d" % n for n in sizes) + " |")
    out("|---|---|" + "---|" * len(sizes))
    for infra in ("unicast", "multicast"):
        for method in ("push", "invalidation", "ttl"):
            per = f20[infra][method]
            out(
                "| %s | %s | %s |"
                % (infra, method, " | ".join(_fmt(per[n], 3) for n in sizes))
            )
    out("| paper | unicast: TTL flat, Push/Inval grow; multicast: TTL grows fastest (depth) | " + " | ".join([""] * len(sizes)) + " |")
    out("")

    # ------------------------------------------------------------------
    out("## Section 5 -- HAT evaluation")
    out("")
    s5 = scale.section5
    s5_sweep = section5_config(scale.sweep)

    progress("fig22a")
    f22a = fig22a_update_messages(
        s5_sweep, user_ttls_s=(10.0, 30.0, 60.0), runner=runner
    )
    sweep_figures.append(f22a)
    out("### Fig. 22a -- update (response) messages vs end-user TTL")
    out("| system | " + " | ".join("uTTL=%.0fs" % t for t in (10.0, 30.0, 60.0)) + " |")
    out("|---|---|---|---|")
    for system in ("push", "invalidation", "ttl", "self", "hybrid", "hat"):
        per = f22a.counts[system]
        out("| %s | %s |" % (system, " | ".join(str(per[t]) for t in (10.0, 30.0, 60.0))))
    out("| paper ordering | Push > Inval > Hybrid ~ TTL > HAT > Self | | |")
    out("")

    progress("fig22b")
    f22b = fig22b_provider_messages(
        s5_sweep, server_ttls_s=(10.0, 30.0, 60.0), runner=runner
    )
    sweep_figures.append(f22b)
    out("### Fig. 22b -- provider update messages vs content-server TTL")
    out("| system | " + " | ".join("sTTL=%.0fs" % t for t in (10.0, 30.0, 60.0)) + " |")
    out("|---|---|---|---|")
    for system in ("push", "invalidation", "ttl", "self", "hybrid", "hat"):
        per = f22b[system]
        out("| %s | %s |" % (system, " | ".join(str(per[t]) for t in (10.0, 30.0, 60.0))))
    out("| paper | Hybrid/HAT lightest (provider feeds only its tree children) | | |")
    out("")

    progress("fig23")
    f23 = fig23_network_load(s5, runner=runner)
    sweep_figures.append(f23)
    out("### Fig. 23 -- consistency network load (km)")
    out("| system | update-message load | light-message load | total |")
    out("|---|---|---|---|")
    for system in ("push", "invalidation", "ttl", "self", "hybrid", "hat"):
        out(
            "| %s | %.3g | %.3g | %.3g |"
            % (
                system,
                f23.update_load_km[system],
                f23.light_load_km[system],
                f23.total_load_km(system),
            )
        )
    out("| paper | HAT generates the lightest total load | measured lightest: %s | |" % f23.lightest_total())
    out("")
    for line in format_attribution_table(
        f23.details.metrics,
        title="Cause attribution (per-layer staleness contribution, "
        "mirroring Figs. 6-10):",
    ):
        out(line)
    out("")

    progress("fig24")
    f24 = fig24_inconsistency_observations(
        s5_sweep, user_ttls_s=(10.0, 30.0, 60.0), runner=runner
    )
    sweep_figures.append(f24)
    out("### Fig. 24 -- % of inconsistency observations (server-switching users)")
    out("| system | " + " | ".join("uTTL=%.0fs" % t for t in (10.0, 30.0, 60.0)) + " |")
    out("|---|---|---|---|")
    for system in ("push", "invalidation", "ttl", "self", "hybrid", "hat"):
        per = f24[system]
        out("| %s | %s |" % (system, " | ".join(_pct(per[t]) for t in (10.0, 30.0, 60.0))))
    out("| paper ordering | TTL ~ Hybrid > HAT > Self > Push ~ Inval ~ 0 | | |")
    out("")

    # ------------------------------------------------------------------
    out("## Run statistics")
    out("")
    out(
        "| figure | deployments | cache hits | hit rate | wall time (s) "
        "| sim events | events/s | peak RSS (MB) |"
    )
    out("|---|---|---|---|---|---|---|---|")
    totals = dict(
        n_specs=0, executed=0, cache_hits=0, wall_time_s=0.0,
        busy_time_s=0.0, events_processed=0,
    )
    peak_rss_kb = 0
    phase_rollup: Dict[str, Dict[str, float]] = {}
    for figure in sweep_figures:
        stats = figure.to_dict().get("stats", {})
        out(
            "| %s | %d | %d | %.0f%% | %.2f | %d | %.0f | %.1f |"
            % (
                figure.name,
                stats.get("executed", 0),
                stats.get("cache_hits", 0),
                100.0 * stats.get("registry_hit_rate", 0.0),
                stats.get("wall_time_s", 0.0),
                stats.get("events_processed", 0),
                stats.get("events_per_s", 0.0),
                stats.get("peak_rss_kb", 0) / 1024.0,
            )
        )
        for key in totals:
            totals[key] += stats.get(key, 0)
        peak_rss_kb = max(peak_rss_kb, stats.get("peak_rss_kb", 0) or 0)
        telemetry = stats.get("telemetry") or {}
        for name, data in telemetry.get("spans", {}).items():
            phase = phase_rollup.setdefault(
                name, {"count": 0, "cum_s": 0.0, "self_s": 0.0}
            )
            phase["count"] += data["count"]
            phase["cum_s"] += data["cum_s"]
            phase["self_s"] += data["self_s"]
    total_hit_rate = (
        totals["cache_hits"] / totals["n_specs"] if totals["n_specs"] else 0.0
    )
    total_events_per_s = (
        totals["events_processed"] / totals["busy_time_s"]
        if totals["busy_time_s"]
        else 0.0
    )
    out(
        "| total | %d | %d | %.0f%% | %.2f | %d | %.0f | %.1f |"
        % (
            totals["executed"],
            totals["cache_hits"],
            100.0 * total_hit_rate,
            totals["wall_time_s"],
            totals["events_processed"],
            total_events_per_s,
            peak_rss_kb / 1024.0,
        )
    )
    out("")
    out("Workers: %d." % runner.workers)
    out("")
    if phase_rollup:
        out("Per-phase wall time (harness telemetry spans, all sweeps merged):")
        out("")
        out("| phase | count | self (s) | cumulative (s) |")
        out("|---|---|---|---|")
        for name in sorted(
            phase_rollup, key=lambda k: phase_rollup[k]["self_s"], reverse=True
        ):
            data = phase_rollup[name]
            out(
                "| %s | %d | %.2f | %.2f |"
                % (name, data["count"], data["self_s"], data["cum_s"])
            )
        out("")

    out("---")
    out("Generated by `repro.experiments.report.generate_report` (seed-deterministic).")
    return "\n".join(lines) + "\n"
