"""``repro sanitize``: drive the schedule sanitizer over real cells.

For each requested ``method:infrastructure`` cell the driver runs one
*baseline* deployment (sanitizer traps on, FIFO tie-breaking) and ``N``
*perturbed replicas* (same seeds, same config, but same-instant event
ties popped in seeded-random order -- see :mod:`repro.sim.sanitize`),
then asserts the replicas are **bit-identical** to the baseline on

- the full :meth:`DeploymentMetrics.to_dict` payload (every lag, load,
  message and drop counter), and
- the recorded trace stream, canonicalized within each simulated
  instant (same-time events are a *set* as far as causality is
  concerned; their relative emission order is exactly the tie order
  being perturbed).

A divergence means the model's results depend on the incidental FIFO
tie order rather than on simulated causality -- a determinism bug the
normal test suite cannot see, because the kernel's FIFO order is itself
deterministic.  The signature hazard is a *shared* RNG stream drawn
from same-instant callbacks: reordering the ties re-pairs draws with
consumers, so per-consumer numbers change while the draw multiset does
not (``tests/test_sanitize.py`` demonstrates the divergence in
miniature, and the per-consumer ``StreamRegistry`` streams are the
repo-wide fix that keeps the real cells immune).  The cells gated in CI
(``make sanitize-smoke``) cover every update-method family and pass
bit-identically under both the fast and legacy kernels.

Only NORMAL-priority ties are perturbed: same-instant URGENT order is
the kernel's registration-order contract (process resumption, transport
staging), not an incidental tie -- see :mod:`repro.sim.sanitize`.

Every replica also reports how many scheduled entries actually shared a
``(time, priority)`` slot: an identity proof over zero perturbed ties
would be vacuous, so the driver fails cells that exercised none.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.tracer import RecordingTracer
from ..sim.sanitize import SANITIZE_ENV, SANITIZE_TIES_ENV
from .config import TestbedConfig
from .testbed import build_deployment

__all__ = ["main", "build_parser", "run_cell", "CellReport"]

#: Cells gated by ``make sanitize-smoke``: one cell per update-method
#: family plus a second infrastructure, bit-identical under both kernels.
DEFAULT_CELLS = (
    "push:unicast",
    "push:broadcast",
    "invalidation:unicast",
    "ttl:unicast",
)

_CanonicalTrace = List[Tuple[float, str, str, str]]


class _ScopedEnv:
    """Temporarily set/unset process environment variables."""

    def __init__(self, **values: Optional[str]) -> None:
        self._values = values
        self._saved: Dict[str, Optional[str]] = {}

    def __enter__(self) -> "_ScopedEnv":
        for key, value in self._values.items():
            self._saved[key] = os.environ.get(key)
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        return self

    def __exit__(self, *_exc: object) -> None:
        for key, value in self._saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _canonical_trace(tracer: RecordingTracer) -> _CanonicalTrace:
    """The trace stream with same-instant emission order factored out."""
    return sorted(
        (
            event.time,
            event.kind,
            event.node,
            json.dumps(event.detail, sort_keys=True, default=repr),
        )
        for event in tracer.events()
    )


def run_cell(
    config: TestbedConfig,
    method: str,
    infrastructure: str,
    tie_seed: Optional[int],
    record_trace: bool = True,
) -> Tuple[Dict[str, object], Optional[_CanonicalTrace], int]:
    """One sanitized run; returns (metrics dict, canonical trace, ties).

    ``tie_seed=None`` runs the trap-only baseline (FIFO tie order);
    an integer runs a perturbed replica.  The sanitizer switches are
    installed via scoped environment variables because the
    :class:`Environment` is constructed deep inside
    :func:`build_deployment` (same construction-time contract as
    ``REPRO_LEGACY_KERNEL``).
    """
    with _ScopedEnv(
        **{
            SANITIZE_ENV: "1",
            SANITIZE_TIES_ENV: None if tie_seed is None else str(tie_seed),
        }
    ):
        tracer = RecordingTracer() if record_trace else None
        deployment = build_deployment(config, method, infrastructure, tracer=tracer)
        metrics = deployment.run()
        sanitizer = deployment.env.sanitizer
        ties = sanitizer.tie_collisions if sanitizer is not None else 0
        trace = _canonical_trace(tracer) if tracer is not None else None
        return metrics.to_dict(), trace, ties


def _diff_metrics(
    baseline: Dict[str, object], replica: Dict[str, object], limit: int = 5
) -> List[str]:
    diffs: List[str] = []
    for key in sorted(set(baseline) | set(replica)):
        left = baseline.get(key, "<missing>")
        right = replica.get(key, "<missing>")
        if left != right:
            diffs.append("metrics[%r]: baseline=%r replica=%r" % (key, left, right))
            if len(diffs) >= limit:
                break
    return diffs


def _diff_traces(
    baseline: _CanonicalTrace, replica: _CanonicalTrace, limit: int = 3
) -> List[str]:
    diffs: List[str] = []
    if len(baseline) != len(replica):
        diffs.append(
            "trace length: baseline=%d replica=%d" % (len(baseline), len(replica))
        )
    for index, (left, right) in enumerate(zip(baseline, replica)):
        if left != right:
            diffs.append(
                "trace[%d]: baseline=%r replica=%r" % (index, left, right)
            )
            if len(diffs) >= limit:
                break
    return diffs


class CellReport:
    """Outcome of sanitizing one method x infrastructure cell."""

    __slots__ = ("cell", "identical", "ties", "diffs")

    def __init__(
        self, cell: str, identical: bool, ties: List[int], diffs: List[str]
    ) -> None:
        self.cell = cell
        self.identical = identical
        #: Perturbed-tie count per replica (non-zero or the proof is
        #: vacuous -- the driver fails zero-tie cells).
        self.ties = ties
        self.diffs = diffs

    @property
    def vacuous(self) -> bool:
        return not any(self.ties)

    @property
    def ok(self) -> bool:
        return self.identical and not self.vacuous


def sanitize_cell(
    cell: str,
    config: TestbedConfig,
    replicas: int,
    tie_seed_base: int,
    record_trace: bool = True,
) -> CellReport:
    """Baseline plus *replicas* perturbed runs; compare bit-for-bit."""
    method, _, infrastructure = cell.partition(":")
    infrastructure = infrastructure or "unicast"
    base_metrics, base_trace, _ = run_cell(
        config, method, infrastructure, tie_seed=None, record_trace=record_trace
    )
    diffs: List[str] = []
    ties: List[int] = []
    for replica in range(replicas):
        metrics, trace, tie_count = run_cell(
            config,
            method,
            infrastructure,
            tie_seed=tie_seed_base + replica,
            record_trace=record_trace,
        )
        ties.append(tie_count)
        if metrics != base_metrics:
            diffs.extend(
                "replica %d (tie seed %d): %s" % (replica, tie_seed_base + replica, d)
                for d in _diff_metrics(base_metrics, metrics)
            )
        if base_trace is not None and trace is not None and trace != base_trace:
            diffs.extend(
                "replica %d (tie seed %d): %s" % (replica, tie_seed_base + replica, d)
                for d in _diff_traces(base_trace, trace)
            )
    return CellReport(cell, identical=not diffs, ties=ties, diffs=diffs)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sanitize",
        description="Schedule sanitizer: perturb same-instant event ties "
        "under a dedicated seeded stream and assert metrics/counters/"
        "traces stay bit-identical (see docs/static-analysis.md).",
    )
    parser.add_argument(
        "cells", nargs="*", default=list(DEFAULT_CELLS),
        metavar="METHOD:INFRA",
        help="cells to sanitize (default: %s)" % " ".join(DEFAULT_CELLS),
    )
    parser.add_argument("--servers", type=int, default=20)
    parser.add_argument("--users-per-server", type=int, default=2)
    parser.add_argument("--updates", type=int, default=40)
    parser.add_argument("--duration", type=float, default=800.0)
    parser.add_argument("--ttl", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=3, help="model seed")
    parser.add_argument(
        "--replicas", type=int, default=2,
        help="perturbed replicas per cell (default: 2)",
    )
    parser.add_argument(
        "--tie-seed", type=int, default=1000,
        help="base seed of the dedicated tie stream (default: 1000)",
    )
    parser.add_argument(
        "--no-trace", action="store_true",
        help="compare metrics/counters only (skip trace recording)",
    )
    return parser


def _kernel_label() -> str:
    from ..sim.engine import LEGACY_KERNEL_ENV

    legacy = os.environ.get(LEGACY_KERNEL_ENV, "") not in ("", "0")
    return "legacy" if legacy else "fast"


def run(args: argparse.Namespace, out=sys.stdout, err=sys.stderr) -> int:
    config = TestbedConfig(
        n_servers=args.servers,
        users_per_server=args.users_per_server,
        n_updates=args.updates,
        game_duration_s=args.duration,
        server_ttl_s=args.ttl,
        seed=args.seed,
    )
    kernel = _kernel_label()
    failed = False
    for cell in args.cells:
        report = sanitize_cell(
            cell,
            config,
            replicas=args.replicas,
            tie_seed_base=args.tie_seed,
            record_trace=not args.no_trace,
        )
        if report.ok:
            out.write(
                "sanitize [%s kernel] %-24s OK: %d replica(s) bit-identical, "
                "ties perturbed per replica: %s\n"
                % (kernel, cell, len(report.ties), report.ties)
            )
            continue
        failed = True
        if report.vacuous and report.identical:
            out.write(
                "sanitize [%s kernel] %-24s VACUOUS: no same-instant ties "
                "were exercised; grow the cell until the proof means "
                "something\n" % (kernel, cell)
            )
            continue
        out.write(
            "sanitize [%s kernel] %-24s DIVERGED: results depend on the "
            "same-instant tie order (ties per replica: %s)\n"
            % (kernel, cell, report.ties)
        )
        for diff in report.diffs:
            out.write("  %s\n" % diff)
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.replicas < 1:
        parser.error("--replicas must be >= 1")
    return run(args)
