"""Section 4 figure drivers (trace-driven evaluation, Figs. 14-20).

Every driver builds fresh deployments from a :class:`TestbedConfig`, so
results are deterministic given the config's seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.stats import PercentileSummary, summarize
from .config import TestbedConfig
from .testbed import DeploymentMetrics, build_deployment

__all__ = [
    "MethodComparison",
    "fig14_unicast_inconsistency",
    "fig15_multicast_inconsistency",
    "fig16_traffic_cost",
    "fig17_cost_vs_ttl",
    "fig18_invalidation_user_ttl",
    "fig19_packet_size",
    "fig20_network_size",
    "CORE_METHODS",
]

#: The three methods the paper evaluates in Section 4.
CORE_METHODS = ("push", "invalidation", "ttl")


@dataclass(frozen=True)
class MethodComparison:
    """Per-method metrics on one infrastructure (Figs. 14/15)."""

    infrastructure: str
    metrics: Dict[str, DeploymentMetrics]

    def mean_server_lag(self, method: str) -> float:
        return self.metrics[method].mean_server_lag

    def mean_user_lag(self, method: str) -> float:
        return self.metrics[method].mean_user_lag

    def server_lag_ordering(self) -> List[str]:
        """Methods sorted by server inconsistency (paper: push < inval < ttl)."""
        return sorted(self.metrics, key=lambda m: self.metrics[m].mean_server_lag)

    def sorted_server_lags(self, method: str) -> List[float]:
        """The per-server curve as plotted (sorted ascending)."""
        return sorted(self.metrics[method].server_lags.values())

    def sorted_user_lags(self, method: str) -> List[float]:
        return sorted(self.metrics[method].user_lags.values())


def _compare(
    config: TestbedConfig, infrastructure: str, methods: Sequence[str] = CORE_METHODS
) -> MethodComparison:
    metrics = {
        method: build_deployment(config, method, infrastructure).run()
        for method in methods
    }
    return MethodComparison(infrastructure=infrastructure, metrics=metrics)


def fig14_unicast_inconsistency(config: TestbedConfig) -> MethodComparison:
    """Fig. 14: server/user inconsistency, unicast star.

    Paper: Push < Invalidation < TTL on servers; TTL mean ~ TTL/2;
    users add their own polling lag, Push ~ Invalidation < TTL.
    """
    return _compare(config, "unicast")


def fig15_multicast_inconsistency(config: TestbedConfig) -> MethodComparison:
    """Fig. 15: same comparison on the binary multicast tree.

    Paper: same ordering, but TTL's inconsistency is amplified by tree
    depth (a layer-m node sees ~m times the layer-1 inconsistency).
    """
    return _compare(config, "multicast")


# ----------------------------------------------------------------------
# Fig. 16
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrafficCostResult:
    """km*KB consistency cost per (method, infrastructure) (Fig. 16)."""

    costs: Dict[Tuple[str, str], float]

    def cost(self, method: str, infrastructure: str) -> float:
        return self.costs[(method, infrastructure)]

    def multicast_saving(self, method: str) -> float:
        return self.cost(method, "unicast") - self.cost(method, "multicast")


def fig16_traffic_cost(
    config: TestbedConfig, methods: Sequence[str] = CORE_METHODS
) -> TrafficCostResult:
    costs: Dict[Tuple[str, str], float] = {}
    for infrastructure in ("unicast", "multicast"):
        for method in methods:
            metrics = build_deployment(config, method, infrastructure).run()
            costs[(method, infrastructure)] = metrics.cost_km_kb
    return TrafficCostResult(costs=costs)


# ----------------------------------------------------------------------
# Fig. 17
# ----------------------------------------------------------------------
def fig17_cost_vs_ttl(
    config: TestbedConfig,
    ttls_s: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0),
) -> Dict[str, Dict[float, float]]:
    """Fig. 17: TTL-method cost falls as the TTL grows (both infras)."""
    result: Dict[str, Dict[float, float]] = {}
    for infrastructure in ("unicast", "multicast"):
        per_ttl: Dict[float, float] = {}
        for ttl in ttls_s:
            metrics = build_deployment(
                config.with_(server_ttl_s=ttl), "ttl", infrastructure
            ).run()
            per_ttl[ttl] = metrics.cost_km_kb
        result[infrastructure] = per_ttl
    return result


# ----------------------------------------------------------------------
# Fig. 18
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig18Point:
    """One end-user-TTL setting for Invalidation (Fig. 18)."""

    user_ttl_s: float
    server_lag: PercentileSummary
    cost_km_kb: float


def fig18_invalidation_user_ttl(
    config: TestbedConfig,
    user_ttls_s: Sequence[float] = (10.0, 30.0, 60.0, 90.0, 120.0),
) -> Dict[str, List[Fig18Point]]:
    """Fig. 18: Invalidation with varying end-user TTL.

    Paper: server inconsistency grows with the user TTL (the fetch waits
    for a visit); traffic cost falls (visits skip whole update runs).
    """
    result: Dict[str, List[Fig18Point]] = {}
    for infrastructure in ("unicast", "multicast"):
        points: List[Fig18Point] = []
        for user_ttl in user_ttls_s:
            metrics = build_deployment(
                config.with_(user_ttl_s=user_ttl), "invalidation", infrastructure
            ).run()
            points.append(
                Fig18Point(
                    user_ttl_s=user_ttl,
                    server_lag=summarize(list(metrics.server_lags.values())),
                    cost_km_kb=metrics.cost_km_kb,
                )
            )
        result[infrastructure] = points
    return result


# ----------------------------------------------------------------------
# Fig. 19
# ----------------------------------------------------------------------
def fig19_packet_size(
    config: TestbedConfig,
    sizes_kb: Sequence[float] = (1.0, 100.0, 500.0),
    infrastructures: Sequence[str] = ("unicast", "multicast"),
    methods: Sequence[str] = CORE_METHODS,
) -> Dict[str, Dict[str, Dict[float, float]]]:
    """Fig. 19: mean server inconsistency vs update packet size.

    Paper: inconsistency grows with packet size; the growth rate orders
    Push > Invalidation > TTL, and multicast grows far slower than
    unicast (fan-out 2 vs fan-out N at the provider's uplink).
    """
    result: Dict[str, Dict[str, Dict[float, float]]] = {}
    for infrastructure in infrastructures:
        per_method: Dict[str, Dict[float, float]] = {}
        for method in methods:
            per_size: Dict[float, float] = {}
            for size in sizes_kb:
                metrics = build_deployment(
                    config.with_(update_size_kb=size), method, infrastructure
                ).run()
                per_size[size] = metrics.mean_server_lag
            per_method[method] = per_size
        result[infrastructure] = per_method
    return result


# ----------------------------------------------------------------------
# Fig. 20
# ----------------------------------------------------------------------
def fig20_network_size(
    config: TestbedConfig,
    n_servers: Sequence[int] = (170, 340, 510, 680, 850),
    infrastructures: Sequence[str] = ("unicast", "multicast"),
    methods: Sequence[str] = CORE_METHODS,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Fig. 20: mean server inconsistency vs network size.

    Paper: in unicast, TTL stays flat while Push/Invalidation grow with
    N (provider fan-out); in multicast, TTL grows fastest because the
    tree gets deeper and TTL lag stacks per layer.
    """
    result: Dict[str, Dict[str, Dict[int, float]]] = {}
    for infrastructure in infrastructures:
        per_method: Dict[str, Dict[int, float]] = {}
        for method in methods:
            per_n: Dict[int, float] = {}
            for n in n_servers:
                metrics = build_deployment(
                    config.with_(n_servers=n), method, infrastructure
                ).run()
                per_n[n] = metrics.mean_server_lag
            per_method[method] = per_n
        result[infrastructure] = per_method
    return result
