"""Section 4 figure drivers (trace-driven evaluation, Figs. 14-20).

Every driver expands its sweep into :class:`~repro.runner.RunSpec` grids
and executes them through a :class:`~repro.runner.Runner`, so sweeps run
in parallel when workers are available (``REPRO_WORKERS`` or an explicit
``runner=``) and memoize through the run registry when one is
configured.  Results are deterministic given the config's seed and
bit-identical across serial/parallel/cached execution.

Each driver returns a :class:`FigureResult`; the per-figure rich objects
(:class:`MethodComparison`, :class:`TrafficCostResult`, ...) live on as
its ``details``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


from ..metrics.stats import PercentileSummary, summarize
from ..runner import Runner, RunSpec, run_specs
from .config import TestbedConfig
from ..obs.telemetry import profiled
from .result import FigureResult
from .testbed import DeploymentMetrics

__all__ = [
    "MethodComparison",
    "TrafficCostResult",
    "Fig18Point",
    "fig14_unicast_inconsistency",
    "fig15_multicast_inconsistency",
    "fig16_traffic_cost",
    "fig17_cost_vs_ttl",
    "fig18_invalidation_user_ttl",
    "fig19_packet_size",
    "fig20_network_size",
    "CORE_METHODS",
]

#: The three methods the paper evaluates in Section 4.
CORE_METHODS = ("push", "invalidation", "ttl")


@dataclass(frozen=True)
class MethodComparison:
    """Per-method metrics on one infrastructure (Figs. 14/15)."""

    infrastructure: str
    metrics: Dict[str, DeploymentMetrics]

    def mean_server_lag(self, method: str) -> float:
        return self.metrics[method].mean_server_lag

    def mean_user_lag(self, method: str) -> float:
        return self.metrics[method].mean_user_lag

    def server_lag_ordering(self) -> List[str]:
        """Methods sorted by server inconsistency (paper: push < inval < ttl)."""
        return sorted(self.metrics, key=lambda m: self.metrics[m].mean_server_lag)

    def sorted_server_lags(self, method: str) -> List[float]:
        """The per-server curve as plotted (sorted ascending)."""
        return sorted(self.metrics[method].server_lags.values())

    def sorted_user_lags(self, method: str) -> List[float]:
        return sorted(self.metrics[method].user_lags.values())


def _compare(
    figure: str,
    config: TestbedConfig,
    infrastructure: str,
    methods: Sequence[str] = CORE_METHODS,
    runner: Optional[Runner] = None,
) -> FigureResult:
    specs = [
        RunSpec(config=config, method=method, infrastructure=infrastructure)
        for method in methods
    ]
    outcome = run_specs(specs, runner)
    metrics = dict(zip(methods, outcome.metrics))
    details = MethodComparison(infrastructure=infrastructure, metrics=metrics)
    return FigureResult(
        name=figure,
        params={"infrastructure": infrastructure, "methods": list(methods)},
        series={
            "server_lags": {m: details.sorted_server_lags(m) for m in methods},
            "user_lags": {m: details.sorted_user_lags(m) for m in methods},
        },
        summary={
            "%s.mean_server_lag" % m: metrics[m].mean_server_lag for m in methods
        }
        | {"%s.mean_user_lag" % m: metrics[m].mean_user_lag for m in methods},
        details=details,
        stats=outcome.stats,
    )


@profiled("driver.fig14")
def fig14_unicast_inconsistency(
    config: TestbedConfig, runner: Optional[Runner] = None
) -> FigureResult:
    """Fig. 14: server/user inconsistency, unicast star.

    Paper: Push < Invalidation < TTL on servers; TTL mean ~ TTL/2;
    users add their own polling lag, Push ~ Invalidation < TTL.
    """
    return _compare("fig14", config, "unicast", runner=runner)


@profiled("driver.fig15")
def fig15_multicast_inconsistency(
    config: TestbedConfig, runner: Optional[Runner] = None
) -> FigureResult:
    """Fig. 15: same comparison on the binary multicast tree.

    Paper: same ordering, but TTL's inconsistency is amplified by tree
    depth (a layer-m node sees ~m times the layer-1 inconsistency).
    """
    return _compare("fig15", config, "multicast", runner=runner)


# ----------------------------------------------------------------------
# Fig. 16
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrafficCostResult:
    """km*KB consistency cost per (method, infrastructure) (Fig. 16)."""

    costs: Dict[Tuple[str, str], float]

    def cost(self, method: str, infrastructure: str) -> float:
        return self.costs[(method, infrastructure)]

    def multicast_saving(self, method: str) -> float:
        return self.cost(method, "unicast") - self.cost(method, "multicast")


@profiled("driver.fig16")
def fig16_traffic_cost(
    config: TestbedConfig,
    methods: Sequence[str] = CORE_METHODS,
    runner: Optional[Runner] = None,
) -> FigureResult:
    infrastructures = ("unicast", "multicast")
    grid = [(m, i) for i in infrastructures for m in methods]
    specs = [
        RunSpec(config=config, method=method, infrastructure=infrastructure)
        for method, infrastructure in grid
    ]
    outcome = run_specs(specs, runner)
    costs = {
        (method, infrastructure): metrics.cost_km_kb
        for (method, infrastructure), metrics in zip(grid, outcome.metrics)
    }
    details = TrafficCostResult(costs=costs)
    return FigureResult(
        name="fig16",
        params={"methods": list(methods)},
        series={
            infrastructure: {m: costs[(m, infrastructure)] for m in methods}
            for infrastructure in infrastructures
        },
        summary={
            "multicast_saving.%s" % m: details.multicast_saving(m) for m in methods
        },
        details=details,
        stats=outcome.stats,
    )


# ----------------------------------------------------------------------
# Fig. 17
# ----------------------------------------------------------------------
@profiled("driver.fig17")
def fig17_cost_vs_ttl(
    config: TestbedConfig,
    ttls_s: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0),
    runner: Optional[Runner] = None,
) -> FigureResult:
    """Fig. 17: TTL-method cost falls as the TTL grows (both infras)."""
    infrastructures = ("unicast", "multicast")
    grid = [(i, ttl) for i in infrastructures for ttl in ttls_s]
    specs = [
        RunSpec(
            config=config.with_overrides(server_ttl_s=ttl),
            method="ttl",
            infrastructure=infrastructure,
        )
        for infrastructure, ttl in grid
    ]
    outcome = run_specs(specs, runner)
    series: Dict[str, Dict[float, float]] = {i: {} for i in infrastructures}
    for (infrastructure, ttl), metrics in zip(grid, outcome.metrics):
        series[infrastructure][ttl] = metrics.cost_km_kb
    return FigureResult(
        name="fig17",
        params={"ttls_s": list(ttls_s)},
        series=series,
        summary={
            "%s.cost_ratio_first_to_last" % i: (
                series[i][ttls_s[0]] / series[i][ttls_s[-1]]
            )
            for i in infrastructures
        },
        stats=outcome.stats,
    )


# ----------------------------------------------------------------------
# Fig. 18
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig18Point:
    """One end-user-TTL setting for Invalidation (Fig. 18)."""

    user_ttl_s: float
    server_lag: PercentileSummary
    cost_km_kb: float


@profiled("driver.fig18")
def fig18_invalidation_user_ttl(
    config: TestbedConfig,
    user_ttls_s: Sequence[float] = (10.0, 30.0, 60.0, 90.0, 120.0),
    runner: Optional[Runner] = None,
) -> FigureResult:
    """Fig. 18: Invalidation with varying end-user TTL.

    Paper: server inconsistency grows with the user TTL (the fetch waits
    for a visit); traffic cost falls (visits skip whole update runs).
    """
    infrastructures = ("unicast", "multicast")
    grid = [(i, ttl) for i in infrastructures for ttl in user_ttls_s]
    specs = [
        RunSpec(
            config=config.with_overrides(user_ttl_s=user_ttl),
            method="invalidation",
            infrastructure=infrastructure,
        )
        for infrastructure, user_ttl in grid
    ]
    outcome = run_specs(specs, runner)
    series: Dict[str, List[Fig18Point]] = {i: [] for i in infrastructures}
    for (infrastructure, user_ttl), metrics in zip(grid, outcome.metrics):
        series[infrastructure].append(
            Fig18Point(
                user_ttl_s=user_ttl,
                server_lag=summarize(list(metrics.server_lags.values())),
                cost_km_kb=metrics.cost_km_kb,
            )
        )
    return FigureResult(
        name="fig18",
        params={"user_ttls_s": list(user_ttls_s)},
        series=series,
        summary={
            "%s.lag_growth" % i: (
                series[i][-1].server_lag.median - series[i][0].server_lag.median
            )
            for i in infrastructures
        },
        stats=outcome.stats,
    )


# ----------------------------------------------------------------------
# Fig. 19
# ----------------------------------------------------------------------
@profiled("driver.fig19")
def fig19_packet_size(
    config: TestbedConfig,
    sizes_kb: Sequence[float] = (1.0, 100.0, 500.0),
    infrastructures: Sequence[str] = ("unicast", "multicast"),
    methods: Sequence[str] = CORE_METHODS,
    runner: Optional[Runner] = None,
) -> FigureResult:
    """Fig. 19: mean server inconsistency vs update packet size.

    Paper: inconsistency grows with packet size; the growth rate orders
    Push > Invalidation > TTL, and multicast grows far slower than
    unicast (fan-out 2 vs fan-out N at the provider's uplink).
    """
    grid = [
        (infrastructure, method, size)
        for infrastructure in infrastructures
        for method in methods
        for size in sizes_kb
    ]
    specs = [
        RunSpec(
            config=config.with_overrides(update_size_kb=size),
            method=method,
            infrastructure=infrastructure,
        )
        for infrastructure, method, size in grid
    ]
    outcome = run_specs(specs, runner)
    series: Dict[str, Dict[str, Dict[float, float]]] = {
        i: {m: {} for m in methods} for i in infrastructures
    }
    for (infrastructure, method, size), metrics in zip(grid, outcome.metrics):
        series[infrastructure][method][size] = metrics.mean_server_lag
    return FigureResult(
        name="fig19",
        params={"sizes_kb": list(sizes_kb), "methods": list(methods)},
        series=series,
        summary={
            "%s.%s.lag_growth" % (i, m): (
                series[i][m][sizes_kb[-1]] - series[i][m][sizes_kb[0]]
            )
            for i in infrastructures
            for m in methods
        },
        stats=outcome.stats,
    )


# ----------------------------------------------------------------------
# Fig. 20
# ----------------------------------------------------------------------
@profiled("driver.fig20")
def fig20_network_size(
    config: TestbedConfig,
    n_servers: Sequence[int] = (170, 340, 510, 680, 850),
    infrastructures: Sequence[str] = ("unicast", "multicast"),
    methods: Sequence[str] = CORE_METHODS,
    runner: Optional[Runner] = None,
) -> FigureResult:
    """Fig. 20: mean server inconsistency vs network size.

    Paper: in unicast, TTL stays flat while Push/Invalidation grow with
    N (provider fan-out); in multicast, TTL grows fastest because the
    tree gets deeper and TTL lag stacks per layer.
    """
    grid = [
        (infrastructure, method, n)
        for infrastructure in infrastructures
        for method in methods
        for n in n_servers
    ]
    specs = [
        RunSpec(
            config=config.with_overrides(n_servers=n),
            method=method,
            infrastructure=infrastructure,
        )
        for infrastructure, method, n in grid
    ]
    outcome = run_specs(specs, runner)
    series: Dict[str, Dict[str, Dict[int, float]]] = {
        i: {m: {} for m in methods} for i in infrastructures
    }
    for (infrastructure, method, n), metrics in zip(grid, outcome.metrics):
        series[infrastructure][method][n] = metrics.mean_server_lag
    return FigureResult(
        name="fig20",
        params={"n_servers": list(n_servers), "methods": list(methods)},
        series=series,
        summary={
            "%s.%s.lag_growth" % (i, m): (
                series[i][m][n_servers[-1]] - series[i][m][n_servers[0]]
            )
            for i in infrastructures
            for m in methods
        },
        stats=outcome.stats,
    )
