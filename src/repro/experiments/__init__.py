"""Experiment drivers: one function per paper figure, plus the testbed
builder and the EXPERIMENTS.md report generator."""

from .config import TestbedConfig, ci_scale, paper_scale, planet_scale, smoke_scale
from .planet import fig20x_planet_scale
from .report import ReportScale, generate_report
from .sharding import merge_shard_metrics, shard_specs, shard_user_counts
from .result import FigureResult
from .section3 import (
    Section3Context,
    fig10_absence,
    fig11_static_tree,
    fig12_dynamic_tree,
    fig3_inconsistency_cdf,
    fig4_user_perspective,
    fig5_inner_cluster,
    fig6_ttl_inference,
    fig7_provider_inconsistency,
    fig8_distance,
    fig9_isp,
)
from .section4 import (
    CORE_METHODS,
    MethodComparison,
    fig14_unicast_inconsistency,
    fig15_multicast_inconsistency,
    fig16_traffic_cost,
    fig17_cost_vs_ttl,
    fig18_invalidation_user_ttl,
    fig19_packet_size,
    fig20_network_size,
)
from .section5 import (
    Fig22aResult,
    Fig23Result,
    fig22a_update_messages,
    fig22b_provider_messages,
    fig23_network_load,
    fig24_inconsistency_observations,
    section5_config,
)
from .testbed import (
    Deployment,
    DeploymentMetrics,
    INFRASTRUCTURES,
    METHODS,
    SYSTEMS,
    build_deployment,
    build_system,
)

__all__ = [
    "FigureResult",
    "TestbedConfig",
    "paper_scale",
    "ci_scale",
    "smoke_scale",
    "planet_scale",
    "fig20x_planet_scale",
    "shard_specs",
    "shard_user_counts",
    "merge_shard_metrics",
    "Deployment",
    "DeploymentMetrics",
    "build_deployment",
    "build_system",
    "METHODS",
    "INFRASTRUCTURES",
    "SYSTEMS",
    "Section3Context",
    "fig3_inconsistency_cdf",
    "fig4_user_perspective",
    "fig5_inner_cluster",
    "fig6_ttl_inference",
    "fig7_provider_inconsistency",
    "fig8_distance",
    "fig9_isp",
    "fig10_absence",
    "fig11_static_tree",
    "fig12_dynamic_tree",
    "MethodComparison",
    "CORE_METHODS",
    "fig14_unicast_inconsistency",
    "fig15_multicast_inconsistency",
    "fig16_traffic_cost",
    "fig17_cost_vs_ttl",
    "fig18_invalidation_user_ttl",
    "fig19_packet_size",
    "fig20_network_size",
    "section5_config",
    "Fig22aResult",
    "Fig23Result",
    "fig22a_update_messages",
    "fig22b_provider_messages",
    "fig23_network_load",
    "fig24_inconsistency_observations",
    "ReportScale",
    "generate_report",
]
