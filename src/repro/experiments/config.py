"""Experiment configuration: one knob set shared by all Section 4/5 drivers.

The paper's testbed: 170 PlanetLab nodes (mainly U.S./Europe/Asia), the
provider in Atlanta, one day's live game (306 snapshots over 2 h 26 m),
five simulated end-users per node polling every 10 s, 1 KB packets, the
provider starting updates at t = 60 s and users starting at random times
in [0 s, 50 s].

``paper_scale()`` reproduces those numbers; ``ci_scale()`` is a
shrunken-but-same-shape configuration for tests and quick benchmark
runs; ``smoke_scale()`` is minimal.
"""

from __future__ import annotations

import difflib
import warnings
from dataclasses import dataclass, fields, replace
from typing import Optional

__all__ = ["TestbedConfig", "paper_scale", "ci_scale", "smoke_scale", "planet_scale"]

#: Workload-shape knobs whose override-plumbing is deprecated in favour
#: of scenarios (:mod:`repro.scenarios`): a scenario owns the update
#: schedule, so tweaking these per-run knobs behind its back is the old
#: way.  Still honoured for one release; the warning points at the
#: replacement.
DEPRECATED_WORKLOAD_KNOBS = ("game_duration_s", "n_updates", "update_start_s")


@dataclass(kw_only=True)
class TestbedConfig:
    """All tunables of one trace-driven experiment run.

    Fields are keyword-only: configs are built and modified by knob
    name, never positionally.  Use :meth:`with_overrides` (or its short
    alias :meth:`with_`) to derive modified copies -- unknown knob names
    are rejected with a "did you mean" hint instead of silently
    configuring nothing.
    """

    #: Not a pytest test class, despite the name.
    __test__ = False

    # --- deployment -------------------------------------------------------
    n_servers: int = 170
    users_per_server: int = 5
    provider_city: str = "Atlanta"
    tree_arity: int = 2          # Section 4's binary multicast tree
    hat_clusters: int = 20       # Section 5: 20 geographic clusters
    hat_arity: int = 4           # Section 5: 4-ary supernode tree

    # --- content / workload -------------------------------------------------
    n_updates: int = 306
    game_duration_s: float = 8760.0
    update_start_s: float = 60.0   # "provider starts to update contents at 60s"
    update_size_kb: float = 1.0
    light_size_kb: float = 1.0

    # --- update methods ------------------------------------------------------
    #: Content-server TTL.  Section 4 figures imply 10 s (TTL's average
    #: server inconsistency is 5.7 s ~ TTL/2); Section 5 uses 60 s.
    server_ttl_s: float = 10.0
    user_ttl_s: float = 10.0
    user_start_window_s: float = 50.0

    # --- user behaviour ---------------------------------------------------
    #: "fixed": each user sticks to its home server; "switch": a user
    #: visits a different random server every visit (the Fig. 24 scenario).
    user_selector: str = "fixed"

    # --- planet-scale user plane (see docs/scalability.md) -----------------
    #: "per-user": per-user observation logs, trackers and metrics-dict
    #: entries (the legacy layout).  "aggregate": O(1)-per-user scalar
    #: accumulators, metrics grouped by home server at collection --
    #: required for sharded merges; per-visit observations are not
    #: retained.
    user_metrics: str = "per-user"
    #: Deterministic population sharding: this run simulates only the
    #: users whose per-server index u satisfies u % user_shards ==
    #: user_shard, against the full (identical) server plane.  Shard
    #: metrics merge exactly via repro.experiments.sharding.
    user_shards: int = 1
    user_shard: int = 0

    # --- run --------------------------------------------------------------
    horizon_s: Optional[float] = None  # default: update_start + duration + slack
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if self.users_per_server < 0:
            raise ValueError("users_per_server must be >= 0")
        if self.n_updates <= 0 or self.game_duration_s <= 0:
            raise ValueError("n_updates and game_duration_s must be positive")
        if self.server_ttl_s <= 0 or self.user_ttl_s <= 0:
            raise ValueError("TTLs must be positive")
        if self.user_selector not in ("fixed", "switch"):
            raise ValueError("user_selector must be 'fixed' or 'switch'")
        if self.user_metrics not in ("per-user", "aggregate"):
            raise ValueError("user_metrics must be 'per-user' or 'aggregate'")
        if self.user_shards < 1:
            raise ValueError("user_shards must be >= 1")
        if not 0 <= self.user_shard < self.user_shards:
            raise ValueError("user_shard must be in [0, user_shards)")

    @property
    def run_horizon_s(self) -> float:
        if self.horizon_s is not None:
            return self.horizon_s
        # Enough slack for the last update to propagate everywhere.
        return self.update_start_s + self.game_duration_s + 4.0 * max(
            self.server_ttl_s, self.user_ttl_s
        )

    def with_overrides(self, **overrides) -> "TestbedConfig":
        """A modified copy; rejects unknown knob names explicitly.

        Sweep drivers feed user-supplied knob names through here, so a
        typo'd parameter fails loudly with the list of valid knobs (and
        the closest match) instead of surfacing as a confusing
        ``TypeError`` from the generated ``__init__``.
        """
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            hints = []
            for name in unknown:
                close = difflib.get_close_matches(name, valid, n=1)
                hints.append(
                    "%r%s" % (name, " (did you mean %r?)" % close[0] if close else "")
                )
            raise ValueError(
                "unknown TestbedConfig knob(s) %s; valid knobs: %s"
                % (", ".join(hints), ", ".join(sorted(valid)))
            )
        deprecated = sorted(set(overrides) & set(DEPRECATED_WORKLOAD_KNOBS))
        if deprecated:
            warnings.warn(
                "overriding workload knob(s) %s via with_overrides is "
                "deprecated: workload shape now belongs to a scenario "
                "(see repro.scenarios; register or select one instead). "
                "The override still applies for now."
                % ", ".join(repr(name) for name in deprecated),
                DeprecationWarning,
                stacklevel=2,
            )
        return replace(self, **overrides)

    def with_(self, **changes) -> "TestbedConfig":
        """Short alias for :meth:`with_overrides`."""
        return self.with_overrides(**changes)


def paper_scale(**overrides) -> TestbedConfig:
    """The paper's Section 4 testbed dimensions."""
    return TestbedConfig(**overrides)


def ci_scale(**overrides) -> TestbedConfig:
    """~6x smaller and ~6x shorter; preserves every shape the figures test."""
    defaults = dict(
        n_servers=30,
        users_per_server=2,
        n_updates=50,
        game_duration_s=1460.0,
        hat_clusters=6,
    )
    defaults.update(overrides)
    return TestbedConfig(**defaults)


def smoke_scale(**overrides) -> TestbedConfig:
    """Minimal configuration for fast unit tests."""
    defaults = dict(
        n_servers=8,
        users_per_server=1,
        n_updates=12,
        game_duration_s=400.0,
        hat_clusters=3,
    )
    defaults.update(overrides)
    return TestbedConfig(**defaults)


def planet_scale(**overrides) -> TestbedConfig:
    """Fig. 20x planet-scale defaults (see docs/scalability.md).

    A short, Section-5-cadenced workload (20 updates over 5 minutes,
    60 s TTLs -> ~10 visits per user) with aggregate user metrics, so
    wall time and memory scale with the population instead of with
    per-user bookkeeping.  Size knobs (``n_servers``,
    ``users_per_server``, ``user_shards``) are supplied per run.
    """
    defaults = dict(
        n_servers=10_000,
        users_per_server=50,
        n_updates=20,
        game_duration_s=300.0,
        server_ttl_s=60.0,
        user_ttl_s=60.0,
        user_metrics="aggregate",
    )
    defaults.update(overrides)
    return TestbedConfig(**defaults)
