"""Export figure data as CSV for external plotting.

Every figure driver returns structured results; these helpers flatten
them into plain ``(header, rows)`` tables and write CSV files, so the
paper's figures can be re-plotted with any tool without re-running the
simulations.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "write_csv",
    "write_figures_json",
    "cdf_table",
    "series_table",
    "method_comparison_table",
    "matrix_table",
]

Table = Tuple[List[str], List[List]]


def write_csv(path: str, table: Table) -> str:
    """Write ``(header, rows)`` to *path*; returns the absolute path."""
    header, rows = table
    for row in rows:
        if len(row) != len(header):
            raise ValueError(
                "row %r does not match header %r" % (row, header)
            )
    path = os.path.abspath(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def write_figures_json(path: str, figures: Iterable) -> str:
    """Write a manifest of :class:`FigureResult`-shaped objects as JSON.

    Each entry is ``figure.to_dict()`` keyed by the figure's name -- one
    machine-readable file covering every exported figure.
    """
    manifest = {figure.name: figure.to_dict() for figure in figures}
    path = os.path.abspath(path)
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def cdf_table(points: Iterable[Tuple[float, float]], x_name: str = "x") -> Table:
    """CDF points -> a two-column table (Figs. 3, 5, 7, 12...)."""
    rows = [[float(x), float(y)] for x, y in points]
    return ([x_name, "cdf"], rows)


def series_table(
    series: Dict[float, float], x_name: str, y_name: str
) -> Table:
    """An ``{x: y}`` sweep -> a sorted two-column table (Figs. 17, 22, 24)."""
    rows = [[float(x), series[x]] for x in sorted(series)]
    return ([x_name, y_name], rows)


def method_comparison_table(comparison) -> Table:
    """A Section 4 MethodComparison -> per-server sorted-lag curves
    (exactly what Figs. 14/15 plot)."""
    methods = sorted(comparison.metrics)
    curves = {method: comparison.sorted_server_lags(method) for method in methods}
    length = max(len(curve) for curve in curves.values())
    rows = []
    for index in range(length):
        row: List = [index]
        for method in methods:
            curve = curves[method]
            row.append(curve[index] if index < len(curve) else "")
        rows.append(row)
    return (["server_rank"] + methods, rows)


def matrix_table(
    matrix: Dict[str, Dict[float, float]], x_name: str, columns: Sequence[str] = ()
) -> Table:
    """``{series: {x: y}}`` -> one column per series (Figs. 19, 20, 22)."""
    names = list(columns) if columns else sorted(matrix)
    xs = sorted({x for series in matrix.values() for x in series})
    rows = []
    for x in xs:
        row: List = [float(x)]
        for name in names:
            row.append(matrix.get(name, {}).get(x, ""))
        rows.append(row)
    return ([x_name] + names, rows)
