"""Section 3 figure drivers (trace measurement, Figs. 3-12).

Each ``figN`` function consumes a shared :class:`Section3Context`
(synthetic trace + simulated users) and returns a :class:`FigureResult`
whose ``details`` carry exactly the numbers the paper's figure reports
(attribute access falls through to them), so the benchmark for each
figure can regenerate and check it independently.  These figures are
trace analyses -- they run no deployments, so their ``stats`` is
``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.stats import Cdf, PercentileSummary, summarize
from ..trace.analysis import all_inconsistencies, day_inconsistencies
from ..trace.causes import (
    IspClusterResult,
    absence_impact,
    consistency_vs_distance,
    inconsistency_around_absences,
    isp_inconsistency_analysis,
    observed_absence_lengths,
    provider_inconsistency_sample,
    provider_response_times,
)
from ..trace.clustering import geo_clusters
from ..trace.records import CdnTrace
from ..trace.synthesize import SynthesisConfig, TraceSynthesizer, UserTrace
from ..trace.tree_inference import (
    TreeEvidence,
    cluster_daily_means,
    cluster_mean_spread,
    max_inconsistency_fractions,
    normalized_rank_churn,
    rank_trajectories,
    tree_existence_analysis,
)
from ..trace.ttl_inference import TtlInference, infer_ttl, theory_rmse
from ..trace.user_view import (
    all_continuous_times,
    daily_inconsistent_server_fractions,
    inconsistency_vs_poll_interval,
    redirected_fractions,
)
from ..obs.telemetry import profiled
from .result import FigureResult

__all__ = [
    "Section3Context",
    "fig3_inconsistency_cdf",
    "fig4_user_perspective",
    "fig5_inner_cluster",
    "fig6_ttl_inference",
    "fig7_provider_inconsistency",
    "fig8_distance",
    "fig9_isp",
    "fig10_absence",
    "fig11_static_tree",
    "fig12_dynamic_tree",
]


class Section3Context:
    """Shared data for all Section 3 figures (built once, reused)."""

    def __init__(
        self, config: Optional[SynthesisConfig] = None, seed: int = 0, n_users: int = 100
    ) -> None:
        self.config = config if config is not None else SynthesisConfig()
        self.seed = seed
        self.n_users = n_users
        self.synthesizer = TraceSynthesizer(self.config, master_seed=seed)
        self._trace: Optional[CdnTrace] = None
        self._users: Optional[UserTrace] = None
        self._lengths: Optional[np.ndarray] = None

    @classmethod
    def small(cls, seed: int = 0) -> "Section3Context":
        """A CI-sized context (fast, same shapes).

        Update counts scale with the shortened session so inter-update
        gaps keep the same relation to the TTL as at full scale.
        """
        return cls(
            SynthesisConfig(
                n_servers=80,
                n_days=4,
                session_length_s=4500.0,
                updates_per_day_low=18,
                updates_per_day_high=80,
            ),
            seed=seed,
            n_users=40,
        )

    @property
    def trace(self) -> CdnTrace:
        if self._trace is None:
            self._trace = self.synthesizer.synthesize()
        return self._trace

    @property
    def user_trace(self) -> UserTrace:
        if self._users is None:
            self._users = self.synthesizer.synthesize_users(
                self.trace, n_users=self.n_users
            )
        return self._users

    @property
    def inconsistency_lengths(self) -> np.ndarray:
        if self._lengths is None:
            self._lengths = all_inconsistencies(self.trace)
        return self._lengths


# ----------------------------------------------------------------------
# Fig. 3
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Result:
    """CDF of all inconsistency lengths (paper: 10.1% < 10 s, 20.3% > 50 s)."""

    n: int
    mean_s: float
    frac_below_10s: float
    frac_above_50s: float
    cdf_points: Tuple[Tuple[float, float], ...]


@profiled("driver.fig3")
def fig3_inconsistency_cdf(ctx: Section3Context) -> FigureResult:
    lengths = ctx.inconsistency_lengths
    cdf = Cdf(lengths)
    details = Fig3Result(
        n=len(cdf),
        mean_s=float(lengths.mean()),
        frac_below_10s=cdf.at(10.0),
        frac_above_50s=cdf.fraction_above(50.0),
        cdf_points=tuple(cdf.points(50)),
    )
    return FigureResult(
        name="fig3",
        series={"cdf_points": list(details.cdf_points)},
        summary={
            "n": details.n,
            "mean_s": details.mean_s,
            "frac_below_10s": details.frac_below_10s,
            "frac_above_50s": details.frac_above_50s,
        },
        details=details,
    )


# ----------------------------------------------------------------------
# Fig. 4
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig4Result:
    """User-perspective consistency (Fig. 4a-e)."""

    redirect_fraction_summary: PercentileSummary          # (a)
    daily_inconsistent_server_fractions: Tuple[float, ...]  # (b)
    continuous_consistency: PercentileSummary             # (c)
    continuous_inconsistency: PercentileSummary           # (d)
    frac_incons_at_most_2_polls: float                    # (d): <= 2 visits
    per_interval: Dict[float, PercentileSummary]          # (e)


@profiled("driver.fig4")
def fig4_user_perspective(
    ctx: Section3Context,
    intervals: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0),
) -> FigureResult:
    user_trace = ctx.user_trace
    redirect = summarize(redirected_fractions(user_trace))
    daily = tuple(daily_inconsistent_server_fractions(ctx.trace))
    cons, incons = all_continuous_times(user_trace)
    cons_summary = summarize(cons) if cons else PercentileSummary(0, 0, 0, 0, 0)
    incons_summary = summarize(incons) if incons else PercentileSummary(0, 0, 0, 0, 0)
    two_polls = 2.0 * user_trace.poll_interval_s
    frac_short = (
        float(np.mean(np.asarray(incons) <= two_polls)) if incons else 1.0
    )
    per_interval = inconsistency_vs_poll_interval(
        lambda interval: ctx.synthesizer.synthesize_users(
            ctx.trace, n_users=max(10, ctx.n_users // 2), poll_interval_s=interval
        ),
        intervals,
    )
    details = Fig4Result(
        redirect_fraction_summary=redirect,
        daily_inconsistent_server_fractions=daily,
        continuous_consistency=cons_summary,
        continuous_inconsistency=incons_summary,
        frac_incons_at_most_2_polls=frac_short,
        per_interval=per_interval,
    )
    return FigureResult(
        name="fig4",
        params={"intervals": list(intervals)},
        series={"per_interval": per_interval},
        summary={
            "median_redirect_fraction": redirect.median,
            "frac_incons_at_most_2_polls": frac_short,
            "median_continuous_consistency_s": cons_summary.median,
        },
        details=details,
    )


# ----------------------------------------------------------------------
# Fig. 5
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5Result:
    """Inner-cluster inconsistency CDF (paper: ~linear on [0, TTL])."""

    n: int
    frac_below_10s: float
    uniform_rmse_on_ttl: float
    cdf_points: Tuple[Tuple[float, float], ...]


@profiled("driver.fig5")
def fig5_inner_cluster(
    ctx: Section3Context, min_cluster_size: int = 3
) -> FigureResult:
    from ..metrics.stats import rmse_against_uniform

    trace = ctx.trace
    clusters = geo_clusters(trace, min_size=min_cluster_size)
    chunks: List[np.ndarray] = []
    for day in trace.days:
        for members in clusters.values():
            per_server = day_inconsistencies(day, members)
            chunks.extend(per_server.values())
    lengths = np.concatenate([c for c in chunks if c.size]) if chunks else np.empty(0)
    cdf = Cdf(lengths)
    within = lengths[lengths <= trace.ttl_s]
    details = Fig5Result(
        n=len(cdf),
        frac_below_10s=cdf.at(10.0),
        uniform_rmse_on_ttl=rmse_against_uniform(within, trace.ttl_s),
        cdf_points=tuple(cdf.points(50)),
    )
    return FigureResult(
        name="fig5",
        params={"min_cluster_size": min_cluster_size},
        series={"cdf_points": list(details.cdf_points)},
        summary={
            "n": details.n,
            "frac_below_10s": details.frac_below_10s,
            "uniform_rmse_on_ttl": details.uniform_rmse_on_ttl,
        },
        details=details,
    )


# ----------------------------------------------------------------------
# Fig. 6
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig6Result:
    """TTL inference (paper: TTL = 60 s; RMSE 0.046 @60 vs 0.096 @80)."""

    inference: TtlInference
    rmse_at_60: float
    rmse_at_80: float


@profiled("driver.fig6")
def fig6_ttl_inference(ctx: Section3Context) -> FigureResult:
    lengths = ctx.inconsistency_lengths
    details = Fig6Result(
        inference=infer_ttl(lengths),
        rmse_at_60=theory_rmse(lengths, 60.0),
        rmse_at_80=theory_rmse(lengths, 80.0),
    )
    return FigureResult(
        name="fig6",
        series={"deviation_curve": dict(details.inference.curve)},
        summary={
            "ttl_s": details.inference.ttl_s,
            "rmse_at_60": details.rmse_at_60,
            "rmse_at_80": details.rmse_at_80,
        },
        details=details,
    )


# ----------------------------------------------------------------------
# Fig. 7
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig7Result:
    """Provider inconsistency (paper: 90.2% < 10 s, mean 3.43 s)."""

    n: int
    mean_s: float
    frac_below_10s: float
    frac_above_50s: float


@profiled("driver.fig7")
def fig7_provider_inconsistency(ctx: Section3Context) -> FigureResult:
    sample = provider_inconsistency_sample(ctx.trace)
    cdf = Cdf(sample)
    details = Fig7Result(
        n=len(cdf),
        mean_s=float(sample.mean()),
        frac_below_10s=cdf.at(10.0),
        frac_above_50s=cdf.fraction_above(50.0),
    )
    return FigureResult(
        name="fig7",
        series={"cdf_points": list(cdf.points(50))},
        summary={
            "n": details.n,
            "mean_s": details.mean_s,
            "frac_below_10s": details.frac_below_10s,
            "frac_above_50s": details.frac_above_50s,
        },
        details=details,
    )


# ----------------------------------------------------------------------
# Fig. 8
# ----------------------------------------------------------------------
@profiled("driver.fig8")
def fig8_distance(ctx: Section3Context, band_km: float = 2000.0) -> FigureResult:
    """Distance vs consistency ratio (paper: r = 0.11, no real effect)."""
    details = consistency_vs_distance(ctx.trace, band_km=band_km)
    return FigureResult(
        name="fig8",
        params={"band_km": band_km},
        series={
            "band_centres_km": list(details.band_centres_km),
            "band_mean_ratios": list(details.band_mean_ratios),
        },
        summary={"pearson_r": details.pearson_r},
        details=details,
    )


# ----------------------------------------------------------------------
# Fig. 9
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig9Result:
    """Intra vs inter-ISP inconsistency (paper: +[3.69, 23.2] s)."""

    clusters: Tuple[IspClusterResult, ...]
    increments: Tuple[float, ...]
    min_increment_s: float
    max_increment_s: float


@profiled("driver.fig9")
def fig9_isp(ctx: Section3Context, min_cluster_size: int = 3) -> FigureResult:
    clusters = tuple(isp_inconsistency_analysis(ctx.trace, min_cluster_size))
    increments = tuple(c.increment_mean_s for c in clusters)
    if not increments:
        raise RuntimeError("no ISP clusters of the requested size")
    details = Fig9Result(
        clusters=clusters,
        increments=increments,
        min_increment_s=min(increments),
        max_increment_s=max(increments),
    )
    return FigureResult(
        name="fig9",
        params={"min_cluster_size": min_cluster_size},
        series={"increments": list(increments)},
        summary={
            "n_clusters": len(clusters),
            "min_increment_s": details.min_increment_s,
            "max_increment_s": details.max_increment_s,
        },
        details=details,
    )


# ----------------------------------------------------------------------
# Fig. 10
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig10Result:
    """Provider bandwidth + server absence analyses (Fig. 10a-d)."""

    response_time_summary: PercentileSummary
    frac_responses_below_1_5s: float
    absence_lengths_summary: Optional[PercentileSummary]
    frac_absences_below_50s: float
    impact_by_absence_bin: Dict[float, float]
    around_absence: Dict[Tuple[float, float], float]


@profiled("driver.fig10")
def fig10_absence(ctx: Section3Context) -> FigureResult:
    trace = ctx.trace
    responses = provider_response_times(trace)
    response_summary = summarize(responses)
    absences = observed_absence_lengths(trace)
    absence_summary = summarize(absences) if absences.size else None
    frac50 = float(np.mean(absences < 50.0)) if absences.size else 1.0
    details = Fig10Result(
        response_time_summary=response_summary,
        frac_responses_below_1_5s=float(np.mean(responses < 1.5)),
        absence_lengths_summary=absence_summary,
        frac_absences_below_50s=frac50,
        impact_by_absence_bin=absence_impact(trace),
        around_absence=inconsistency_around_absences(trace),
    )
    return FigureResult(
        name="fig10",
        series={"impact_by_absence_bin": dict(details.impact_by_absence_bin)},
        summary={
            "frac_responses_below_1_5s": details.frac_responses_below_1_5s,
            "frac_absences_below_50s": details.frac_absences_below_50s,
        },
        details=details,
    )


# ----------------------------------------------------------------------
# Fig. 11
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig11Result:
    """Static-tree tests (paper: ranks churn; no stable hierarchy)."""

    cluster_spreads: Dict[str, Tuple[float, float]]
    mean_rank_churn: float


@profiled("driver.fig11")
def fig11_static_tree(
    ctx: Section3Context, min_cluster_size: int = 5
) -> FigureResult:
    trace = ctx.trace
    # Adapt the size threshold downward for small synthetic traces (the
    # paper's clusters A/B have 140/250 servers; CI traces have ~2-8).
    for size in range(min_cluster_size, 1, -1):
        clusters = geo_clusters(trace, min_size=size)
        churns = []
        for members in clusters.values():
            ranks = rank_trajectories(trace, members, n_days=min(7, trace.n_days))
            if len(ranks) >= size:
                churns.append(normalized_rank_churn(ranks))
        if churns:
            daily = cluster_daily_means(trace, min_cluster_size=size)
            spreads = cluster_mean_spread(daily)
            details = Fig11Result(
                cluster_spreads=spreads, mean_rank_churn=float(np.mean(churns))
            )
            return FigureResult(
                name="fig11",
                params={"min_cluster_size": min_cluster_size},
                series={"cluster_spreads": dict(spreads)},
                summary={"mean_rank_churn": details.mean_rank_churn},
                details=details,
            )
    raise RuntimeError("no clusters large enough for the rank test")


# ----------------------------------------------------------------------
# Fig. 12
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig12Result:
    """Dynamic-tree test (paper: 76.7% / 86.9% of maxima < TTL)."""

    daily_below_ttl_fractions: Tuple[float, ...]
    evidence: TreeEvidence


@profiled("driver.fig12")
def fig12_dynamic_tree(ctx: Section3Context) -> FigureResult:
    fractions = tuple(max_inconsistency_fractions(ctx.trace))
    details = Fig12Result(
        daily_below_ttl_fractions=fractions,
        evidence=tree_existence_analysis(ctx.trace),
    )
    return FigureResult(
        name="fig12",
        series={"daily_below_ttl_fractions": list(fractions)},
        summary={
            "min_fraction": min(fractions) if fractions else 0.0,
            "max_fraction": max(fractions) if fractions else 0.0,
            "tree_likely": details.evidence.tree_likely,
        },
        details=details,
    )
