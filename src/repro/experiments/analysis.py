"""Cross-run statistical analysis of benchmark / telemetry trajectories.

ROADMAP item 4's fuzzbench-shaped layer: the repo accumulates
evaluation history -- ``BENCH_*.json`` benchmark trajectories (PR 5),
``<registry>.telemetry.json`` run rollups, ``figures.json`` manifests
-- and this module turns those trajectories into *decisions*:

- **method comparisons** with real statistics: paired ``extra_info``
  series (``fast_events_per_s`` vs ``legacy_events_per_s``,
  ``cohort_users_per_s`` vs ``actor_users_per_s`` vs
  ``legacy_users_per_s``) are compared across history entries with the
  Mann-Whitney U rank test (tie-corrected normal approximation, the
  fuzzbench standard for non-normal perf samples), the Vargha-Delaney
  A12 effect size, and seeded bootstrap confidence intervals on each
  side's mean;
- **trajectory anomaly detection**: every benchmark's per-entry mean
  series is screened by the trailing-median outlier rule (the
  ``check_bench`` gate, applied over the whole history rather than just
  the newest entry) and a YouLighter-inspired windowed-centroid change
  detector (PAPERS.md: adjacent sliding windows over an aggregate
  series; a centroid jump large relative to in-window spread flags an
  infrastructure/behaviour shift that per-point thresholds miss);
- **reports**: one analysis dict, rendered as terse text
  (``repro analyze``) or as a fully self-contained HTML page -- inline
  CSS, inline SVG sparklines, zero external assets or scripts -- that
  CI uploads as an artifact (``repro report --html`` reuses the same
  renderer).

Everything is seeded and deterministic: the only randomness is the
bootstrap resampler, which runs on an explicit ``random.Random(seed)``
(this module is harness-side analysis -- outside the simulation's
REP001 seeded-stream scope -- and is never imported by simulated code).
"""

from __future__ import annotations

import html
import json
import math
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "load_bench_trajectory",
    "mann_whitney_u",
    "bootstrap_mean_ci",
    "trailing_median_outliers",
    "change_points",
    "extra_info_series",
    "benchmark_mean_series",
    "discover_comparisons",
    "analyze_trajectories",
    "render_text",
    "render_html",
    "sparkline_svg",
]

#: Two-sided significance threshold for the comparison table.
ALPHA = 0.05

#: Format tag of a BENCH_*.json trajectory (benchmarks/bench_history.py).
TRAJECTORY_FORMAT = 1


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def load_bench_trajectory(path: str) -> Dict[str, Any]:
    """The benchmark trajectory at *path*.

    Accepts the same two shapes as ``benchmarks/bench_history.py`` (a
    ``{"format": 1, "history": [...]}`` trajectory, or a legacy raw
    pytest-benchmark snapshot treated as a one-entry history) and
    raises ``ValueError`` on anything else -- ``make analyze-smoke``
    relies on malformed history being a hard failure.
    """
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        raise ValueError("trajectory %s does not exist" % path)
    except (OSError, ValueError) as exc:
        raise ValueError("cannot read trajectory %s: %s" % (path, exc))
    if isinstance(doc, dict) and isinstance(doc.get("history"), list):
        for index, entry in enumerate(doc["history"]):
            if not isinstance(entry, dict) or not isinstance(
                entry.get("benchmarks"), list
            ):
                raise ValueError(
                    "trajectory %s entry %d is malformed" % (path, index)
                )
        return {"format": TRAJECTORY_FORMAT, "history": doc["history"]}
    if isinstance(doc, dict) and isinstance(doc.get("benchmarks"), list):
        entry = {
            "recorded": doc.get("datetime", ""),
            "machine": (doc.get("machine_info") or {}).get("node", ""),
            "benchmarks": [
                {
                    "name": bench.get("name", "?"),
                    "stats": bench.get("stats", {}),
                    "extra_info": bench.get("extra_info") or {},
                }
                for bench in doc["benchmarks"]
            ],
        }
        return {"format": TRAJECTORY_FORMAT, "history": [entry]}
    raise ValueError(
        "%s is neither a benchmark trajectory nor a pytest-benchmark "
        "snapshot" % path
    )


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
def mann_whitney_u(
    a: Sequence[float], b: Sequence[float]
) -> Dict[str, float]:
    """Two-sided Mann-Whitney U test of samples *a* vs *b*.

    Returns ``{"u", "p_value", "a12", "n_a", "n_b"}``.  ``u`` is the
    U statistic of *a*; ``a12`` is the Vargha-Delaney effect size
    (``P(a > b)`` plus half the ties -- 0.5 means no effect, 1.0 means
    *a* always wins).  The p-value uses the tie-corrected normal
    approximation with continuity correction; fine for the sample
    sizes trajectories produce, and monotone in the evidence either
    way.
    """
    n_a, n_b = len(a), len(b)
    if n_a == 0 or n_b == 0:
        raise ValueError("both samples must be non-empty")
    combined = sorted(
        [(float(v), 0) for v in a] + [(float(v), 1) for v in b]
    )
    total = n_a + n_b
    ranks = [0.0] * total
    tie_term = 0.0
    index = 0
    while index < total:
        upper = index
        while (
            upper + 1 < total and combined[upper + 1][0] == combined[index][0]
        ):
            upper += 1
        rank = (index + upper) / 2.0 + 1.0
        for position in range(index, upper + 1):
            ranks[position] = rank
        width = upper - index + 1
        if width > 1:
            tie_term += width**3 - width
        index = upper + 1
    rank_sum_a = sum(
        rank for rank, (_, group) in zip(ranks, combined) if group == 0
    )
    u_a = rank_sum_a - n_a * (n_a + 1) / 2.0
    mean_u = n_a * n_b / 2.0
    if total > 1:
        variance = (
            n_a * n_b / 12.0
        ) * ((total + 1) - tie_term / (total * (total - 1)))
    else:  # pragma: no cover - total >= 2 given both samples non-empty
        variance = 0.0
    if variance <= 0.0:
        p_value = 1.0  # all values tied: no evidence either way
    else:
        centered = u_a - mean_u
        if centered > 0.5:
            centered -= 0.5
        elif centered < -0.5:
            centered += 0.5
        else:
            centered = 0.0
        z = centered / math.sqrt(variance)
        p_value = min(1.0, math.erfc(abs(z) / math.sqrt(2.0)))
    return {
        "u": u_a,
        "p_value": p_value,
        "a12": u_a / (n_a * n_b),
        "n_a": float(n_a),
        "n_b": float(n_b),
    }


def bootstrap_mean_ci(
    values: Sequence[float],
    seed: int = 0,
    resamples: int = 2000,
    confidence: float = 0.95,
) -> Tuple[float, float]:
    """Seeded percentile-bootstrap confidence interval for the mean."""
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    size = len(values)
    if size == 1:
        return (float(values[0]), float(values[0]))
    rng = random.Random(seed)
    draw = rng.random
    means = []
    for _ in range(max(1, resamples)):
        total = 0.0
        for _ in range(size):
            total += values[int(draw() * size)]
        means.append(total / size)
    means.sort()
    tail = (1.0 - confidence) / 2.0
    last = len(means) - 1
    return (
        means[int(tail * last)],
        means[int(math.ceil((1.0 - tail) * last))],
    )


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _stdev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    center = _mean(values)
    return math.sqrt(
        sum((value - center) ** 2 for value in values) / (len(values) - 1)
    )


def trailing_median_outliers(
    values: Sequence[float],
    window: int = 5,
    threshold: float = 1.5,
    min_history: int = 2,
) -> List[Dict[str, float]]:
    """Steps that jumped by more than *threshold*x against the trailing
    median of the previous *window* values (either direction) -- the
    ``check_bench`` regression rule applied to the whole history."""
    anomalies: List[Dict[str, float]] = []
    for index in range(min_history, len(values)):
        prior = [
            float(v) for v in values[max(0, index - window): index]
        ]
        if len(prior) < min_history:
            continue  # pragma: no cover - unreachable with default args
        med = _median(prior)
        value = float(values[index])
        if med <= 0.0:
            continue
        if value > threshold * med or value * threshold < med:
            anomalies.append(
                {
                    "index": float(index),
                    "value": value,
                    "trailing_median": med,
                    "ratio": value / med,
                }
            )
    return anomalies


def change_points(
    values: Sequence[float],
    window: int = 3,
    sensitivity: float = 3.0,
) -> List[Dict[str, float]]:
    """Level shifts via adjacent sliding-window centroids (YouLighter).

    For each split point, the centroids of the *window* values before
    and after are compared; a jump large relative to the in-window
    spread (>= *sensitivity* pooled standard deviations) marks a
    change point.  This catches sustained regime changes -- a kernel
    swap, a new machine -- that per-point outlier rules miss because
    every post-change point agrees with its neighbours.
    """
    points: List[Dict[str, float]] = []
    floats = [float(v) for v in values]
    for split in range(window, len(floats) - window + 1):
        left = floats[split - window: split]
        right = floats[split: split + window]
        centroid_jump = abs(_mean(right) - _mean(left))
        spread = (_stdev(left) + _stdev(right)) / 2.0
        if spread <= 0.0:
            # Perfectly flat windows: any jump at all is a shift.
            spread = max(abs(_mean(left)), 1e-12) * 1e-9
        score = centroid_jump / spread
        if score >= sensitivity:
            points.append(
                {
                    "index": float(split),
                    "shift": _mean(right) - _mean(left),
                    "score": score,
                }
            )
    return points


# ----------------------------------------------------------------------
# trajectory series extraction
# ----------------------------------------------------------------------
def benchmark_mean_series(
    trajectory: Dict[str, Any]
) -> Dict[str, List[float]]:
    """Per-benchmark mean runtime across history entries (missing
    entries are skipped, so a renamed benchmark starts a short series)."""
    series: Dict[str, List[float]] = {}
    for entry in trajectory.get("history", []):
        for bench in entry.get("benchmarks", []):
            mean = (bench.get("stats") or {}).get("mean")
            if isinstance(mean, (int, float)):
                series.setdefault(str(bench.get("name", "?")), []).append(
                    float(mean)
                )
    return series


def extra_info_series(
    trajectory: Dict[str, Any]
) -> Dict[str, List[float]]:
    """Per-``extra_info``-key numeric series across history entries
    (a key appearing in several benchmarks of one entry contributes
    its per-entry mean, keeping one sample per run)."""
    series: Dict[str, List[float]] = {}
    for entry in trajectory.get("history", []):
        per_entry: Dict[str, List[float]] = {}
        for bench in entry.get("benchmarks", []):
            for key, value in (bench.get("extra_info") or {}).items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    per_entry.setdefault(str(key), []).append(float(value))
        for key, values in per_entry.items():
            series.setdefault(key, []).append(_mean(values))
    return series


def _comparison_suffix(key: str) -> str:
    """``fast_events_per_s`` -> ``events_per_s``: the metric a key
    measures, with its method prefix stripped."""
    head, _, tail = key.partition("_")
    return tail if tail else head


def discover_comparisons(
    series: Dict[str, List[float]]
) -> List[Tuple[str, str, str]]:
    """Method-comparison pairs hiding in ``extra_info`` keys.

    Keys sharing a metric suffix form a group (``fast_events_per_s`` /
    ``legacy_events_per_s``; ``cohort_users_per_s`` /
    ``actor_users_per_s`` / ``legacy_users_per_s``); only groups
    containing a ``legacy_``-prefixed member are method comparisons
    (``transport_speedup`` vs ``kernel_speedup`` share a suffix but
    measure different things).  Returns ``(suffix, key_a, key_b)``
    pairs, the legacy side always second.
    """
    groups: Dict[str, List[str]] = {}
    for key in sorted(series):
        groups.setdefault(_comparison_suffix(key), []).append(key)
    pairs: List[Tuple[str, str, str]] = []
    for suffix, keys in sorted(groups.items()):
        if len(keys) < 2 or not any(k.startswith("legacy_") for k in keys):
            continue
        for left in range(len(keys)):
            for right in range(left + 1, len(keys)):
                key_a, key_b = keys[left], keys[right]
                if key_a.startswith("legacy_"):
                    key_a, key_b = key_b, key_a
                pairs.append((suffix, key_a, key_b))
    return pairs


# ----------------------------------------------------------------------
# the analysis driver
# ----------------------------------------------------------------------
def analyze_trajectories(
    paths: Sequence[str],
    seed: int = 0,
    resamples: int = 2000,
    window: int = 5,
    threshold: float = 1.5,
    telemetry_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Load, test and screen every trajectory; returns the analysis
    dict that :func:`render_text` / :func:`render_html` consume.

    Raises ``ValueError`` if any trajectory is malformed.
    """
    trajectories: List[Dict[str, Any]] = []
    comparisons: List[Dict[str, Any]] = []
    anomalies: List[Dict[str, Any]] = []
    for path in paths:
        trajectory = load_bench_trajectory(path)
        history = trajectory["history"]
        commits = sorted(
            {
                str(entry.get("commit"))[:12]
                for entry in history
                if entry.get("commit")
            }
        )
        hosts = sorted(
            {
                str(entry.get("host") or entry.get("machine") or "")
                for entry in history
            }
            - {""}
        )
        bench_series = benchmark_mean_series(trajectory)
        benchmarks: Dict[str, Any] = {}
        for name, values in sorted(bench_series.items()):
            outliers = trailing_median_outliers(
                values, window=window, threshold=threshold
            )
            changes = change_points(values)
            benchmarks[name] = {
                "means": values,
                "latest": values[-1] if values else None,
                "outliers": outliers,
                "changes": changes,
            }
            for outlier in outliers:
                anomalies.append(
                    {
                        "trajectory": path,
                        "benchmark": name,
                        "kind": "outlier",
                        **outlier,
                    }
                )
            for change in changes:
                anomalies.append(
                    {
                        "trajectory": path,
                        "benchmark": name,
                        "kind": "change",
                        **change,
                    }
                )
        extra = extra_info_series(trajectory)
        for suffix, key_a, key_b in discover_comparisons(extra):
            sample_a, sample_b = extra[key_a], extra[key_b]
            row: Dict[str, Any] = {
                "trajectory": path,
                "metric": suffix,
                "a": key_a,
                "b": key_b,
                "n_a": len(sample_a),
                "n_b": len(sample_b),
                "mean_a": _mean(sample_a),
                "mean_b": _mean(sample_b),
                "ci_a": list(
                    bootstrap_mean_ci(sample_a, seed=seed, resamples=resamples)
                ),
                "ci_b": list(
                    bootstrap_mean_ci(sample_b, seed=seed, resamples=resamples)
                ),
            }
            if len(sample_a) >= 2 and len(sample_b) >= 2:
                test = mann_whitney_u(sample_a, sample_b)
                row.update(
                    u=test["u"],
                    p_value=test["p_value"],
                    a12=test["a12"],
                    significant=test["p_value"] < ALPHA,
                )
            else:
                row.update(
                    u=None,
                    p_value=None,
                    a12=None,
                    significant=False,
                    note="needs >= 2 history entries per side for a rank test",
                )
            comparisons.append(row)
        trajectories.append(
            {
                "path": path,
                "entries": len(history),
                "commits": commits,
                "hosts": hosts,
                "benchmarks": benchmarks,
                "extra_info": extra,
            }
        )
    analysis: Dict[str, Any] = {
        "tool": "repro analyze",
        "seed": seed,
        "resamples": resamples,
        "window": window,
        "threshold": threshold,
        "alpha": ALPHA,
        "trajectories": trajectories,
        "comparisons": comparisons,
        "anomalies": anomalies,
    }
    if telemetry_path is not None:
        analysis["telemetry"] = _analyze_telemetry(
            telemetry_path, window=window, threshold=threshold
        )
    return analysis


def _analyze_telemetry(
    path: str, window: int = 5, threshold: float = 1.5
) -> Dict[str, Any]:
    """Wall-time / RSS trajectories from a ``<registry>.telemetry.json``
    artifact, screened with the same outlier rule."""
    from ..obs.telemetry import load_artifact

    artifact = load_artifact(path)
    walls: List[float] = []
    rss: List[float] = []
    for entry in artifact.get("runs", []):
        walls.append(float(entry.get("wall_time_s", 0.0)))
        rollup = entry.get("rollup") or {}
        rss.append(float(rollup.get("peak_rss_kb", 0)))
    return {
        "path": path,
        "runs": len(walls),
        "wall_time_s": walls,
        "peak_rss_kb": rss,
        "wall_outliers": trailing_median_outliers(
            walls, window=window, threshold=threshold
        ),
        "rss_outliers": trailing_median_outliers(
            rss, window=window, threshold=threshold
        ),
    }


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------
def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    magnitude = abs(value)
    if magnitude >= 1000:
        return "{:,.0f}".format(value)
    if magnitude >= 1:
        return "%.3g" % value
    return "%.3g" % value


def render_text(analysis: Dict[str, Any]) -> List[str]:
    """The ``repro analyze`` stdout summary as lines."""
    lines: List[str] = []
    for trajectory in analysis["trajectories"]:
        flagged = sum(
            len(data["outliers"]) + len(data["changes"])
            for data in trajectory["benchmarks"].values()
        )
        lines.append(
            "%s: %d entr%s, %d benchmark(s), %d anomal%s%s"
            % (
                trajectory["path"],
                trajectory["entries"],
                "y" if trajectory["entries"] == 1 else "ies",
                len(trajectory["benchmarks"]),
                flagged,
                "y" if flagged == 1 else "ies",
                " [commits: %s]" % ", ".join(trajectory["commits"])
                if trajectory["commits"]
                else "",
            )
        )
    if analysis["comparisons"]:
        lines.append("")
        lines.append(
            "%-44s %10s %10s %8s %6s  %s"
            % ("comparison", "mean A", "mean B", "p", "A12", "verdict")
        )
        for row in analysis["comparisons"]:
            if row["p_value"] is None:
                verdict = row.get("note", "untested")
            elif row["significant"]:
                verdict = (
                    "A wins" if row["a12"] > 0.5 else "B wins"
                ) + " (p<%.2g)" % analysis["alpha"]
            else:
                verdict = "no significant difference"
            lines.append(
                "%-44s %10s %10s %8s %6s  %s"
                % (
                    "%s vs %s" % (row["a"], row["b"]),
                    _fmt(row["mean_a"]),
                    _fmt(row["mean_b"]),
                    _fmt(row["p_value"]),
                    _fmt(row["a12"]),
                    verdict,
                )
            )
    for anomaly in analysis["anomalies"]:
        if anomaly["kind"] == "outlier":
            lines.append(
                "anomaly: %s %s entry %d: %.4g vs trailing median %.4g "
                "(%.2fx)"
                % (
                    anomaly["trajectory"],
                    anomaly["benchmark"],
                    int(anomaly["index"]),
                    anomaly["value"],
                    anomaly["trailing_median"],
                    anomaly["ratio"],
                )
            )
        else:
            lines.append(
                "change: %s %s at entry %d: centroid shift %+.4g "
                "(score %.1f)"
                % (
                    anomaly["trajectory"],
                    anomaly["benchmark"],
                    int(anomaly["index"]),
                    anomaly["shift"],
                    anomaly["score"],
                )
            )
    telemetry = analysis.get("telemetry")
    if telemetry:
        lines.append(
            "telemetry %s: %d run(s), %d wall outlier(s), %d RSS outlier(s)"
            % (
                telemetry["path"],
                telemetry["runs"],
                len(telemetry["wall_outliers"]),
                len(telemetry["rss_outliers"]),
            )
        )
    return lines


def sparkline_svg(
    values: Sequence[float],
    width: int = 180,
    height: int = 40,
    marks: Sequence[int] = (),
) -> str:
    """An inline SVG sparkline of *values* (anomalous indices dotted)."""
    floats = [float(v) for v in values]
    if not floats:
        return (
            '<svg class="spark" width="%d" height="%d" '
            'viewBox="0 0 %d %d"></svg>' % (width, height, width, height)
        )
    low, high = min(floats), max(floats)
    span = (high - low) or 1.0
    count = len(floats)
    step = (width - 10) / max(1, count - 1)
    xs = [5 + index * step for index in range(count)]
    ys = [
        height - 5 - (value - low) / span * (height - 10) for value in floats
    ]
    if count == 1:
        xs = [width / 2.0]
    points = " ".join(
        "%.1f,%.1f" % (x, y) for x, y in zip(xs, ys)
    )
    dots = "".join(
        '<circle cx="%.1f" cy="%.1f" r="3"/>' % (xs[index], ys[index])
        for index in marks
        if 0 <= index < count
    )
    return (
        '<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d" '
        'role="img"><polyline fill="none" points="%s"/>%s</svg>'
        % (width, height, width, height, points, dots)
    )


_HTML_STYLE = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 70em; color: #1c2733; padding: 0 1em; }
h1 { font-size: 1.5em; border-bottom: 2px solid #2a6f97; padding-bottom: .25em; }
h2 { font-size: 1.2em; margin-top: 2em; color: #2a6f97; }
table { border-collapse: collapse; width: 100%; margin: 1em 0; }
th, td { border: 1px solid #d4dde4; padding: .35em .6em; text-align: right; }
th { background: #eef3f7; }
td.name, th.name { text-align: left; font-family: ui-monospace, monospace;
                   font-size: .92em; }
tr.sig td { background: #e8f6ee; }
tr.anom td { background: #fdeeee; }
.spark polyline { stroke: #2a6f97; stroke-width: 1.5; }
.spark circle { fill: #c1292e; }
.muted { color: #687688; font-size: .9em; }
.badge { display: inline-block; padding: .05em .5em; border-radius: .8em;
         font-size: .85em; background: #eef3f7; }
.badge.win { background: #2a6f97; color: #fff; }
.badge.flag { background: #c1292e; color: #fff; }
"""


def render_html(analysis: Dict[str, Any], title: str = "repro analysis") -> str:
    """The analysis as one self-contained HTML page (no external assets,
    no scripts -- safe to archive as a CI artifact and open anywhere)."""
    esc = html.escape
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>%s</title>" % esc(title),
        "<style>%s</style></head><body>" % _HTML_STYLE,
        "<h1>%s</h1>" % esc(title),
        '<p class="muted">seed=%d, %d bootstrap resamples, outlier window '
        "%d &times; threshold %.2g, &alpha;=%.2g</p>"
        % (
            analysis["seed"],
            analysis["resamples"],
            analysis["window"],
            analysis["threshold"],
            analysis["alpha"],
        ),
    ]

    parts.append("<h2>Method comparisons (Mann&ndash;Whitney U)</h2>")
    if analysis["comparisons"]:
        parts.append(
            "<table><tr><th class=name>comparison</th><th>n</th>"
            "<th>mean A [95% CI]</th><th>mean B [95% CI]</th>"
            "<th>U</th><th>p</th><th>A12</th><th>verdict</th></tr>"
        )
        for row in analysis["comparisons"]:
            if row["p_value"] is None:
                verdict = '<span class="badge">%s</span>' % esc(
                    row.get("note", "untested")
                )
                row_class = ""
            elif row["significant"]:
                winner = row["a"] if row["a12"] > 0.5 else row["b"]
                verdict = '<span class="badge win">%s wins</span>' % esc(
                    winner
                )
                row_class = ' class="sig"'
            else:
                verdict = '<span class="badge">not significant</span>'
                row_class = ""
            parts.append(
                "<tr%s><td class=name>%s vs %s</td><td>%d/%d</td>"
                "<td>%s [%s, %s]</td><td>%s [%s, %s]</td>"
                "<td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>"
                % (
                    row_class,
                    esc(row["a"]),
                    esc(row["b"]),
                    row["n_a"],
                    row["n_b"],
                    _fmt(row["mean_a"]),
                    _fmt(row["ci_a"][0]),
                    _fmt(row["ci_a"][1]),
                    _fmt(row["mean_b"]),
                    _fmt(row["ci_b"][0]),
                    _fmt(row["ci_b"][1]),
                    _fmt(row.get("u")),
                    _fmt(row.get("p_value")),
                    _fmt(row.get("a12")),
                    verdict,
                )
            )
        parts.append("</table>")
    else:
        parts.append(
            '<p class="muted">no paired extra_info metrics found.</p>'
        )

    for trajectory in analysis["trajectories"]:
        parts.append(
            "<h2>Trajectory %s</h2>" % esc(trajectory["path"])
        )
        provenance = []
        if trajectory["commits"]:
            provenance.append(
                "commits: %s" % ", ".join(map(esc, trajectory["commits"]))
            )
        if trajectory["hosts"]:
            provenance.append(
                "hosts: %s" % ", ".join(map(esc, trajectory["hosts"]))
            )
        provenance.append("%d entr%s" % (
            trajectory["entries"],
            "y" if trajectory["entries"] == 1 else "ies",
        ))
        parts.append('<p class="muted">%s</p>' % " &middot; ".join(provenance))
        parts.append(
            "<table><tr><th class=name>benchmark</th><th>trend</th>"
            "<th>latest mean (s)</th><th>anomalies</th></tr>"
        )
        for name, data in trajectory["benchmarks"].items():
            marks = [int(a["index"]) for a in data["outliers"]] + [
                int(c["index"]) for c in data["changes"]
            ]
            flags: List[str] = []
            for outlier in data["outliers"]:
                flags.append(
                    '<span class="badge flag">%.2fx @ %d</span>'
                    % (outlier["ratio"], int(outlier["index"]))
                )
            for change in data["changes"]:
                flags.append(
                    '<span class="badge flag">shift %+.3g @ %d</span>'
                    % (change["shift"], int(change["index"]))
                )
            parts.append(
                "<tr%s><td class=name>%s</td><td>%s</td><td>%s</td>"
                "<td>%s</td></tr>"
                % (
                    ' class="anom"' if flags else "",
                    esc(name),
                    sparkline_svg(data["means"], marks=marks),
                    _fmt(data["latest"]),
                    " ".join(flags) or '<span class="muted">none</span>',
                )
            )
        parts.append("</table>")

    telemetry = analysis.get("telemetry")
    if telemetry:
        parts.append("<h2>Harness telemetry %s</h2>" % esc(telemetry["path"]))
        parts.append(
            "<table><tr><th class=name>series</th><th>trend</th>"
            "<th>latest</th><th>outliers</th></tr>"
        )
        for label, key, flagged in (
            ("wall_time_s", "wall_time_s", "wall_outliers"),
            ("peak_rss_kb", "peak_rss_kb", "rss_outliers"),
        ):
            values = telemetry[key]
            marks = [int(a["index"]) for a in telemetry[flagged]]
            parts.append(
                "<tr%s><td class=name>%s</td><td>%s</td><td>%s</td>"
                "<td>%d</td></tr>"
                % (
                    ' class="anom"' if marks else "",
                    esc(label),
                    sparkline_svg(values, marks=marks),
                    _fmt(values[-1]) if values else "-",
                    len(marks),
                )
            )
        parts.append("</table>")

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
