"""Fig. 20x: the network-size sweep extended to planet scale.

Fig. 20 stops at 850 servers -- the paper's PlanetLab ceiling.  This
driver keeps going: the struct-of-arrays user cohort
(:mod:`repro.cdn.cohort`) plus aggregate user metrics make 10k servers
x 500k users a CI-scale run, and deterministic population sharding
(:mod:`repro.experiments.sharding`) spreads the user plane across
Runner workers with an exact merge, so 100k servers x 1M users fits a
workstation (the opt-in ``make planet-scale`` target).

Beyond the consistency series (does Fig. 20's TTL-flat / Push-grows
shape hold three orders of magnitude past the paper's testbed?), the
driver records the harness-performance series the scalability docs
track: simulated users per wall-clock second and peak RSS per sweep
point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..obs.telemetry import profiled
from ..runner import Runner, RunSpec, run_specs
from .config import TestbedConfig, planet_scale
from .result import FigureResult
from .sharding import merge_shard_metrics, shard_specs, shard_user_counts

__all__ = ["fig20x_planet_scale"]


@profiled("driver.fig20x")
def fig20x_planet_scale(
    config: Optional[TestbedConfig] = None,
    n_servers: Sequence[int] = (1_000, 10_000),
    methods: Sequence[str] = ("ttl", "push"),
    user_shards: int = 1,
    runner: Optional[Runner] = None,
) -> FigureResult:
    """Fig. 20x: mean server/user inconsistency vs planet-scale N.

    *config* defaults to :func:`planet_scale` (aggregate user metrics,
    Section-5 cadence); pass ``users_per_server`` etc. through it.
    With ``user_shards > 1`` every sweep cell expands into that many
    shard specs, run through *runner*'s worker pool and folded back
    with the exact merge algebra -- one size's batch at a time, so the
    recorded throughput and peak RSS describe that size alone.
    """
    base = config if config is not None else planet_scale()
    if user_shards > 1 and base.user_metrics != "aggregate":
        base = base.with_overrides(user_metrics="aggregate")
    weights = shard_user_counts(base.users_per_server, user_shards)

    lag_series: Dict[str, Dict[int, float]] = {m: {} for m in methods}
    user_lag_series: Dict[str, Dict[int, float]] = {m: {} for m in methods}
    users_per_s: Dict[int, float] = {}
    events_per_s: Dict[int, float] = {}
    peak_rss_kb: Dict[int, int] = {}
    wall_s: Dict[int, float] = {}
    batch_stats = []
    for n in n_servers:
        specs: List[RunSpec] = []
        spans: List[int] = []  # shards-per-method, to unflatten
        for method in methods:
            cell = shard_specs(
                RunSpec(config=base.with_overrides(n_servers=n), method=method),
                user_shards,
            )
            spans.append(len(cell))
            specs.extend(cell)
        outcome = run_specs(specs, runner)
        batch_stats.append(outcome.stats)
        cursor = 0
        for method, span in zip(methods, spans):
            merged = merge_shard_metrics(
                outcome.metrics[cursor : cursor + span], weights[:span]
            )
            cursor += span
            lag_series[method][n] = merged.mean_server_lag
            user_lag_series[method][n] = merged.mean_user_lag
        wall = outcome.stats.wall_time_s
        simulated_users = n * base.users_per_server * len(methods)
        wall_s[n] = wall
        users_per_s[n] = simulated_users / wall if wall > 0 else 0.0
        events_per_s[n] = outcome.stats.events_per_s
        peak_rss_kb[n] = outcome.stats.peak_rss_kb

    largest = max(n_servers)
    return FigureResult(
        name="fig20x",
        params={
            "n_servers": list(n_servers),
            "methods": list(methods),
            "users_per_server": base.users_per_server,
            "user_shards": user_shards,
            "user_metrics": base.user_metrics,
        },
        series={
            "server_lag": lag_series,
            "user_lag": user_lag_series,
            "users_per_s": users_per_s,
            "events_per_s": events_per_s,
            "peak_rss_kb": peak_rss_kb,
            "wall_s": wall_s,
        },
        summary={
            "max_users": largest * base.users_per_server,
            "users_per_s": users_per_s[largest],
            "peak_rss_kb": peak_rss_kb[largest],
            **{
                "%s.lag_growth" % m: (
                    lag_series[m][largest] - lag_series[m][min(n_servers)]
                )
                for m in methods
            },
        },
        stats=batch_stats[-1],
    )
